//! Printable harness for D10 (multi-tenant service layer under closed-loop
//! load: Table 1 fond mix, sharded store, admission control).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d10")
        .with_trace(itrust_bench::report::trace_path("d10"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (outcome, report) = itrust_bench::harness::d10::run(em.obs());
    println!("{report}");
    let total = |f: fn(&itrust_bench::harness::d10::TenantRow) -> u64| -> f64 {
        outcome.tenants.iter().map(f).sum::<u64>() as f64
    };
    em.meta("seed", std::env::var("D10_SEED").unwrap_or_else(|_| "42".into()));
    em.metric("d10.ops_total", total(|r| r.ops))
        .metric("d10.puts_total", total(|r| r.puts))
        .metric("d10.gets_total", total(|r| r.gets))
        .metric("d10.shed_total", total(|r| r.shed))
        .metric("d10.quota_rejected_total", total(|r| r.quota_rejected))
        .metric("d10.p99_max_ms", outcome.tenants.iter().map(|r| r.p99_ms).max().unwrap_or(0) as f64)
        .metric("d10.objects_total", outcome.shards.iter().map(|s| s.objects).sum::<usize>() as f64)
        .metric("d10.verified", if outcome.verified { 1.0 } else { 0.0 });
    em.finish(outcome.tenants.len() as u64, &report).expect("write results");
}
