//! Printable harness for D2 (self-training vs supervised).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d2")
        .with_trace(itrust_bench::report::trace_path("d2"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (rows, report) = itrust_bench::harness::d2::run(em.obs());
    println!("{report}");
    let (thresholds, ablation) = itrust_bench::harness::d2::threshold_ablation();
    println!("{ablation}");
    if let Some(low) = rows.first() {
        em.metric("d2.supervised_acc_at_min_fraction", low.supervised_acc)
            .metric("d2.semi_acc_at_min_fraction", low.semi_acc)
            .metric("d2.full_acc", low.full_acc);
    }
    em.metric(
        "d2.semi_gain_mean",
        rows.iter().map(|r| r.semi_acc - r.supervised_acc).sum::<f64>() / rows.len() as f64,
    )
    .metric("d2.ablation_best_acc", thresholds.iter().map(|&(_, acc)| acc).fold(0.0, f64::max));
    em.finish((rows.len() + thresholds.len()) as u64, &format!("{report}\n{ablation}"))
        .expect("write results");
}
