//! Printable harness for D2 (self-training vs supervised).
fn main() {
    let (_, report) = itrust_bench::harness::d2::run();
    println!("{report}");
    let (_, ablation) = itrust_bench::harness::d2::threshold_ablation();
    println!("{ablation}");
}
