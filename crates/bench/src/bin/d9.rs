//! Printable harness for D9 (fault-storm survival with self-healing repair).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d9")
        .with_trace(itrust_bench::report::trace_path("d9"))
        .expect("create trace sink");
    let (rows, report) = itrust_bench::harness::d9::run(em.obs());
    println!("{report}");
    em.metric("d9.corrupted_copies_total", rows.iter().map(|r| r.corrupted_copies).sum::<usize>() as f64)
        .metric("d9.repaired_total", rows.iter().map(|r| r.repaired).sum::<usize>() as f64)
        .metric("d9.lost_total", rows.iter().map(|r| r.unrecoverable).sum::<usize>() as f64)
        .metric(
            "d9.survival_min_3_replicas",
            rows.iter()
                .filter(|r| r.replicas == 3)
                .map(|r| r.survival)
                .fold(1.0, f64::min),
        );
    em.finish(rows.len() as u64, &report).expect("write results");
}
