//! Printable harness for D9 (partition tolerance: availability + post-heal
//! convergence, plain vs delay-tolerant ingest).
use itrust_bench::harness::d9::IngestMode;
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d9")
        .with_trace(itrust_bench::report::trace_path("d9"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (rows, report) = itrust_bench::harness::d9::run(em.obs());
    println!("{report}");
    // CI knob: crash after the workload so the flight-recorder dump can be
    // exercised end-to-end (`obstool blackbox results/d9.blackbox.json`).
    if std::env::var("D9_FORCE_PANIC").is_ok_and(|v| v == "1") {
        panic!("D9_FORCE_PANIC requested — dumping flight recorder");
    }
    let min_avail = |mode: IngestMode| {
        rows.iter().filter(|r| r.mode == mode).map(|r| r.availability).fold(1.0, f64::min)
    };
    em.meta("seed", std::env::var("D9_SEED").unwrap_or_else(|_| "42".into()));
    em.metric("d9.availability_min_dtn", min_avail(IngestMode::Dtn))
        .metric("d9.availability_min_plain", min_avail(IngestMode::Plain))
        .metric(
            "d9.gossip_rounds_max",
            rows.iter().map(|r| r.gossip_rounds).max().unwrap_or(0) as f64,
        )
        .metric("d9.transferred_total", rows.iter().map(|r| r.transferred).sum::<usize>() as f64)
        .metric("d9.applied_total", rows.iter().map(|r| r.applied).sum::<usize>() as f64)
        .metric("d9.rotted_copies_total", rows.iter().map(|r| r.rotted_copies).sum::<usize>() as f64)
        .metric("d9.repaired_total", rows.iter().map(|r| r.repaired).sum::<usize>() as f64)
        .metric("d9.lost_total", rows.iter().map(|r| r.lost).sum::<usize>() as f64)
        .metric(
            "d9.survival_min_3_replicas",
            rows.iter()
                .filter(|r| r.replicas == 3)
                .map(|r| r.survival)
                .fold(1.0, f64::min),
        );
    em.finish(rows.len() as u64, &report).expect("write results");
}
