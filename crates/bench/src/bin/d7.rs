//! Printable harness for D7 (continuous learning vs annotator error).
fn main() {
    let (_, report) = itrust_bench::harness::d7::run();
    println!("{report}");
}
