//! Printable harness for D7 (continuous learning vs annotator error).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d7")
        .with_trace(itrust_bench::report::trace_path("d7"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (trajectories, report) = itrust_bench::harness::d7::run(em.obs());
    println!("{report}");
    for t in &trajectories {
        if let Some(last) = t.rounds.last() {
            em.metric(
                &format!("d7.final_acc_at_err_{:02}", (t.error_rate * 100.0).round() as u32),
                last.held_out_accuracy,
            );
        }
    }
    em.finish(trajectories.len() as u64, &report).expect("write results");
}
