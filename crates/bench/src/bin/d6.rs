//! Printable harness for D6 (access index + record linking).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d6")
        .with_trace(itrust_bench::report::trace_path("d6"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (index_rows, index_report) = itrust_bench::harness::d6::run_index(em.obs());
    println!("{index_report}");
    let (linking, linking_report) = itrust_bench::harness::d6::run_linking(em.obs());
    println!("{linking_report}");
    em.metric(
        "d6.build_docs_s_max",
        index_rows.iter().map(|r| r.build_docs_s).fold(0.0, f64::max),
    )
    .metric("d6.queries_s_max", index_rows.iter().map(|r| r.queries_s).fold(0.0, f64::max))
    .metric("d6.linking_recall", linking.recovered as f64 / linking.planted.max(1) as f64)
    .metric("d6.linking_false_merges", linking.false_merges as f64);
    em.finish(
        (index_rows.len() + 1) as u64,
        &format!("{index_report}\n{linking_report}"),
    )
    .expect("write results");
}
