//! Printable harness for D6 (access index + record linking).
fn main() {
    let (_, index_report) = itrust_bench::harness::d6::run_index();
    println!("{index_report}");
    let (_, linking_report) = itrust_bench::harness::d6::run_linking();
    println!("{linking_report}");
}
