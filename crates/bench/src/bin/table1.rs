//! Printable harness for Table 1 (heritage fond ingest).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("table1")
        .with_trace(itrust_bench::report::trace_path("table1"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (rows, report) = itrust_bench::harness::table1::run(em.obs());
    println!("{report}");
    em.metric("table1.bytes_total", rows.iter().map(|r| r.bytes).sum::<u64>() as f64)
        .metric("table1.records_total", rows.iter().map(|r| r.records).sum::<usize>() as f64)
        .metric(
            "table1.ingest_mib_s_mean",
            rows.iter().map(|r| r.ingest_mib_s).sum::<f64>() / rows.len() as f64,
        )
        .metric(
            "table1.fixity_mib_s_mean",
            rows.iter().map(|r| r.fixity_mib_s).sum::<f64>() / rows.len() as f64,
        );
    em.finish(rows.len() as u64, &report).expect("write results");
}
