//! Printable harness for Table 1 (heritage fond ingest).
fn main() {
    let (_, report) = itrust_bench::harness::table1::run();
    println!("{report}");
}
