//! Printable harness for D3 (TAR vs linear review).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d3")
        .with_trace(itrust_bench::report::trace_path("d3"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (rows, report) = itrust_bench::harness::d3::run(em.obs());
    println!("{report}");
    let (ablation_rows, ablation) = itrust_bench::harness::d3::seed_batch_ablation();
    println!("{ablation}");
    // Review-effort savings of TAR over linear review, averaged over
    // prevalence levels.
    em.metric(
        "d3.tar_savings_80_mean",
        rows.iter()
            .map(|r| 1.0 - r.tar_80 as f64 / r.linear_80.max(1) as f64)
            .sum::<f64>()
            / rows.len() as f64,
    )
    .metric(
        "d3.tar_savings_95_mean",
        rows.iter()
            .map(|r| 1.0 - r.tar_95 as f64 / r.linear_95.max(1) as f64)
            .sum::<f64>()
            / rows.len() as f64,
    );
    em.finish((rows.len() + ablation_rows.len()) as u64, &format!("{report}\n{ablation}"))
        .expect("write results");
}
