//! Printable harness for D3 (TAR vs linear review).
fn main() {
    let (_, report) = itrust_bench::harness::d3::run();
    println!("{report}");
    let (_, ablation) = itrust_bench::harness::d3::seed_batch_ablation();
    println!("{ablation}");
}
