//! Printable harness for Figure 2 (BIM database integration).
fn main() {
    let (_, report) = itrust_bench::harness::fig2::run();
    println!("{report}");
}
