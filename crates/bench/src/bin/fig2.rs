//! Printable harness for Figure 2 (BIM database integration).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("fig2")
        .with_trace(itrust_bench::report::trace_path("fig2"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (rows, report) = itrust_bench::harness::fig2::run(em.obs());
    println!("{report}");
    em.metric("fig2.records_in_total", rows.iter().map(|r| r.records_in).sum::<usize>() as f64)
        .metric("fig2.integrated_total", rows.iter().map(|r| r.integrated).sum::<usize>() as f64)
        .metric("fig2.conflicts_total", rows.iter().map(|r| r.conflicts).sum::<usize>() as f64)
        .metric(
            "fig2.records_per_sec_max",
            rows.iter().map(|r| r.records_per_sec).fold(0.0, f64::max),
        );
    em.finish(rows.len() as u64, &report).expect("write results");
}
