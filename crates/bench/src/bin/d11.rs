//! Printable harness for D11 (provenance ledger: custody proofs vs ledger
//! size, witness quorum under partition, unified event API round trip).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d11")
        .with_trace(itrust_bench::report::trace_path("d11"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (outcome, report) = itrust_bench::harness::d11::run(em.obs());
    println!("{report}");
    let all_verified =
        outcome.merged_verified && outcome.sizes.iter().all(|r| r.verified);
    em.meta("seed", std::env::var("D11_SEED").unwrap_or_else(|_| "42".into()));
    em.metric("d11.events_total", outcome.sizes.iter().map(|r| r.events).sum::<usize>() as f64)
        .metric(
            "d11.checkpoints_total",
            outcome.sizes.iter().map(|r| r.checkpoints).sum::<usize>() as f64,
        )
        .metric("d11.proofs_total", outcome.sizes.iter().map(|r| r.proofs).sum::<usize>() as f64)
        .metric("d11.max_path", outcome.sizes.iter().map(|r| r.max_path).max().unwrap_or(0) as f64)
        .metric(
            "d11.unreachable_total",
            outcome.sizes.iter().map(|r| r.unreachable).sum::<usize>() as f64,
        )
        .metric("d11.merged_events", outcome.merged_total as f64)
        .metric("d11.verified", if all_verified { 1.0 } else { 0.0 });
    em.finish(outcome.sizes.len() as u64, &report).expect("write results");
}
