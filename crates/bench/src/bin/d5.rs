//! Printable harness for D5 (tamper detection + verification ablation).
fn main() {
    let (_, report) = itrust_bench::harness::d5::run();
    println!("{report}");
}
