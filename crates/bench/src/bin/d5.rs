//! Printable harness for D5 (tamper detection + verification ablation).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d5")
        .with_trace(itrust_bench::report::trace_path("d5"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (rows, report) = itrust_bench::harness::d5::run(em.obs());
    println!("{report}");
    em.metric("d5.injected_total", rows.iter().map(|r| r.injected).sum::<usize>() as f64)
        .metric("d5.detected_total", rows.iter().map(|r| r.detected).sum::<usize>() as f64)
        .metric("d5.sweep_mib_s_max", rows.iter().map(|r| r.sweep_mib_s).fold(0.0, f64::max));
    em.finish(rows.len() as u64, &report).expect("write results");
}
