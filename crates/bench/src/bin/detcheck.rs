//! detcheck: determinism witness for the parallel hot paths.
//!
//! Runs every `itrust_par`-backed path (escs simulation, Conv2d
//! forward/backward, parallel store hashing) with fixed seeds and writes
//! content digests of the results to `results/detcheck.json`. The file
//! deliberately contains no timing, thread count, or host information, so
//! two runs under different `ITRUST_THREADS` settings must produce
//! byte-identical JSON. CI runs it twice (1 thread, 4 threads) and diffs
//! the outputs.

use escs::external::ExternalTimeline;
use escs::graph::Topology;
use escs::sim::{run, SimConfig};
use itrust_bench::report::results_dir;
use neural::layers::{Conv2d, Layer};
use neural::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trustdb::hash::sha256;
use trustdb::store::{MemoryBackend, ObjectStore, PAR_HASH_MIN_BYTES};

fn tensor_digest(t: &Tensor) -> String {
    let bytes: Vec<u8> = t.data().iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
    sha256(&bytes).to_hex()
}

fn sim_digest(regions: usize, duration_ms: u64, seed: u64) -> String {
    let config = SimConfig::with_defaults(
        Topology::metro(regions),
        ExternalTimeline::disaster(duration_ms),
        duration_ms,
        seed,
    );
    sha256(&serde_json::to_vec(&run(&config)).unwrap()).to_hex()
}

fn conv_digests() -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(77);
    let mut conv = Conv2d::new(3, 6, 3, 1, &mut rng);
    let x = Tensor::rand_uniform(&[4, 3, 12, 12], -1.0, 1.0, &mut rng);
    let y = conv.forward(&x, true);
    let g = Tensor::rand_uniform(y.shape(), -1.0, 1.0, &mut rng);
    let gi = conv.backward(&g);
    let mut out = vec![
        ("conv.forward".to_string(), tensor_digest(&y)),
        ("conv.grad_in".to_string(), tensor_digest(&gi)),
    ];
    let params = conv.params_mut();
    out.push(("conv.grad_weight".to_string(), tensor_digest(&params[0].grad)));
    out.push(("conv.grad_bias".to_string(), tensor_digest(&params[1].grad)));
    out
}

fn store_digests() -> Vec<(String, String)> {
    let payloads: Vec<Vec<u8>> = (0..3usize)
        .map(|i| (0..PAR_HASH_MIN_BYTES + i * 97 + 13).map(|j| ((i * 7 + j) % 253) as u8).collect())
        .collect();
    let store = ObjectStore::new(MemoryBackend::new());
    store
        .put_many(payloads)
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(i, d)| (format!("store.put.{i}"), d.to_hex()))
        .collect()
}

fn main() {
    let mut entries: Vec<(String, String)> = Vec::new();
    entries.push(("escs.sim.metro3_disaster".to_string(), sim_digest(3, 1_800_000, 2024)));
    entries.push(("escs.sim.metro5_disaster".to_string(), sim_digest(5, 900_000, 7)));
    entries.extend(conv_digests());
    entries.extend(store_digests());

    let map: std::collections::BTreeMap<String, String> = entries.into_iter().collect();
    let json = serde_json::to_string_pretty(&map).unwrap();

    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("detcheck.json");
    std::fs::write(&path, format!("{json}\n")).unwrap();
    println!("wrote {}", path.display());
}
