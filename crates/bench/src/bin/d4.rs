//! Printable harness for D4 (digital-twin round trip).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d4")
        .with_trace(itrust_bench::report::trace_path("d4"))
        .expect("create trace sink")
        .with_blackbox(4096);
    let (rows, report) = itrust_bench::harness::d4::run(em.obs());
    println!("{report}");
    em.metric("d4.readings_total", rows.iter().map(|r| r.readings).sum::<usize>() as f64)
        .metric("d4.aip_bytes_total", rows.iter().map(|r| r.aip_bytes).sum::<u64>() as f64)
        .metric("d4.archive_s_max", rows.iter().map(|r| r.archive_s).fold(0.0, f64::max))
        .metric("d4.rehydrate_s_max", rows.iter().map(|r| r.rehydrate_s).fold(0.0, f64::max))
        .metric("d4.all_perfect", rows.iter().all(|r| r.perfect) as u64 as f64);
    em.finish(rows.len() as u64, &report).expect("write results");
}
