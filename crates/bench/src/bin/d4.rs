//! Printable harness for D4 (digital-twin round trip).
fn main() {
    let (_, report) = itrust_bench::harness::d4::run();
    println!("{report}");
}
