//! Printable harness for D1 (ESCS simulator scaling).
fn main() {
    let (_, report) = itrust_bench::harness::d1::run();
    println!("{report}");
}
