//! Printable harness for D1 (ESCS simulator scaling).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("d1")
        .with_trace(itrust_bench::report::trace_path("d1"))
        .expect("create trace sink")
        .with_blackbox(4096);
    em.meta("seed_base", 7_000); // SimConfig seeds are 7000 + psap count
    let (rows, report) = itrust_bench::harness::d1::run(em.obs());
    println!("{report}");
    let calls: usize = rows.iter().map(|r| r.calls).sum();
    em.metric("d1.calls_total", calls as f64)
        .metric(
            "d1.calls_per_sec_mean",
            rows.iter().map(|r| r.calls_per_sec).sum::<f64>() / rows.len() as f64,
        )
        .metric("d1.abandonment_max", rows.iter().map(|r| r.abandonment).fold(0.0, f64::max))
        .metric(
            "d1.replay_divergence_max",
            rows.iter().map(|r| r.replay_divergence).max().unwrap_or(0) as f64,
        );
    em.finish(rows.len() as u64, &report).expect("write results");
}
