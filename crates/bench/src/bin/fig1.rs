//! Printable harness for Figure 1 (PergaNet pipeline).
use itrust_bench::report::Emitter;

fn main() {
    let mut em = Emitter::begin("fig1")
        .with_trace(itrust_bench::report::trace_path("fig1"))
        .expect("create trace sink")
        .with_blackbox(4096);
    em.meta("corpus_seeds", "train 1..3, test 10+damage");
    let (rows, report) = itrust_bench::harness::fig1::run(em.obs());
    println!("{report}");
    for r in &rows {
        em.metric(&format!("fig1.side_acc_damage{}", r.damage), r.eval.side_accuracy)
            .metric(&format!("fig1.signum_ap_damage{}", r.damage), r.eval.signum_ap)
            .metric(&format!("fig1.images_per_sec_damage{}", r.damage), r.images_per_sec);
    }
    em.finish(rows.len() as u64, &report).expect("write results");
}
