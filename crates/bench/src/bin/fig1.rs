//! Printable harness for Figure 1 (PergaNet pipeline).
fn main() {
    let (_, report) = itrust_bench::harness::fig1::run();
    println!("{report}");
}
