//! Experiment harness modules (see crate docs for the exhibit mapping).

pub mod d1;
pub mod d2;
pub mod d3;
pub mod d4;
pub mod d5;
pub mod d6;
pub mod d7;
pub mod d8;
pub mod d9;
pub mod d10;
pub mod d11;
pub mod fig1;
pub mod fig2;
pub mod table1;

use std::time::Instant;

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}
