//! D5 — tamper detection: every injected corruption must be found
//! (detection rate 1.0), with verification-cost measurements and the
//! hash-chain vs Merkle ablation from DESIGN.md §4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trustdb::audit::AuditLog;
use trustdb::event::EventKind;
use trustdb::fixity::FixityAuditor;
use trustdb::hash::Digest;
use trustdb::merkle::MerkleTree;
use trustdb::store::{MemoryBackend, ObjectStore};

/// Result of one tamper-detection run.
#[derive(Debug, Clone)]
pub struct TamperResult {
    /// Objects in the store.
    pub objects: usize,
    /// Corruptions injected.
    pub injected: usize,
    /// Corruptions detected by the sweep.
    pub detected: usize,
    /// Sweep throughput (MiB/s).
    pub sweep_mib_s: f64,
}

/// Store `objects` blobs, corrupt `injected` of them (bit flips,
/// truncations, extensions), sweep, count detections.
pub fn tamper_run(
    objects: usize,
    injected: usize,
    seed: u64,
    obs: &itrust_obs::ObsCtx,
) -> TamperResult {
    assert!(injected <= objects);
    let store = ObjectStore::new(MemoryBackend::new()).with_obs(obs.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<Digest> = Vec::with_capacity(objects);
    let mut bytes_total = 0u64;
    for i in 0..objects {
        let size = rng.gen_range(256..2048);
        let mut blob = vec![0u8; size];
        rng.fill(&mut blob[..]);
        blob.extend_from_slice(&(i as u64).to_le_bytes()); // ensure uniqueness
        bytes_total += blob.len() as u64;
        ids.push(store.put(blob).unwrap());
    }
    // Corrupt a random subset with varied damage models.
    let mut victims = ids.clone();
    for i in (1..victims.len()).rev() {
        victims.swap(i, rng.gen_range(0..=i));
    }
    for (k, victim) in victims.iter().take(injected).enumerate() {
        store.backend().tamper(victim, |v| match k % 3 {
            0 => {
                let pos = k % v.len();
                v[pos] ^= 1 << (k % 8);
            }
            1 => {
                v.truncate(v.len() / 2);
            }
            _ => v.push(0xAA),
        });
    }
    let audit = AuditLog::new();
    let auditor = FixityAuditor::new(&store, &audit, "fixity-daemon");
    let (report, secs) = super::timed(|| auditor.sweep(1_000).unwrap());
    TamperResult {
        objects,
        injected,
        detected: report.incidents.len(),
        sweep_mib_s: bytes_total as f64 / (1024.0 * 1024.0) / secs.max(1e-9),
    }
}

/// Ablation: cost of verifying N records via (a) full hash-chain re-walk
/// vs (b) one Merkle inclusion proof per spot-check.
#[derive(Debug, Clone)]
pub struct VerifyAblation {
    /// Entries/leaves.
    pub n: usize,
    /// Seconds to verify the whole audit chain.
    pub chain_verify_s: f64,
    /// Seconds per single Merkle inclusion proof verification.
    pub merkle_proof_s: f64,
    /// Proof length (hashes).
    pub proof_len: usize,
}

/// Compare whole-chain verification with per-record Merkle proofs.
pub fn verify_ablation(n: usize) -> VerifyAblation {
    let audit = AuditLog::new();
    for i in 0..n {
        audit
            .append(i as u64, "agent", EventKind::Ingest, format!("rec-{i}"), "x")
            .unwrap();
    }
    let (_, chain_verify_s) = super::timed(|| audit.verify_chain().unwrap());

    let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("record-{i}").into_bytes()).collect();
    let tree = MerkleTree::from_leaves(leaves.iter()).unwrap();
    let root = tree.root();
    let proof = tree.prove(n / 2).unwrap();
    let proof_len = proof.path.len();
    // Amortize the proof verification over many runs for a stable number.
    let runs = 1000;
    let (_, total) = super::timed(|| {
        for _ in 0..runs {
            proof.verify(&leaves[n / 2], &root).unwrap();
        }
    });
    VerifyAblation { n, chain_verify_s, merkle_proof_s: total / runs as f64, proof_len }
}

/// Full experiment: detection sweep + ablation table.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<TamperResult>, String) {
    let mut rows = Vec::new();
    for &(objects, injected) in &[(2_000usize, 0usize), (2_000, 20), (2_000, 200), (10_000, 100)] {
        rows.push(tamper_run(objects, injected, 77, obs));
    }
    let mut out = String::from(
        "D5 — tamper detection (bit flips / truncations / extensions)\n\
         objects   injected   detected   detection rate   sweep MiB/s\n",
    );
    for r in &rows {
        let rate = if r.injected == 0 {
            1.0
        } else {
            r.detected as f64 / r.injected as f64
        };
        out.push_str(&format!(
            "{:>7} {:>10} {:>10} {:>16.3} {:>13.1}\n",
            r.objects, r.injected, r.detected, rate, r.sweep_mib_s
        ));
    }
    out.push('\n');
    out.push_str("ablation — whole-chain verify vs Merkle spot proof\n");
    out.push_str("       n   chain verify (ms)   proof verify (µs)   proof hashes\n");
    for &n in &[1_000usize, 10_000, 100_000] {
        let a = verify_ablation(n);
        out.push_str(&format!(
            "{:>8} {:>19.2} {:>19.2} {:>14}\n",
            a.n,
            a.chain_verify_s * 1e3,
            a.merkle_proof_s * 1e6,
            a.proof_len
        ));
    }
    (rows, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn detection_rate_is_exactly_one() {
        let r = super::tamper_run(500, 25, 3, &itrust_obs::ObsCtx::null());
        assert_eq!(r.detected, r.injected, "every corruption must be found");
        let clean = super::tamper_run(500, 0, 4, &itrust_obs::ObsCtx::null());
        assert_eq!(clean.detected, 0, "no false positives");
    }

    #[test]
    fn merkle_proofs_are_logarithmic() {
        let small = super::verify_ablation(1_000);
        let large = super::verify_ablation(100_000);
        assert!(large.proof_len <= small.proof_len + 8);
        assert!(large.proof_len <= 18);
        // Whole-chain verification is linear: 100× entries ≫ proof growth.
        assert!(large.chain_verify_s > small.chain_verify_s);
    }
}
