//! D1 — ESCS simulator scaling: throughput and service quality versus
//! network size and load (quiet vs disaster), plus replay fidelity.

use escs::external::ExternalTimeline;
use escs::graph::Topology;
use escs::replay::divergence;
use escs::sim::{run_with_obs as simulate, SimConfig};

/// Result row for one (size, load) cell.
#[derive(Debug, Clone)]
pub struct SimRow {
    /// PSAP count.
    pub psaps: usize,
    /// Scenario label ("quiet" / "disaster").
    pub scenario: &'static str,
    /// Calls generated.
    pub calls: usize,
    /// Simulated calls per wall-clock second.
    pub calls_per_sec: f64,
    /// Abandonment rate.
    pub abandonment: f64,
    /// p95 answer delay (s).
    pub p95_answer_s: f64,
    /// Replay divergence (re-run with the same config).
    pub replay_divergence: usize,
}

/// Sweep {3, 10, 25} PSAPs × {quiet, disaster} over a 2-hour day.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<SimRow>, String) {
    let duration = 2 * 3_600_000u64;
    let mut rows = Vec::new();
    for &n in &[3usize, 10, 25] {
        for (scenario, timeline) in [
            ("quiet", ExternalTimeline::quiet()),
            ("disaster", ExternalTimeline::disaster(duration)),
        ] {
            let config =
                SimConfig::with_defaults(Topology::metro(n), timeline, duration, 7_000 + n as u64);
            let (output, secs) = super::timed(|| simulate(&config, obs));
            let replay = simulate(&config, obs);
            rows.push(SimRow {
                psaps: n,
                scenario,
                calls: output.calls.len(),
                calls_per_sec: output.calls.len() as f64 / secs.max(1e-9),
                abandonment: output.stats.abandonment_rate(),
                p95_answer_s: output.stats.p95_answer_delay_ms / 1000.0,
                replay_divergence: divergence(&output.calls, &replay.calls),
            });
        }
    }
    let mut out = String::from(
        "D1 — ESCS simulator scaling (2 simulated hours per cell)\n\
         PSAPs   scenario    calls   calls/s   abandon%   p95 answer (s)   replay divergence\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>5} {:>10} {:>8} {:>9.0} {:>9.1} {:>16.1} {:>19}\n",
            r.psaps,
            r.scenario,
            r.calls,
            r.calls_per_sec,
            r.abandonment * 100.0,
            r.p95_answer_s,
            r.replay_divergence
        ));
    }
    (rows, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn disaster_stresses_and_replay_is_exact() {
        let (rows, _) = super::run(&itrust_obs::ObsCtx::null());
        for pair in rows.chunks(2) {
            let quiet = &pair[0];
            let disaster = &pair[1];
            assert!(disaster.calls > quiet.calls);
            assert_eq!(quiet.replay_divergence, 0);
            assert_eq!(disaster.replay_divergence, 0);
        }
    }
}
