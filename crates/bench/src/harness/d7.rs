//! D7 — continuous learning under annotator noise: the accuracy trajectory
//! of the PergaNet classifier across retraining rounds as the simulated
//! annotator's error rate varies (§3.2's "manual annotations as a form of
//! continuous learning").

use perganet::continuous::{continuous_learning_with_obs, RoundOutcome, SimulatedAnnotator};
use perganet::corpus::{generate, CorpusConfig};

/// Trajectory for one annotator error rate.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Annotator error rate.
    pub error_rate: f64,
    /// Per-round outcomes.
    pub rounds: Vec<RoundOutcome>,
}

/// Sweep annotator error ∈ {0%, 5%, 20%} over 3 feedback rounds.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<Trajectory>, String) {
    let seed_set = generate(CorpusConfig { count: 30, damage: 0, seed: 1 });
    let batches: Vec<_> = (0..3)
        .map(|i| generate(CorpusConfig { count: 50, damage: 0, seed: 2 + i }))
        .collect();
    let held_out = generate(CorpusConfig { count: 80, damage: 0, seed: 10 });
    let mut trajectories = Vec::new();
    for &error_rate in &[0.0, 0.05, 0.20] {
        let mut annotator = SimulatedAnnotator::new(error_rate, 42);
        let rounds = continuous_learning_with_obs(
            7, &seed_set, &batches, &held_out, &mut annotator, 6, 0.005, obs,
        );
        trajectories.push(Trajectory { error_rate, rounds });
    }
    let mut out = String::from(
        "D7 — continuous learning vs annotator error (held-out accuracy per round)\n\
         error%     round 0    round 1    round 2    round 3   (pool 30→180)\n",
    );
    for t in &trajectories {
        let accs: Vec<String> =
            t.rounds.iter().map(|r| format!("{:>10.3}", r.held_out_accuracy)).collect();
        out.push_str(&format!("{:>6.0} {}\n", t.error_rate * 100.0, accs.join("")));
    }
    (trajectories, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn clean_annotator_ends_at_least_as_high_as_noisy() {
        let (trajectories, _) = super::run(&itrust_obs::ObsCtx::null());
        let final_acc =
            |t: &super::Trajectory| t.rounds.last().unwrap().held_out_accuracy;
        let clean = final_acc(&trajectories[0]);
        let noisy = final_acc(&trajectories[2]);
        assert!(
            clean >= noisy - 0.02,
            "clean {clean} must not lag 20%-noise {noisy}"
        );
        // Pool growth is identical across error rates.
        for t in &trajectories {
            assert_eq!(t.rounds.last().unwrap().pool_size, 180);
        }
    }
}
