//! D4 — digital-twin preservation round trip: package size and time versus
//! twin complexity; rehydration fidelity must be perfect at every scale.

use archival_core::ingest::Repository;
use digital_twin::archive::{archive_twin, DigitalTwin};
use digital_twin::rehydrate::{rehydrate_twin, verify_fidelity};
use trustdb::store::{MemoryBackend, ObjectStore};

/// Result row for one twin scale.
#[derive(Debug, Clone)]
pub struct TwinRow {
    /// Buildings in the twin.
    pub buildings: usize,
    /// Sensors per element.
    pub sensors_per_element: usize,
    /// BIM elements.
    pub elements: usize,
    /// Telemetry readings preserved.
    pub readings: usize,
    /// AIP payload bytes.
    pub aip_bytes: u64,
    /// Archive (package + ingest) seconds.
    pub archive_s: f64,
    /// Rehydrate + verify seconds.
    pub rehydrate_s: f64,
    /// Perfect fidelity?
    pub perfect: bool,
}

/// Sweep twin complexity: buildings × sensor density.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<TwinRow>, String) {
    let mut rows = Vec::new();
    for &(buildings, sensors) in &[(1usize, 1usize), (7, 1), (7, 2), (20, 2)] {
        let twin = DigitalTwin::synthetic_with_obs("Campus", buildings, sensors, 3_600_000, 11, obs);
        let repo =
            Repository::new(ObjectStore::new(MemoryBackend::new()).with_obs(obs.clone()));
        let (receipt, archive_s) =
            super::timed(|| archive_twin(&repo, &twin, 1_000, "archivist").expect("ready twin"));
        let ((rehydrated, fidelity), rehydrate_s) = super::timed(|| {
            let back = rehydrate_twin(&repo, &receipt.aip_id).expect("rehydrate");
            let fidelity = verify_fidelity(&twin, &back);
            (back, fidelity)
        });
        assert_eq!(rehydrated.bim.element_count(), twin.bim.element_count());
        rows.push(TwinRow {
            buildings,
            sensors_per_element: sensors,
            elements: twin.bim.element_count(),
            readings: twin.sensors.history.len(),
            aip_bytes: receipt.payload_bytes,
            archive_s,
            rehydrate_s,
            perfect: fidelity.is_perfect(),
        });
    }
    let mut out = String::from(
        "D4 — digital-twin preservation round trip (1 h telemetry)\n\
         buildings   sens/elem   elements   readings   AIP MiB   archive s   rehydrate s   perfect\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>9} {:>11} {:>10} {:>10} {:>9.1} {:>11.2} {:>13.2} {:>9}\n",
            r.buildings,
            r.sensors_per_element,
            r.elements,
            r.readings,
            r.aip_bytes as f64 / (1024.0 * 1024.0),
            r.archive_s,
            r.rehydrate_s,
            r.perfect
        ));
    }
    (rows, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fidelity_is_perfect_and_size_scales() {
        let (rows, _) = super::run(&itrust_obs::ObsCtx::null());
        assert!(rows.iter().all(|r| r.perfect));
        assert!(rows.last().unwrap().aip_bytes > rows.first().unwrap().aip_bytes);
    }
}
