//! D3 — TAR vs linear review: documents examined to reach 80% / 95%
//! recall across positive-prevalence levels, plus the seed/batch ablation.

use itrust_core::sensitivity::generate_corpus;
use itrust_core::tar::{linear_review_with_obs, tar_review, tar_review_with_obs, TarConfig};

/// Result row for one prevalence level.
#[derive(Debug, Clone)]
pub struct PrevalenceRow {
    /// Fraction of documents that are sensitive.
    pub prevalence: f64,
    /// Corpus size.
    pub corpus: usize,
    /// Positives present.
    pub positives: usize,
    /// Linear docs to 80% recall.
    pub linear_80: usize,
    /// TAR docs to 80% recall.
    pub tar_80: usize,
    /// Linear docs to 95% recall.
    pub linear_95: usize,
    /// TAR docs to 95% recall.
    pub tar_95: usize,
}

/// Sweep prevalence ∈ {2%, 5%, 10%} on 1000-document corpora.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<PrevalenceRow>, String) {
    let mut rows = Vec::new();
    for &prevalence in &[0.02, 0.05, 0.10] {
        let corpus = generate_corpus(1000, prevalence, 0.1, 5_000 + (prevalence * 100.0) as u64);
        let linear = linear_review_with_obs(&corpus, obs);
        let tar = tar_review_with_obs(&corpus, TarConfig::default(), obs);
        rows.push(PrevalenceRow {
            prevalence,
            corpus: corpus.len(),
            positives: tar.total_positives,
            linear_80: linear.docs_to_recall(0.8).unwrap_or(corpus.len()),
            tar_80: tar.docs_to_recall(0.8).unwrap_or(corpus.len()),
            linear_95: linear.docs_to_recall(0.95).unwrap_or(corpus.len()),
            tar_95: tar.docs_to_recall(0.95).unwrap_or(corpus.len()),
        });
    }
    let mut out = String::from(
        "D3 — TAR (continuous active learning) vs linear review, 1000 docs\n\
         prevalence%   positives   linear→80%   TAR→80%   linear→95%   TAR→95%   speedup@95%\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>11.0} {:>11} {:>12} {:>9} {:>12} {:>9} {:>12.1}×\n",
            r.prevalence * 100.0,
            r.positives,
            r.linear_80,
            r.tar_80,
            r.linear_95,
            r.tar_95,
            r.linear_95 as f64 / r.tar_95.max(1) as f64
        ));
    }
    (rows, out)
}

/// Ablation: docs-to-95%-recall vs (seed size, batch size).
pub fn seed_batch_ablation() -> (Vec<(usize, usize, usize)>, String) {
    let corpus = generate_corpus(1000, 0.05, 0.1, 6_000);
    let mut rows = Vec::new();
    for &(seed_size, batch_size) in &[(10usize, 10usize), (20, 20), (50, 50), (20, 100)] {
        let tar = tar_review(&corpus, TarConfig { seed_size, batch_size, seed: 9 });
        rows.push((seed_size, batch_size, tar.docs_to_recall(0.95).unwrap_or(1000)));
    }
    let mut out =
        String::from("D3 ablation — TAR seed/batch size (5% prevalence)\n  seed   batch   docs→95%\n");
    for (s, b, d) in &rows {
        out.push_str(&format!("  {s:<6} {b:<7} {d}\n"));
    }
    (rows, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tar_wins_at_every_prevalence() {
        let (rows, _) = super::run(&itrust_obs::ObsCtx::null());
        for r in &rows {
            assert!(
                r.tar_95 < r.linear_95,
                "prevalence {}: TAR {} vs linear {}",
                r.prevalence,
                r.tar_95,
                r.linear_95
            );
            assert!(r.tar_80 <= r.tar_95);
        }
        // The speedup is substantial at every prevalence (≥ 1.5×).
        for r in &rows {
            let speedup = r.linear_95 as f64 / r.tar_95.max(1) as f64;
            assert!(speedup >= 1.5, "prevalence {}: speedup {speedup}", r.prevalence);
        }
    }
}
