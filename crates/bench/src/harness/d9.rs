//! D9 — partition tolerance: availability and time-to-eventual-fixity vs
//! partition rate for 1, 2 and 3 replicas, with and without delay-tolerant
//! ingest.
//!
//! Each cell ingests N objects at one virtual millisecond per write while a
//! seeded schedule of network partitions severs replicas
//! ([`trustdb::antientropy::PartitionedBackend`] driven by
//! [`FaultPlan::partition_between`]). The timeline is split into three equal
//! segments per replica; in each segment a window of `segment × rate`
//! milliseconds is severed at a seeded offset, so windows on different
//! replicas overlap more as the rate grows and quorum is lost for real
//! stretches of the run.
//!
//! Two ingest modes per cell:
//!
//! * **plain** — writes go straight to the quorum store; a write that cannot
//!   reach majority is rejected (availability drops with the partition rate).
//! * **dtn** — writes go through [`DelayTolerantIngest`]: when quorum is
//!   unreachable the write lands in a durable per-replica intent log and is
//!   accepted, keeping availability at 1.0.
//!
//! After the storm every link heals. DTN cells replay their intent logs in
//! deterministic global order; merkle-diff gossip ([`AntiEntropy`])
//! converges replica membership (partial quorum writes left divergent
//! holdings); then a seeded bit-rot storm corrupts a fraction of at-rest
//! copies and a [`FixityAuditor::sweep_and_repair`] pass rewrites them from
//! surviving peers. The cell reports availability, reconcile
//! volume, gossip rounds/comparisons/transfers (time-to-eventual-fixity in
//! deterministic units), repair counts, survival, and the shared post-heal
//! merkle root. Nothing in the report depends on wall time or thread count,
//! so two runs at different `ITRUST_THREADS` produce byte-identical output.
//!
//! Environment knobs (for CI smoke runs): `D9_OBJECTS`, `D9_RATES`
//! (comma-separated fractions), `D9_ROT`, `D9_SEED`.

use std::path::PathBuf;
use std::sync::Arc;
use trustdb::antientropy::{AntiEntropy, DelayTolerantIngest, IntentLog, PartitionedBackend};
use trustdb::audit::AuditLog;
use trustdb::fault::{FaultPlan, FaultyBackend};
use trustdb::fixity::FixityAuditor;
use trustdb::hash::sha256;
use trustdb::replica::{BreakerConfig, Clock, ManualClock, ReplicatedBackend, RetryPolicy};
use trustdb::store::{Backend, MemoryBackend, ObjectStore};

/// Ingest discipline for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Quorum-or-reject writes, no intent logs.
    Plain,
    /// Delay-tolerant: defer to a durable intent log when quorum is lost.
    Dtn,
}

impl IngestMode {
    fn label(self) -> &'static str {
        match self {
            IngestMode::Plain => "plain",
            IngestMode::Dtn => "dtn",
        }
    }
}

/// One cell of the partition sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionCell {
    /// Replica count.
    pub replicas: usize,
    /// Fraction of each timeline segment spent severed, per replica.
    pub partition_rate: f64,
    /// Ingest discipline.
    pub mode: IngestMode,
    /// Logical objects offered for ingest.
    pub objects: usize,
    /// Writes accepted (quorum or deferred).
    pub accepted: u64,
    /// Writes accepted on the deferred (intent-log) path.
    pub deferred: u64,
    /// Writes rejected outright.
    pub rejected: u64,
    /// accepted / (accepted + rejected).
    pub availability: f64,
    /// Intents replayed into the quorum store on heal.
    pub applied: usize,
    /// Gossip rounds until replica membership converged.
    pub gossip_rounds: usize,
    /// Merkle node comparisons spent locating divergence.
    pub comparisons: usize,
    /// Object copies transferred by gossip.
    pub transferred: usize,
    /// At-rest copies hit by the post-heal bit-rot storm.
    pub rotted_copies: usize,
    /// Objects restored by the fixity sweep.
    pub repaired: usize,
    /// Objects with no verifiable copy left — data loss.
    pub lost: usize,
    /// Fraction of stored objects served after repair.
    pub survival: f64,
    /// Whether all replicas ended on one merkle root.
    pub converged: bool,
    /// First 8 hex chars of the shared post-heal root.
    pub root: String,
}

/// Seeded, schedule-stable offset for one partition window.
fn window_offset(seed: u64, replica: usize, segment: u64, span: u64) -> u64 {
    let mut msg = [0u8; 24];
    msg[..8].copy_from_slice(&seed.to_le_bytes());
    msg[8..16].copy_from_slice(&(replica as u64).to_le_bytes());
    msg[16..].copy_from_slice(&segment.to_le_bytes());
    let h = sha256(&msg);
    let mut word = [0u8; 8];
    word.copy_from_slice(&h.0[..8]);
    u64::from_le_bytes(word) % span.max(1)
}

/// Three seeded partition windows for one replica, each confined to its own
/// third of the timeline so a single replica is never severed for one long
/// contiguous stretch.
fn partition_plan(seed: u64, replica: usize, rate: f64, timeline_ms: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed + replica as u64);
    let seg = timeline_ms / 3;
    let win = (seg as f64 * rate) as u64;
    if win == 0 {
        return plan;
    }
    for s in 0..3u64 {
        let off = window_offset(seed, replica, s, seg - win + 1);
        let start = s * seg + off;
        plan = plan.partition_between(start, start + win);
    }
    plan
}

fn intent_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("trustdb-d9-intent-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Run one partition storm: ingest under a partition schedule, heal,
/// reconcile (DTN only), rot, gossip to convergence, sweep, measure.
pub fn storm_run(
    replicas: usize,
    objects: usize,
    partition_rate: f64,
    rot_rate: f64,
    mode: IngestMode,
    seed: u64,
    obs: &itrust_obs::ObsCtx,
) -> PartitionCell {
    let clock = Arc::new(ManualClock::new());
    let timeline_ms = objects as u64; // one virtual millisecond per write
    let links: Vec<Arc<PartitionedBackend<FaultyBackend<MemoryBackend>>>> = (0..replicas)
        .map(|i| {
            // The Faulty layer injects no live faults here; it carries the
            // seeded bit-rot storm applied after heal.
            let inner = FaultyBackend::new(MemoryBackend::new(), FaultPlan::new(seed + 100 + i as u64))
                .with_obs(obs.clone());
            Arc::new(
                PartitionedBackend::new(inner, i, clock.clone() as Arc<dyn Clock>)
                    .with_plan(&partition_plan(seed, i, partition_rate, timeline_ms))
                    .with_obs(obs.clone()),
            )
        })
        .collect();
    let dyns: Vec<Arc<dyn Backend>> = links.iter().map(|l| l.clone() as Arc<dyn Backend>).collect();
    let backend = ReplicatedBackend::new(dyns)
        .with_clock(clock.clone())
        .with_retry(RetryPolicy { max_attempts: 2, base_backoff_ms: 1, max_backoff_ms: 4 })
        .with_breaker(BreakerConfig { failure_threshold: 4, cooldown_ms: 8 })
        .with_seed(seed)
        .with_obs(obs.clone());
    let store = ObjectStore::new(backend).with_obs(obs.clone());

    let log_paths: Vec<PathBuf> = (0..replicas)
        .map(|i| intent_path(&format!("{replicas}r-{}p-{}-{i}", (partition_rate * 100.0) as u64, mode.label())))
        .collect();
    let dti = match mode {
        IngestMode::Plain => None,
        IngestMode::Dtn => {
            let logs: Vec<IntentLog> = log_paths
                .iter()
                .map(|p| IntentLog::open(p, obs.clone()).expect("open intent log"))
                .collect();
            Some(DelayTolerantIngest::new(&store, links.iter().cloned().zip(logs).collect(), seed))
        }
    };

    // The storm: one write per virtual millisecond while the partition
    // schedule severs and heals links underneath the quorum.
    let (mut plain_accepted, mut plain_rejected) = (0u64, 0u64);
    for i in 0..objects {
        clock.advance_ms(1);
        let payload =
            format!("d9 archival holding {seed}/{i} payload {}", "x".repeat(i % 97)).into_bytes();
        match &dti {
            Some(d) => {
                let _ = d.put(payload);
            }
            None => match store.put(payload) {
                Ok(_) => plain_accepted += 1,
                Err(_) => plain_rejected += 1,
            },
        }
    }
    let (accepted, deferred, rejected, availability) = match &dti {
        Some(d) => (d.accepted(), d.deferred(), d.rejected(), d.availability()),
        None => {
            let total = plain_accepted + plain_rejected;
            let avail = if total == 0 { 1.0 } else { plain_accepted as f64 / total as f64 };
            (plain_accepted, 0, plain_rejected, avail)
        }
    };

    // Heal: drain any still-queued schedule events, force every link up, and
    // let the breaker cooldowns expire on the virtual clock.
    clock.advance_ms(timeline_ms + 16);
    for l in &links {
        let _ = l.is_severed();
        l.rejoin();
    }
    clock.advance_ms(100);

    let audit = AuditLog::new();
    let applied = match &dti {
        Some(d) => {
            let report =
                d.reconcile(&audit, "d9-dtn-daemon", clock.now_ms()).expect("reconcile intents");
            assert_eq!(report.failed, 0, "healed quorum must accept every pending intent");
            report.applied
        }
        None => 0,
    };

    // Gossip membership back together first: partial quorum writes during
    // the storm left divergent holdings, and the merkle-diff sweeps locate
    // and copy exactly the missing objects.
    clock.advance_ms(1);
    let gossip = AntiEntropy::new(&store, &audit, "d9-gossip");
    let g = gossip.run(clock.now_ms(), 8).expect("gossip run");

    // Then the bit-rot storm: each replica loses an independent seeded
    // slice of its at-rest copies (distinct FaultPlan seeds per replica).
    // Rot corrupts payloads but removes nothing from the listings, so
    // membership stays converged; the fixity sweep rewrites every rotted
    // copy that still has a healthy peer.
    let rotted_copies: usize =
        links.iter().map(|l| l.local().corrupt_fraction(rot_rate).len()).sum();
    clock.advance_ms(1);
    let auditor = FixityAuditor::new(&store, &audit, "d9-fixity-daemon");
    let sweep = auditor.sweep_and_repair(clock.now_ms()).expect("fixity sweep");
    audit.verify_chain().expect("repair history must keep the audit chain intact");

    let converged = gossip.converged();
    let root = if converged {
        gossip.roots()[0].to_hex()[..8].to_string()
    } else {
        "diverged".to_string()
    };
    for p in &log_paths {
        std::fs::remove_file(p).ok();
    }
    PartitionCell {
        replicas,
        partition_rate,
        mode,
        objects,
        accepted,
        deferred,
        rejected,
        availability,
        applied,
        gossip_rounds: g.rounds,
        comparisons: g.comparisons,
        transferred: g.transferred,
        rotted_copies,
        repaired: sweep.repaired.len(),
        lost: sweep.unrecoverable.len(),
        survival: sweep.survival_ratio(),
        converged,
        root,
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|f| (0.0..=1.0).contains(f))
        .unwrap_or(default)
}

fn env_rates(key: &str, default: &[f64]) -> Vec<f64> {
    match std::env::var(key) {
        Ok(v) => v
            .split(',')
            .filter_map(|s| s.trim().parse::<f64>().ok())
            .filter(|f| (0.0..=1.0).contains(f))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Full experiment: availability and post-heal convergence vs partition
/// rate for 1–3 replicas, plain vs delay-tolerant ingest.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<PartitionCell>, String) {
    let objects = env_usize("D9_OBJECTS", 400);
    let seed = env_u64("D9_SEED", 42);
    let rot = env_f64("D9_ROT", 0.05);
    let rates = env_rates("D9_RATES", &[0.0, 0.10, 0.25, 0.50]);

    let mut rows = Vec::new();
    for replicas in 1..=3usize {
        for (ri, &rate) in rates.iter().enumerate() {
            for mode in [IngestMode::Plain, IngestMode::Dtn] {
                rows.push(storm_run(
                    replicas,
                    objects,
                    rate,
                    rot,
                    mode,
                    seed + replicas as u64 * 1_000 + ri as u64 * 10,
                    obs,
                ));
            }
        }
    }

    let mut out = String::from(
        "D9 — partition tolerance (availability during partitions, convergence after heal)\n\
         replicas   part rate   mode   objects   accepted   deferred   rejected   avail   applied   rounds   cmp   xfer   rotted   repaired   lost   survival   root\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>8} {:>11.2} {:>6} {:>9} {:>10} {:>10} {:>10} {:>7.4} {:>9} {:>8} {:>5} {:>6} {:>8} {:>10} {:>6} {:>10.4} {:>10}\n",
            r.replicas,
            r.partition_rate,
            r.mode.label(),
            r.objects,
            r.accepted,
            r.deferred,
            r.rejected,
            r.availability,
            r.applied,
            r.gossip_rounds,
            r.comparisons,
            r.transferred,
            r.rotted_copies,
            r.repaired,
            r.lost,
            r.survival,
            r.root,
        ));
    }
    out.push('\n');
    out.push_str("Delay-tolerant ingest keeps availability at 1.0 through every partition by\n");
    out.push_str("deferring to durable intent logs; plain quorum ingest rejects writes whenever\n");
    out.push_str("a majority is severed. After heal, intent replay + merkle-diff gossip converge\n");
    out.push_str("all replicas to one root, and the fixity sweep repairs the bit-rot storm.\n");
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtn_stays_available_while_plain_degrades() {
        let obs = itrust_obs::ObsCtx::null();
        let plain = storm_run(1, 200, 0.5, 0.0, IngestMode::Plain, 7, &obs);
        let dtn = storm_run(1, 200, 0.5, 0.0, IngestMode::Dtn, 7, &obs);
        assert!(
            plain.availability < 0.8,
            "half the timeline severed must reject plain writes (got {})",
            plain.availability
        );
        assert!((dtn.availability - 1.0).abs() < 1e-12, "dtn accepts every write");
        assert!(dtn.deferred > 0, "some writes must have taken the intent-log path");
        assert_eq!(dtn.applied as u64, dtn.deferred, "every deferred write replays on heal");
    }

    #[test]
    fn post_heal_gossip_converges_and_repairs_rot() {
        let cell = storm_run(3, 150, 0.25, 0.05, IngestMode::Dtn, 11, &itrust_obs::ObsCtx::null());
        assert!(cell.converged, "three replicas must share one merkle root after gossip");
        assert_ne!(cell.root, "diverged");
        assert!(cell.survival >= 0.99, "rot on 3 replicas rarely kills all copies");
        assert!(cell.rotted_copies > 0, "the rot storm must actually bite");
    }

    #[test]
    fn storm_is_deterministic_per_seed() {
        let a = storm_run(2, 120, 0.25, 0.05, IngestMode::Dtn, 13, &itrust_obs::ObsCtx::null());
        let b = storm_run(2, 120, 0.25, 0.05, IngestMode::Dtn, 13, &itrust_obs::ObsCtx::null());
        assert_eq!(a, b, "identical seed must reproduce the whole cell");
    }
}
