//! D9 — preservation under fault storm: object survival rate vs injected
//! corruption rate for 1, 2 and 3 replicas, before and after a
//! self-healing fixity sweep.
//!
//! For each cell, N objects are ingested into a [`ReplicatedBackend`] over
//! r fault-injected memory replicas, then a seeded storm corrupts a
//! fraction f of the at-rest copies on *every* replica independently
//! (distinct seeds, so victim sets differ per replica). A
//! [`FixityAuditor::sweep_and_repair`] pass then rewrites every damaged
//! copy from a surviving verified copy. An object is lost only when the
//! storm hit it on all r replicas, so expected survival ≈ 1 − f^r.
//!
//! Environment knobs (for CI smoke runs): `D9_OBJECTS`, `D9_RATES`
//! (comma-separated fractions), `D9_SEED`.

use std::sync::Arc;
use trustdb::audit::AuditLog;
use trustdb::fault::{FaultPlan, FaultyBackend};
use trustdb::fixity::FixityAuditor;
use trustdb::replica::{ManualClock, ReplicatedBackend, RetryPolicy};
use trustdb::store::{Backend, MemoryBackend, ObjectStore};

/// One cell of the storm sweep.
#[derive(Debug, Clone)]
pub struct StormCell {
    /// Replica count.
    pub replicas: usize,
    /// Fraction of objects corrupted on each replica.
    pub fault_rate: f64,
    /// Logical objects ingested.
    pub objects: usize,
    /// At-rest copies the storm damaged (summed across replicas).
    pub corrupted_copies: usize,
    /// Objects restored by the sweep.
    pub repaired: usize,
    /// Objects with no verifiable copy left — data loss.
    pub unrecoverable: usize,
    /// Fraction of objects served after repair.
    pub survival: f64,
    /// Sweep wall time (seconds).
    pub sweep_s: f64,
}

/// Run one fault storm: ingest, corrupt, repair, measure survival.
pub fn storm_run(
    replicas: usize,
    objects: usize,
    fault_rate: f64,
    seed: u64,
    obs: &itrust_obs::ObsCtx,
) -> StormCell {
    let faulty: Vec<Arc<FaultyBackend<MemoryBackend>>> = (0..replicas)
        .map(|i| {
            Arc::new(
                FaultyBackend::new(MemoryBackend::new(), FaultPlan::new(seed + i as u64))
                    .with_obs(obs.clone()),
            )
        })
        .collect();
    let dyns: Vec<Arc<dyn Backend>> = faulty.iter().map(|f| f.clone() as Arc<dyn Backend>).collect();
    let backend = ReplicatedBackend::new(dyns)
        .with_clock(Arc::new(ManualClock::new()))
        .with_retry(RetryPolicy { max_attempts: 3, base_backoff_ms: 1, max_backoff_ms: 8 })
        .with_seed(seed)
        .with_obs(obs.clone());
    let store = ObjectStore::new(backend).with_obs(obs.clone());
    for i in 0..objects {
        store
            .put(format!("d9 archival holding {seed}/{i} payload {}", "x".repeat(i % 97)).into_bytes())
            .unwrap();
    }
    // The storm: each replica loses an independent `fault_rate` slice of
    // its at-rest copies to bit rot (distinct seeds — FaultPlan::new(seed+i)
    // above — so the victim sets differ per replica).
    let corrupted_copies: usize = faulty.iter().map(|f| f.corrupt_fraction(fault_rate).len()).sum();

    let audit = AuditLog::new();
    let auditor = FixityAuditor::new(&store, &audit, "d9-fixity-daemon");
    let (report, sweep_s) = super::timed(|| auditor.sweep_and_repair(1_000).unwrap());
    audit.verify_chain().expect("repair history must keep the audit chain intact");
    StormCell {
        replicas,
        fault_rate,
        objects,
        corrupted_copies,
        repaired: report.repaired.len(),
        unrecoverable: report.unrecoverable.len(),
        survival: report.survival_ratio(),
        sweep_s,
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_rates(key: &str, default: &[f64]) -> Vec<f64> {
    match std::env::var(key) {
        Ok(v) => v
            .split(',')
            .filter_map(|s| s.trim().parse::<f64>().ok())
            .filter(|f| (0.0..=1.0).contains(f))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Full experiment: survival vs fault rate for 1–3 replicas.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<StormCell>, String) {
    let objects = env_usize("D9_OBJECTS", 400);
    let seed = env_u64("D9_SEED", 42);
    let rates = env_rates("D9_RATES", &[0.05, 0.10, 0.20, 0.40, 0.60, 0.80]);

    let mut rows = Vec::new();
    for replicas in 1..=3usize {
        for &rate in &rates {
            rows.push(storm_run(replicas, objects, rate, seed + replicas as u64 * 1_000, obs));
        }
    }

    let mut out = String::from(
        "D9 — preservation under fault storm (survival after self-healing sweep)\n\
         replicas   fault rate   objects   corrupted copies   repaired   lost   survival   expected 1-f^r\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>8} {:>12.2} {:>9} {:>18} {:>10} {:>6} {:>10.4} {:>16.4}\n",
            r.replicas,
            r.fault_rate,
            r.objects,
            r.corrupted_copies,
            r.repaired,
            r.unrecoverable,
            r.survival,
            1.0 - r.fault_rate.powi(r.replicas as i32),
        ));
    }
    out.push('\n');
    out.push_str("Every corrupted copy on a replica with a surviving peer copy is rewritten;\n");
    out.push_str("loss requires the storm to hit the same object on every replica.\n");
    (rows, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn single_replica_loses_exactly_the_storm_fraction() {
        let cell = super::storm_run(1, 100, 0.2, 7, &itrust_obs::ObsCtx::null());
        assert_eq!(cell.corrupted_copies, 20);
        assert_eq!(cell.unrecoverable, 20, "one replica has nothing to heal from");
        assert!((cell.survival - 0.8).abs() < 1e-9);
        assert_eq!(cell.repaired, 0);
    }

    #[test]
    fn three_replicas_survive_a_heavy_storm() {
        let cell = super::storm_run(3, 100, 0.2, 7, &itrust_obs::ObsCtx::null());
        // Loss needs the same victim on all three independent 20% slices:
        // expected ~0.8% of objects; with 100 objects usually zero.
        assert!(cell.survival >= 0.97);
        assert!(cell.repaired > 0, "the sweep must actually rewrite copies");
    }

    #[test]
    fn storm_is_deterministic_per_seed() {
        let a = super::storm_run(2, 120, 0.3, 11, &itrust_obs::ObsCtx::null());
        let b = super::storm_run(2, 120, 0.3, 11, &itrust_obs::ObsCtx::null());
        assert_eq!(a.corrupted_copies, b.corrupted_copies);
        assert_eq!(a.repaired, b.repaired);
        assert_eq!(a.unrecoverable, b.unrecoverable);
        assert_eq!(a.survival, b.survival);
    }
}
