//! Figure 2 — integrating diverse databases into BIM: records/second
//! merged from six heterogeneous sources, with match/conflict accounting,
//! swept over model scale.

use digital_twin::bim::BimModel;
use digital_twin::integration::{integrate_all_with_obs, synthetic_source, SourceKind};

/// Result row for one model scale.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Elements in the BIM.
    pub elements: usize,
    /// Source records processed (all six sources).
    pub records_in: usize,
    /// Successfully integrated.
    pub integrated: usize,
    /// Unmatched (orphans/blanks).
    pub unmatched: usize,
    /// Attribute conflicts surfaced.
    pub conflicts: usize,
    /// Integration throughput (records/s).
    pub records_per_sec: f64,
}

/// Integrate six synthetic sources into campuses of increasing size.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<ScaleRow>, String) {
    let mut rows = Vec::new();
    for &buildings in &[2usize, 7, 20] {
        let mut model = BimModel::synthetic_campus("Campus", buildings, 3, 10);
        let sources: Vec<_> = SourceKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &k)| synthetic_source(&model, k, 0.85, 5, 3, 100 + i as u64))
            .collect();
        let records_in: usize = sources.iter().map(|s| s.records.len()).sum();
        let (reports, secs) = super::timed(|| integrate_all_with_obs(&mut model, &sources, obs));
        rows.push(ScaleRow {
            elements: model.element_count(),
            records_in,
            integrated: reports.iter().map(|r| r.integrated).sum(),
            unmatched: reports.iter().map(|r| r.unmatched).sum(),
            conflicts: reports.iter().map(|r| r.conflicts).sum(),
            records_per_sec: records_in as f64 / secs.max(1e-9),
        });
    }
    let mut out = String::from(
        "Figure 2 — integrating diverse databases into BIM (6 sources per campus)\n\
         elements   records in   integrated   unmatched   conflicts     records/s\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>8} {:>12} {:>12} {:>11} {:>11} {:>13.0}\n",
            r.elements, r.records_in, r.integrated, r.unmatched, r.conflicts, r.records_per_sec
        ));
    }
    (rows, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn accounting_is_consistent() {
        let (rows, _) = super::run(&itrust_obs::ObsCtx::null());
        for r in &rows {
            assert_eq!(r.integrated + r.unmatched, r.records_in);
            // 5 orphans + 3 blanks per source × 6 sources.
            assert_eq!(r.unmatched, 48);
        }
        // Larger campuses integrate more records.
        assert!(rows[2].integrated > rows[0].integrated);
    }
}
