//! D6 — access tooling: BM25 index build/query throughput over a synthetic
//! description corpus, and record-linking precision on planted duplicate
//! clusters.

use itrust_core::access::AccessIndex;
use itrust_core::linking::RecordLinker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOPICS: [&str; 6] = [
    "military report supply front ammunition trench winter",
    "parchment recto verso signum notary glyph ink",
    "building permit renovation approval inspection drawing",
    "photograph negative album portrait exhibition print",
    "court judgment appeal sentence tribunal verdict",
    "inventory shelf list accession register transfer custody",
];

/// Generate `n` synthetic record descriptions drawn from topic vocabularies.
pub fn descriptions(n: usize, seed: u64) -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
            let words: Vec<&str> = topic.split(' ').collect();
            let len = rng.gen_range(8..25);
            let text: Vec<&str> =
                (0..len).map(|_| words[rng.gen_range(0..words.len())]).collect();
            (format!("rec-{i:06}"), text.join(" "))
        })
        .collect()
}

/// Index-scale result row.
#[derive(Debug, Clone)]
pub struct IndexRow {
    /// Documents indexed.
    pub docs: usize,
    /// Build throughput (docs/s).
    pub build_docs_s: f64,
    /// Query throughput (queries/s).
    pub queries_s: f64,
}

/// Linking result.
#[derive(Debug, Clone)]
pub struct LinkingResult {
    /// Planted duplicate pairs.
    pub planted: usize,
    /// Pairs recovered in duplicate clusters at 0.95 similarity.
    pub recovered: usize,
    /// Non-duplicate records wrongly merged with anything.
    pub false_merges: usize,
}

/// BM25 build/query sweep.
pub fn run_index(obs: &itrust_obs::ObsCtx) -> (Vec<IndexRow>, String) {
    let mut rows = Vec::new();
    for &n in &[1_000usize, 10_000, 50_000] {
        let docs = descriptions(n, 5);
        let (index, build_s) = super::timed(|| {
            let mut idx = AccessIndex::default().with_obs(obs.clone());
            for (id, text) in &docs {
                idx.add(id.clone(), text);
            }
            idx
        });
        let queries: Vec<&str> = vec![
            "signum parchment",
            "supply front",
            "court verdict appeal",
            "photograph exhibition",
            "accession register",
        ];
        let rounds = 200;
        let (_, query_s) = super::timed(|| {
            let mut total = 0usize;
            for _ in 0..rounds {
                for q in &queries {
                    total += index.search(q, 10).len();
                }
            }
            total
        });
        rows.push(IndexRow {
            docs: n,
            build_docs_s: n as f64 / build_s.max(1e-9),
            queries_s: (rounds * queries.len()) as f64 / query_s.max(1e-9),
        });
    }
    let mut out = String::from(
        "D6 — BM25 access index\n    docs   build docs/s   queries/s\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>8} {:>14.0} {:>11.0}\n",
            r.docs, r.build_docs_s, r.queries_s
        ));
    }
    (rows, out)
}

/// Plant duplicate pairs among distinct descriptions; measure recovery.
pub fn run_linking(obs: &itrust_obs::ObsCtx) -> (LinkingResult, String) {
    let mut records = descriptions(400, 9);
    // Plant 40 exact-duplicate pairs.
    let planted = 40;
    for i in 0..planted {
        let (_, text) = records[i].clone();
        records.push((format!("dup-{i:03}"), text));
    }
    let linker = RecordLinker::build_with_obs(&records, obs.clone()).expect("unique ids");
    let clusters = linker.duplicate_clusters(0.95);
    let mut recovered = 0usize;
    let mut false_merges = 0usize;
    for cluster in &clusters {
        if cluster.len() < 2 {
            continue;
        }
        let dups: Vec<&String> =
            cluster.iter().filter(|id| id.starts_with("dup-")).collect();
        for dup in dups {
            let partner = format!("rec-{:06}", dup[4..].parse::<usize>().unwrap());
            if cluster.contains(&partner) {
                recovered += 1;
            }
        }
        // Over-merging: clusters joining unrelated originals. Same-topic
        // random texts can legitimately collide at 0.95, so count only
        // clusters of > 4 originals as false merges.
        let originals = cluster.iter().filter(|id| id.starts_with("rec-")).count();
        if originals > 4 {
            false_merges += originals - 4;
        }
    }
    let result = LinkingResult { planted, recovered, false_merges };
    let out = format!(
        "D6 — record linking: {}/{} planted duplicate pairs recovered, {} over-merge(s)\n",
        result.recovered, result.planted, result.false_merges
    );
    (result, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn linking_recovers_most_planted_duplicates() {
        let (result, _) = super::run_linking(&itrust_obs::ObsCtx::null());
        assert!(
            result.recovered as f64 >= result.planted as f64 * 0.9,
            "{}/{}",
            result.recovered,
            result.planted
        );
    }

    #[test]
    fn queries_return_relevant_docs() {
        let docs = super::descriptions(500, 1);
        let mut idx = super::AccessIndex::default();
        for (id, text) in &docs {
            idx.add(id.clone(), text);
        }
        let hits = idx.search("signum notary parchment", 10);
        assert!(!hits.is_empty());
        // Top hit's text is from the parchment topic.
        let top = docs.iter().find(|(id, _)| id == &hits[0].doc_id).unwrap();
        assert!(top.1.contains("signum") || top.1.contains("notary") || top.1.contains("parchment"));
    }
}
