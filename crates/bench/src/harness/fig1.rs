//! Figure 1 — the PergaNet pipeline: per-stage quality and end-to-end
//! throughput across damage levels, plus the grid-resolution ablation for
//! the signum detector called out in DESIGN.md §4.

use perganet::corpus::{generate, CorpusConfig, Parchment};
use perganet::eval::{evaluate, PipelineEval};
use perganet::pipeline::{PergaNet, TrainConfig};

/// Result row for one damage level.
#[derive(Debug, Clone)]
pub struct DamageRow {
    /// Damage level 0–2.
    pub damage: u8,
    /// Stage metrics.
    pub eval: PipelineEval,
    /// End-to-end images per second.
    pub images_per_sec: f64,
}

/// Train once on a mixed corpus; evaluate at every damage level.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<DamageRow>, String) {
    let mut train = generate(CorpusConfig { count: 150, damage: 0, seed: 1 });
    train.extend(generate(CorpusConfig { count: 100, damage: 1, seed: 2 }));
    train.extend(generate(CorpusConfig { count: 50, damage: 2, seed: 3 }));
    let mut net = PergaNet::new(7).with_obs(obs.clone());
    // The harness trains the signum stage longer than the library default:
    // the mixed-damage corpus is harder, and F1's headline is stage quality.
    let config = TrainConfig { signum_epochs: 40, ..TrainConfig::default() };
    let (_, train_s) = super::timed(|| net.train(&train, config));

    let mut rows = Vec::new();
    for damage in 0u8..=2 {
        let test = generate(CorpusConfig { count: 60, damage, seed: 10 + damage as u64 });
        let (eval, eval_s) = super::timed(|| evaluate(&mut net, &test));
        rows.push(DamageRow {
            damage,
            images_per_sec: test.len() as f64 / eval_s.max(1e-9),
            eval,
        });
    }
    let mut out = format!(
        "Figure 1 — PergaNet three-stage pipeline (trained on {} parchments in {train_s:.1}s)\n\
         damage   side acc   text P   text R   signum AP   signum R   img/s\n",
        train.len()
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>6} {:>10.3} {:>8.3} {:>8.3} {:>11.3} {:>10.3} {:>7.1}\n",
            r.damage,
            r.eval.side_accuracy,
            r.eval.text_precision,
            r.eval.text_recall,
            r.eval.signum_ap,
            r.eval.signum_recall,
            r.images_per_sec
        ));
    }
    (rows, out)
}

/// A pre-trained small pipeline + test corpus for the Criterion inference
/// bench (training is excluded from the timed region).
pub fn trained_pipeline_small() -> (PergaNet, Vec<Parchment>) {
    let train = generate(CorpusConfig { count: 100, damage: 0, seed: 21 });
    let mut net = PergaNet::new(22);
    net.train(
        &train,
        TrainConfig {
            classifier_epochs: 4,
            text_epochs: 5,
            signum_epochs: 12,
            lr: 0.005,
            signum_lr: 0.002,
        },
    );
    let test = generate(CorpusConfig { count: 16, damage: 1, seed: 23 });
    (net, test)
}

#[cfg(test)]
mod tests {
    #[test]
    fn trained_pipeline_builds() {
        let (mut net, test) = super::trained_pipeline_small();
        let analyses = net.analyze_batch(&test.iter().map(|p| p.image.clone()).collect::<Vec<_>>());
        assert_eq!(analyses.len(), 16);
    }
}
