//! D11 — provenance ledger: custody proofs vs ledger size, witness quorum
//! under partition, and the one-event-type round trip.
//!
//! The paper's trust argument needs custody histories that verify without
//! trusting the custodian. This experiment drives the `itrust-ledger`
//! crate end to end at several ledger sizes:
//!
//! 1. **Proof cost vs size.** For each size, append that many synthetic
//!    events, cut four evenly spaced signed checkpoints, and collect
//!    witness countersignatures over partition-aware replica links after
//!    each cut (one witness is severed during the second round and caught
//!    up afterwards — the partition path runs for real). Then sample
//!    event indices, build [`itrust_ledger::CustodyProof`]s with the
//!    order-preserving `itrust_par::par_map`, verify every one at the
//!    witness quorum, and record the merkle path lengths. The report pins
//!    `max_path ≤ ⌈log2(size)⌉` — the O(log n) claim, measured, at every
//!    size up to a million events.
//! 2. **Unified event API round trip.** A `trustdb::audit::AuditLog`, an
//!    `archival_core::provenance::ProvenanceChain`, and an
//!    `itrust-service` sharded store each produce events through their
//!    own legacy surface; all three merge into one fresh ledger via
//!    `ingest` / `export_to_ledger`, one event from each source is proven
//!    and verified, and the merged ledger passes its full audit.
//!
//! Everything in the report is derived from seeded RNG, virtual
//! timestamps, and hash arithmetic — no wall time — so two runs at
//! different `ITRUST_THREADS` produce byte-identical output. Wall-clock
//! proof latency still lands in the telemetry snapshot (the
//! `ledger.prove` span histogram), where benchdiff gates it with the
//! wide d9/d10 band.
//!
//! Environment knobs (for CI smoke runs): `D11_SIZES` (comma list),
//! `D11_PROOFS` (samples per size), `D11_SEED`.

use std::sync::Arc;

use itrust_ledger::{Keyring, Ledger, SecretKey, Witness, WitnessExchange};
use itrust_service::{Quota, ShardedStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trustdb::antientropy::PartitionedBackend;
use trustdb::event::{EventKind, LedgerEvent};
use trustdb::store::MemoryBackend;
use trustdb::{Clock, ManualClock};

/// Witness replica count (quorum = 2 of 3).
pub const WITNESSES: usize = 3;
/// Checkpoints cut per ledger size (evenly spaced).
pub const CHECKPOINTS: usize = 4;

/// Ledger experiment configuration (one run).
#[derive(Debug, Clone)]
pub struct LedgerConfig {
    /// Ledger sizes to sweep (events appended per ledger).
    pub sizes: Vec<usize>,
    /// Custody proofs sampled, built, and verified per size.
    pub proofs: usize,
    /// Seed for the proof-index sampler.
    pub seed: u64,
}

impl LedgerConfig {
    /// The experiment's defaults: 10k / 100k / 1M events, 64 proofs each.
    pub fn default_experiment() -> Self {
        LedgerConfig { sizes: vec![10_000, 100_000, 1_000_000], proofs: 64, seed: 42 }
    }
}

/// Per-size result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeRow {
    /// Events appended.
    pub events: usize,
    /// Checkpoints cut.
    pub checkpoints: usize,
    /// Endorsements per checkpoint, append order (e.g. "3/2/3/3").
    pub endorsements: String,
    /// Witness round-trips skipped because the link was severed.
    pub unreachable: usize,
    /// Custody proofs built and verified at the witness quorum.
    pub proofs: usize,
    /// Longest merkle path over all sampled proofs (hash ops to verify).
    pub max_path: usize,
    /// Mean merkle path length, in tenths (deterministic integer).
    pub mean_path_tenths: usize,
    /// The O(log n) bound the row must stay under.
    pub log2_ceil: usize,
    /// First 8 hex chars of the final checkpoint's events root.
    pub root: String,
    /// Full ledger audit passed and every proof verified.
    pub verified: bool,
}

/// One legacy source merged in the round-trip section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeRow {
    /// Source surface.
    pub source: &'static str,
    /// Events contributed.
    pub events: u64,
}

/// Everything a run produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerOutcome {
    /// Per-size rows, in configured order.
    pub sizes: Vec<SizeRow>,
    /// Round-trip contributions, audit log / provenance chain / store.
    pub merged: Vec<MergeRow>,
    /// Events in the merged ledger.
    pub merged_total: u64,
    /// First 8 hex chars of the merged ledger's head hash.
    pub merged_head: String,
    /// Merged ledger audit + per-source proofs all passed.
    pub merged_verified: bool,
}

fn ring() -> Keyring {
    let mut ring = Keyring::new().with("custodian", SecretKey::derive("custodian"));
    for w in 1..=WITNESSES {
        let id = format!("w{w}");
        ring.insert(id.clone(), SecretKey::derive(&id));
    }
    ring
}

/// Deterministic synthetic event stream: kinds and actors cycle, subjects
/// spread over a fixed population so the subject index gets real fan-in.
fn fill(ledger: &Ledger, n: usize, t0: u64) {
    const KINDS: [EventKind; 5] = [
        EventKind::Ingest,
        EventKind::FixityCheck,
        EventKind::Access,
        EventKind::Migration,
        EventKind::Repair,
    ];
    const ACTORS: [&str; 3] = ["ingestd", "auditor", "migrator"];
    for i in 0..n {
        ledger
            .append(
                LedgerEvent::builder(KINDS[i % KINDS.len()])
                    .at(t0 + i as u64)
                    .actor(ACTORS[i % ACTORS.len()])
                    .subject(format!("rec-{}", i % 997))
                    .outcome("success"),
            )
            .expect("timestamps are non-decreasing by construction");
    }
}

/// One size sweep: append, checkpoint + witness rounds, sampled proofs.
fn size_run(size: usize, config: &LedgerConfig, obs: &itrust_obs::ObsCtx) -> SizeRow {
    let ledger = Ledger::new("d11", "custodian", ring()).with_obs(obs.clone());
    let clock = Arc::new(ManualClock::new());
    let mut exchange = WitnessExchange::new().with_obs(obs.clone());
    let mut links = Vec::with_capacity(WITNESSES);
    for w in 0..WITNESSES {
        let link = Arc::new(PartitionedBackend::new(
            MemoryBackend::new(),
            w,
            clock.clone() as Arc<dyn Clock>,
        ));
        exchange.register(Witness::new(format!("w{}", w + 1), ring()), link.clone());
        links.push(link);
    }

    let t0 = 1_000u64;
    let mut endorsements = Vec::with_capacity(CHECKPOINTS);
    let mut unreachable = 0usize;
    let mut appended = 0usize;
    for round in 0..CHECKPOINTS {
        // Evenly spaced cuts; the last one covers every event.
        let upto = (size * (round + 1)) / CHECKPOINTS;
        fill(&ledger, upto - appended, t0 + appended as u64);
        appended = upto;
        let cp_ts = t0 + size as u64 + round as u64;
        ledger.checkpoint(cp_ts).expect("each cut covers new events");
        // The second round runs under a partition: one witness is severed
        // and must be caught up by later rounds (for later checkpoints).
        if round == 1 {
            links[1].sever();
        } else {
            links[1].rejoin();
        }
        let report = exchange.collect(&ledger).expect("collection rounds never fail");
        endorsements.push(report.endorsements.to_string());
        unreachable += report.unreachable;
    }

    // Sample event indices and build/verify custody proofs in parallel.
    // par_map preserves order, so the path-length stats are deterministic.
    let mut rng = StdRng::seed_from_u64(config.seed ^ size as u64);
    let seqs: Vec<u64> = (0..config.proofs).map(|_| rng.gen_range(0..size as u64)).collect();
    let quorum = exchange.quorum_size();
    let proofs = itrust_par::par_map(&seqs, |&seq| {
        ledger.prove(seq).expect("every event is covered by the final checkpoint")
    });
    let verified_proofs = itrust_par::par_map(&proofs, |p| {
        p.verify(ledger.name(), ledger.keyring(), quorum).is_ok()
    });
    let max_path = proofs.iter().map(|p| p.inclusion.path.len()).max().unwrap_or(0);
    let sum_path: usize = proofs.iter().map(|p| p.inclusion.path.len()).sum();
    let log2_ceil = (usize::BITS - (size - 1).leading_zeros()) as usize;
    assert!(
        max_path <= log2_ceil,
        "proof path blew the O(log n) bound: {max_path} > {log2_ceil} at size {size}"
    );

    let root = ledger
        .latest_checkpoint()
        .expect("checkpoints were cut")
        .checkpoint
        .events_root
        .to_hex()[..8]
        .to_string();
    let verified = ledger.verify().is_ok() && verified_proofs.iter().all(|v| *v);
    SizeRow {
        events: size,
        checkpoints: ledger.checkpoint_count(),
        endorsements: endorsements.join("/"),
        unreachable,
        proofs: proofs.len(),
        max_path,
        mean_path_tenths: sum_path * 10 / proofs.len().max(1),
        log2_ceil,
        root,
        verified,
    }
}

/// The unified-API round trip: three legacy surfaces, one ledger.
fn merge_run(obs: &itrust_obs::ObsCtx) -> (Vec<MergeRow>, u64, String, bool) {
    let ledger = Ledger::new("d11-merged", "custodian", ring()).with_obs(obs.clone());

    // Legacy surface 1: the flat audit log.
    let audit = trustdb::audit::AuditLog::new();
    audit.append(10, "op", EventKind::Ingest, "obj-1", "accessioned").expect("ts ordered");
    audit.append(11, "op", EventKind::FixityCheck, "obj-1", "clean").expect("ts ordered");
    audit.append(12, "op", EventKind::Repair, "obj-2", "healed").expect("ts ordered");
    let from_audit = ledger.ingest(audit.export().iter()).expect("ordered ingest");

    // Legacy surface 2: a per-record provenance chain.
    let mut chain = archival_core::provenance::ProvenanceChain::new("rec-7");
    chain.append(20, "author", EventKind::Creation, "created", "born digital").expect("ordered");
    chain.append(21, "archive", EventKind::Transfer, "custody", "accessioned").expect("ordered");
    chain.append(22, "model", EventKind::AiDecision, "described", "p=0.93").expect("ordered");
    let from_chain = chain.export_to_ledger(&ledger).expect("verified chain exports");

    // Legacy surface 3: the sharded store's per-shard audit chains.
    let store = ShardedStore::in_memory(2).expect("shard count ≥ 1");
    store.register_tenant("alpha", Quota::unlimited()).expect("unique tenant");
    store.register_tenant("beta", Quota::unlimited()).expect("unique tenant");
    for (i, (tenant, key)) in
        [("alpha", "k0"), ("beta", "k0"), ("alpha", "k1"), ("beta", "k1")].iter().enumerate()
    {
        store
            .put(tenant, key, vec![i as u8; 64 + i].into(), 30 + i as u64)
            .expect("puts fit the quota");
    }
    let from_store = store.export_to_ledger(&ledger, None).expect("ordered export");

    // One checkpoint covers the merged history; prove one event per source.
    ledger.checkpoint(100).expect("merged ledger is non-empty");
    let probe = [0u64, from_audit, from_audit + from_chain];
    let proofs_ok = probe.iter().all(|&seq| {
        ledger
            .prove(seq)
            .and_then(|p| p.verify(ledger.name(), ledger.keyring(), 0))
            .is_ok()
    });
    let merged = vec![
        MergeRow { source: "trustdb audit log", events: from_audit },
        MergeRow { source: "provenance chain", events: from_chain },
        MergeRow { source: "sharded store", events: from_store },
    ];
    let total = ledger.len() as u64;
    let head = ledger.head().to_hex()[..8].to_string();
    let verified = ledger.verify().is_ok() && proofs_ok;
    (merged, total, head, verified)
}

/// Run the full experiment. Deterministic in `config` alone.
pub fn ledger_run(config: &LedgerConfig, obs: &itrust_obs::ObsCtx) -> LedgerOutcome {
    let sizes = config.sizes.iter().map(|&n| size_run(n, config, obs)).collect();
    let (merged, merged_total, merged_head, merged_verified) = merge_run(obs);
    LedgerOutcome { sizes, merged, merged_total, merged_head, merged_verified }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_sizes(key: &str, default: &[usize]) -> Vec<usize> {
    let parsed: Option<Vec<usize>> = std::env::var(key).ok().map(|v| {
        v.split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= CHECKPOINTS)
            .collect()
    });
    match parsed {
        Some(sizes) if !sizes.is_empty() => sizes,
        _ => default.to_vec(),
    }
}

/// Render the report (everything in it is hash- or virtual-time-derived).
pub fn format_report(config: &LedgerConfig, outcome: &LedgerOutcome) -> String {
    let mut out = format!(
        "D11 — provenance ledger: custody proofs vs size, witness quorum, unified event API\n\
         {} witnesses (quorum {}), {} checkpoints per size, {} proofs sampled per size\n\n\
         \u{20}   events   ckpts   endorsements   unreach   proofs   max_path   mean/10   log2⌈n⌉   root       audit\n",
        WITNESSES,
        WITNESSES / 2 + 1,
        CHECKPOINTS,
        config.proofs,
    );
    for r in &outcome.sizes {
        out.push_str(&format!(
            "{:>9} {:>7} {:>14} {:>9} {:>8} {:>10} {:>9} {:>9}   {:<8}   {}\n",
            r.events,
            r.checkpoints,
            r.endorsements,
            r.unreachable,
            r.proofs,
            r.max_path,
            r.mean_path_tenths,
            r.log2_ceil,
            r.root,
            if r.verified { "ok" } else { "FAILED" },
        ));
    }
    out.push_str("\nunified event API round trip (one ledger, three legacy surfaces):\n");
    for m in &outcome.merged {
        out.push_str(&format!("  {:<18} {:>3} events\n", m.source, m.events));
    }
    out.push_str(&format!(
        "  merged: {} events, head {}, {}\n",
        outcome.merged_total,
        outcome.merged_head,
        if outcome.merged_verified { "audit + per-source proofs ok" } else { "FAILED" },
    ));
    out.push_str(
        "\nWitness endorsements ride partition-aware replica links (one witness is\n\
         severed during the second round). Path lengths are merkle hash-op counts\n\
         — the verification cost — and stay ≤ ⌈log2(n)⌉ at every size. The report\n\
         is byte-identical at any ITRUST_THREADS; wall-clock proof latency lives\n\
         in the telemetry span histograms, not here.\n",
    );
    out
}

/// Full experiment: env knobs → ledger sweep → report.
pub fn run(obs: &itrust_obs::ObsCtx) -> (LedgerOutcome, String) {
    let defaults = LedgerConfig::default_experiment();
    let config = LedgerConfig {
        sizes: env_sizes("D11_SIZES", &defaults.sizes),
        proofs: env_usize("D11_PROOFS", defaults.proofs).max(1),
        seed: env_u64("D11_SEED", defaults.seed),
    };
    let outcome = ledger_run(&config, obs);
    let report = format_report(&config, &outcome);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> LedgerConfig {
        LedgerConfig { sizes: vec![200, 1_000], proofs: 12, seed: 42 }
    }

    #[test]
    fn sweep_holds_the_log_bound_and_reaches_quorum() {
        let cfg = smoke_config();
        let outcome = ledger_run(&cfg, &itrust_obs::ObsCtx::null());
        assert_eq!(outcome.sizes.len(), 2);
        for r in &outcome.sizes {
            assert!(r.verified, "size {} failed its audit", r.events);
            assert_eq!(r.checkpoints, CHECKPOINTS);
            assert!(r.max_path <= r.log2_ceil);
            assert_eq!(r.proofs, cfg.proofs);
            // The severed round endorses 2 of 3; every other round all 3.
            assert_eq!(r.endorsements, "3/2/3/3");
            assert_eq!(r.unreachable, 1);
        }
        // Distinct sizes yield distinct roots.
        assert_ne!(outcome.sizes[0].root, outcome.sizes[1].root);
    }

    #[test]
    fn round_trip_merges_all_three_legacy_surfaces() {
        let cfg = smoke_config();
        let outcome = ledger_run(&cfg, &itrust_obs::ObsCtx::null());
        assert!(outcome.merged_verified);
        assert_eq!(outcome.merged.len(), 3);
        assert!(outcome.merged.iter().all(|m| m.events > 0), "every surface contributes");
        let sum: u64 = outcome.merged.iter().map(|m| m.events).sum();
        assert_eq!(outcome.merged_total, sum);
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        let cfg = smoke_config();
        let (a, b) = (
            itrust_par::with_threads(1, || {
                let o = ledger_run(&cfg, &itrust_obs::ObsCtx::null());
                format_report(&cfg, &o)
            }),
            itrust_par::with_threads(4, || {
                let o = ledger_run(&cfg, &itrust_obs::ObsCtx::null());
                format_report(&cfg, &o)
            }),
        );
        assert_eq!(a, b, "D11 report must not depend on thread count");
    }

    #[test]
    fn size_knob_parses_comma_lists() {
        assert_eq!(env_sizes("D11_NO_SUCH_KNOB", &[5, 6]), vec![5, 6]);
    }
}
