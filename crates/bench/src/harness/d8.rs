//! D8 — privacy redaction: throughput of the call-record sanitization
//! pipeline and of the text redactor, with the leakage invariant checked
//! on every run (leaks are a correctness failure, not a statistic).

use archival_core::redaction::Redactor;
use escs::call::{CallCategory, CallOutcome, CallRecord};
use escs::graph::{PsapId, RegionId};
use escs::privacy::{verify_no_leakage, PrivacyProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `n` raw call records with full-precision sensitive fields.
pub fn raw_calls(n: usize, seed: u64) -> Vec<CallRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| CallRecord {
            call_id: i as u64,
            region: RegionId(i % 4),
            answered_by: Some(PsapId(i % 3)),
            transferred: rng.gen_bool(0.05),
            caller_phone: format!(
                "{}-555-{:04}",
                200 + rng.gen_range(0..700),
                rng.gen_range(0..10_000)
            ),
            gps: (
                45.0 + rng.gen_range(0.0..5.0),
                -125.0 + rng.gen_range(0.0..5.0),
            ),
            category: CallCategory::ALL[rng.gen_range(0..5usize)],
            arrived_ms: i as u64 * 1_000,
            answered_ms: Some(i as u64 * 1_000 + rng.gen_range(1..30_000u64)),
            handling_ms: Some(rng.gen_range(30_000..200_000)),
            dispatched: None,
            responder_unit: None,
            on_scene_ms: None,
            outcome: CallOutcome::AnsweredNoDispatch,
        })
        .collect()
}

/// Result of the call-sanitization measurement.
#[derive(Debug, Clone)]
pub struct CallRedactionRow {
    /// Records sanitized.
    pub records: usize,
    /// Records per second.
    pub records_per_sec: f64,
    /// Leakage check passed?
    pub no_leakage: bool,
}

/// Result of the text-redactor measurement.
#[derive(Debug, Clone)]
pub struct TextRedactionRow {
    /// Texts redacted.
    pub texts: usize,
    /// MiB/s of text scanned.
    pub mib_per_sec: f64,
    /// Sensitive spans found.
    pub spans: usize,
}

/// Sanitize 100k call records; verify zero leakage; measure throughput.
pub fn run_calls(obs: &itrust_obs::ObsCtx) -> (CallRedactionRow, String) {
    let _span = itrust_obs::span!(obs, "bench.d8.sanitize_calls");
    let calls = raw_calls(100_000, 3);
    let profile = PrivacyProfile::research_default();
    let (sanitized, secs) = super::timed(|| profile.apply_batch(&calls));
    let no_leakage = verify_no_leakage(&profile, &sanitized).is_ok();
    let row = CallRedactionRow {
        records: calls.len(),
        records_per_sec: calls.len() as f64 / secs.max(1e-9),
        no_leakage,
    };
    let out = format!(
        "D8 — call-record sanitization: {} records at {:.0} rec/s, leakage-free = {}\n",
        row.records, row.records_per_sec, row.no_leakage
    );
    (row, out)
}

/// Redact synthetic incident narratives (every one seeded with a phone, an
/// email, and a GPS pair).
pub fn run_text(obs: &itrust_obs::ObsCtx) -> (TextRedactionRow, String) {
    let mut rng = StdRng::seed_from_u64(9);
    let texts: Vec<String> = (0..20_000)
        .map(|i| {
            format!(
                "incident {i}: caller {}-555-{:04} (mail agent{}@dispatch.example.org) \
                 reported smoke at {:.4}, {:.4}; unit {} responded within {} minutes",
                200 + rng.gen_range(0..700),
                rng.gen_range(0..10_000),
                i,
                45.0 + rng.gen_range(0.0..5.0),
                -125.0 + rng.gen_range(0.0..5.0),
                i % 12,
                rng.gen_range(2..20)
            )
        })
        .collect();
    let bytes: usize = texts.iter().map(|t| t.len()).sum();
    let redactor = Redactor::all().with_obs(obs.clone());
    let (spans, secs) = super::timed(|| {
        let mut spans = 0usize;
        for t in &texts {
            let outcome = redactor.redact(t);
            spans += outcome.spans.len();
            debug_assert!(!redactor.contains_sensitive(&outcome.text));
        }
        spans
    });
    let row = TextRedactionRow {
        texts: texts.len(),
        mib_per_sec: bytes as f64 / (1024.0 * 1024.0) / secs.max(1e-9),
        spans,
    };
    let out = format!(
        "D8 — text redaction: {} narratives, {:.1} MiB/s, {} spans removed ({:.2}/doc)\n",
        row.texts,
        row.mib_per_sec,
        row.spans,
        row.spans as f64 / row.texts as f64
    );
    (row, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn sanitization_never_leaks() {
        let (row, _) = super::run_calls(&itrust_obs::ObsCtx::null());
        assert!(row.no_leakage);
    }

    #[test]
    fn every_narrative_has_redactable_content() {
        let (row, _) = super::run_text(&itrust_obs::ObsCtx::null());
        // ≥ 3 spans per narrative (phone, email, gps).
        assert!(
            row.spans >= row.texts * 3,
            "{} spans over {} texts",
            row.spans,
            row.texts
        );
    }
}
