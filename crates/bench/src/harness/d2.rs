//! D2 — self-training vs supervised-only as the labeled fraction shrinks
//! (the §2 semi-supervised claim), with the confidence-threshold ablation.

use itrust_core::sensitivity::{generate_corpus, FitMode, LabeledDoc, SensitivityModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result row for one labeled fraction.
#[derive(Debug, Clone)]
pub struct FractionRow {
    /// Fraction of the pool that is labeled.
    pub labeled_fraction: f64,
    /// Labeled document count.
    pub labeled: usize,
    /// Supervised-only accuracy.
    pub supervised_acc: f64,
    /// Self-training accuracy.
    pub semi_acc: f64,
    /// Fully-supervised (all labels) reference accuracy.
    pub full_acc: f64,
}

fn split(pool: &[LabeledDoc], fraction: f64, seed: u64) -> (Vec<LabeledDoc>, Vec<String>) {
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let k = ((pool.len() as f64 * fraction).round() as usize).max(4);
    let labeled: Vec<LabeledDoc> = idx[..k].iter().map(|&i| pool[i].clone()).collect();
    let unlabeled: Vec<String> = idx[k..].iter().map(|&i| pool[i].text.clone()).collect();
    (labeled, unlabeled)
}

/// Sweep labeled fraction ∈ {1%, 2%, 5%, 10%} on an 800-document pool.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<FractionRow>, String) {
    let pool = generate_corpus(800, 0.3, 0.2, 1);
    let test = generate_corpus(400, 0.3, 0.2, 2);
    let full = SensitivityModel::fit_with_obs(&pool, &[], FitMode::Supervised, obs);
    let full_acc = full.accuracy(&test);
    let mut rows = Vec::new();
    for &fraction in &[0.01, 0.02, 0.05, 0.10] {
        let (labeled, unlabeled) = split(&pool, fraction, 42);
        let supervised = SensitivityModel::fit_with_obs(&labeled, &[], FitMode::Supervised, obs);
        let semi = SensitivityModel::fit_with_obs(&labeled, &unlabeled, FitMode::SemiSupervised, obs);
        rows.push(FractionRow {
            labeled_fraction: fraction,
            labeled: labeled.len(),
            supervised_acc: supervised.accuracy(&test),
            semi_acc: semi.accuracy(&test),
            full_acc,
        });
    }
    let mut out = String::from(
        "D2 — self-training vs supervised (800-doc pool, 400-doc test)\n\
         labeled%   labeled n   supervised   self-training   full-labels reference\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>8.0} {:>11} {:>12.3} {:>15.3} {:>22.3}\n",
            r.labeled_fraction * 100.0,
            r.labeled,
            r.supervised_acc,
            r.semi_acc,
            r.full_acc
        ));
    }
    (rows, out)
}

/// Ablation: self-training accuracy vs confidence threshold τ.
pub fn threshold_ablation() -> (Vec<(f32, f64)>, String) {
    let pool = generate_corpus(800, 0.3, 0.2, 3);
    let test = generate_corpus(400, 0.3, 0.2, 4);
    let (labeled, unlabeled) = split(&pool, 0.02, 7);
    let mut rows = Vec::new();
    for &tau in &[0.6f32, 0.8, 0.95] {
        // Rebuild the semi-supervised path with a custom threshold via the
        // neural-level API.
        use itrust_core::text::Vocabulary;
        use neural::classical::{Classifier, MultinomialNb};
        use neural::data::Dataset;
        use neural::semi::SelfTraining;
        let mut texts: Vec<&str> = labeled.iter().map(|d| d.text.as_str()).collect();
        texts.extend(unlabeled.iter().map(|s| s.as_str()));
        let vocab = Vocabulary::fit(&texts, 1);
        let x = vocab.tf_matrix(&labeled.iter().map(|d| d.text.as_str()).collect::<Vec<_>>());
        let y: Vec<usize> = labeled.iter().map(|d| d.label).collect();
        let mut st = SelfTraining::new(MultinomialNb::new(1.0), tau, 10);
        let pool_x = vocab.tf_matrix(&unlabeled.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        st.fit_semi(&Dataset::new(x, y), &pool_x);
        let test_x =
            vocab.tf_matrix(&test.iter().map(|d| d.text.as_str()).collect::<Vec<_>>());
        let preds = st.predict(&test_x);
        let truth: Vec<usize> = test.iter().map(|d| d.label).collect();
        rows.push((tau, neural::metrics::accuracy(&truth, &preds)));
    }
    let mut out = String::from("D2 ablation — self-training confidence threshold τ (2% labels)\n  τ      accuracy\n");
    for (tau, acc) in &rows {
        out.push_str(&format!("  {tau:<5} {acc:.3}\n"));
    }
    (rows, out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn semi_supervised_helps_at_low_fractions() {
        let (rows, _) = super::run(&itrust_obs::ObsCtx::null());
        // At every fraction, self-training must not be materially worse.
        for r in &rows {
            assert!(
                r.semi_acc >= r.supervised_acc - 0.05,
                "at {}%: semi {} vs sup {}",
                r.labeled_fraction * 100.0,
                r.semi_acc,
                r.supervised_acc
            );
        }
        // Both approaches approach the full-label reference at 10%.
        let last = rows.last().unwrap();
        assert!(last.full_acc - last.semi_acc < 0.1);
    }
}
