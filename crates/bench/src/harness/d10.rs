//! D10 — multi-tenant service under closed-loop load: the Table 1 fond mix
//! replayed by thousands of simulated clients against the `itrust-service`
//! front end (hash-sharded store + per-tenant quotas + admission control).
//!
//! Four tenants drawn from the paper's Table 1 share one
//! [`ShardedStore`], with client populations proportional to the fonds'
//! relative sizes (Trademarks 30 : laws/decrees 15 : study-room
//! inventories 15 : photographic funds 2). Every client runs a closed
//! loop on the **virtual** clock: submit one request, wait for its
//! completion, think a seeded 15–45 virtual ms, repeat. The mix is ~80%
//! puts / 20% gets of the client's own earlier keys.
//!
//! The service pushes back and the clients react like real ones:
//!
//! * **shed** ([`trustdb::Error::Overloaded`], transient) → seeded
//!   exponential backoff and retry;
//! * **quota breach** ([`trustdb::Error::QuotaExceeded`], permanent) →
//!   the client switches to read-only for the rest of the run. The
//!   photographic tenant is given a deliberately tight object budget so
//!   this path actually fires.
//!
//! Latency is *virtual*: queue wait (admission backlog) plus a
//! deterministic service time (floor + size-proportional term), recorded
//! into each tenant's isolated `ObsCtx` histogram by the executor. The
//! report prints per-tenant throughput and p50/p99/p999 plus per-shard
//! holdings, and ends with a full fixity verification. Nothing in it
//! depends on wall time or thread count, so two runs at different
//! `ITRUST_THREADS` produce byte-identical output.
//!
//! Environment knobs (for CI smoke runs): `D10_CLIENTS`, `D10_SHARDS`,
//! `D10_MS`, `D10_RATE` (tokens/ms), `D10_QUEUE`, `D10_SEED`.

use itrust_service::{
    BucketConfig, ExecutorConfig, OpOutput, Quota, Request, ServiceExecutor, ShardedConfig,
    ShardedStore,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use trustdb::replica::{Clock, ManualClock};

/// The Table 1 fonds acting as tenants: (short name, paper TB weight).
/// Weights drive the client population split.
pub const TENANT_MIX: [(&str, u64); 4] = [
    ("trademarks", 30),   // Trademarks series (UIBM)
    ("decrees", 15),      // Official collection of laws and decrees
    ("inventories", 15),  // Digitised study room inventories
    ("photographic", 2),  // Various photographic funds
];

/// Load-test configuration (one run).
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Total simulated clients across all tenants.
    pub clients: usize,
    /// Shard count.
    pub shards: usize,
    /// Virtual run length in milliseconds (excluding the drain phase).
    pub duration_ms: u64,
    /// Token-bucket refill (admissions per virtual ms).
    pub rate_per_ms: u64,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Base seed for every client's schedule.
    pub seed: u64,
}

impl LoadConfig {
    /// The experiment's defaults: 1 240 clients, 8 shards, 3 s virtual.
    pub fn default_experiment() -> Self {
        LoadConfig {
            clients: 1_240,
            shards: 8,
            duration_ms: 3_000,
            rate_per_ms: 24,
            queue_capacity: 256,
            seed: 42,
        }
    }
}

/// Per-tenant result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRow {
    /// Tenant (fond) name.
    pub tenant: &'static str,
    /// Clients assigned to this tenant.
    pub clients: usize,
    /// Requests completed.
    pub ops: u64,
    /// Successful puts completed.
    pub puts: u64,
    /// Successful gets completed.
    pub gets: u64,
    /// Submissions shed by admission control.
    pub shed: u64,
    /// Puts rejected for quota breach.
    pub quota_rejected: u64,
    /// Completed ops per virtual second.
    pub ops_per_s: u64,
    /// Virtual latency percentiles (ms) from the tenant's isolated
    /// histogram: queue wait + service time.
    pub p50_ms: u64,
    /// 99th percentile.
    pub p99_ms: u64,
    /// 99.9th percentile.
    pub p999_ms: u64,
}

/// Per-shard result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRow {
    /// Shard index.
    pub shard: usize,
    /// Cataloged objects.
    pub objects: usize,
    /// Post-dedup payload bytes.
    pub bytes: u64,
    /// Audit chain length (ingests + the final fixity sweep).
    pub audit_len: usize,
    /// First 8 hex chars of the shard's fixity root.
    pub root: String,
}

/// Everything a run produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Per-tenant rows, in [`TENANT_MIX`] order.
    pub tenants: Vec<TenantRow>,
    /// Per-shard rows, in ring order.
    pub shards: Vec<ShardRow>,
    /// Virtual ms consumed including the drain phase.
    pub total_ms: u64,
    /// True when every shard swept clean and every audit chain verified.
    pub verified: bool,
}

struct Client {
    tenant_idx: usize,
    rng: StdRng,
    /// Virtual time of the next submission attempt.
    next_ms: u64,
    /// A request is in flight (closed loop: at most one).
    waiting: bool,
    /// Keys this client has successfully written (k0..kN-1).
    written: u64,
    /// Put key indices already claimed by an accepted submission.
    claimed: u64,
    /// Quota breached: reads only from here on.
    read_only: bool,
    /// Current shed backoff (ms), doubled per consecutive shed.
    backoff: u64,
}

impl Client {
    fn think(&mut self) -> u64 {
        self.rng.gen_range(15..46u64)
    }
}

/// Split `total` clients over [`TENANT_MIX`] proportionally to weight,
/// guaranteeing at least one client per tenant.
pub fn client_split(total: usize) -> Vec<usize> {
    let weight_sum: u64 = TENANT_MIX.iter().map(|(_, w)| w).sum();
    let mut split: Vec<usize> = TENANT_MIX
        .iter()
        .map(|(_, w)| ((total as u64 * w) / weight_sum).max(1) as usize)
        .collect();
    // Largest tenant absorbs the rounding remainder.
    let assigned: usize = split.iter().sum();
    if total > assigned {
        split[0] += total - assigned;
    }
    split
}

fn payload_for(client: usize, key_idx: u64) -> Vec<u8> {
    let len = 128 + ((client as u64 * 31 + key_idx * 17) % 1024) as usize;
    vec![(client as u64 ^ key_idx) as u8; len]
}

/// Run one closed-loop load test. Deterministic in `config` alone.
pub fn load_run(config: &LoadConfig, obs: &itrust_obs::ObsCtx) -> LoadOutcome {
    let clock = Arc::new(ManualClock::new());
    let store = Arc::new(
        ShardedStore::open(&ShardedConfig::in_memory(config.shards), obs.clone())
            .expect("shard count ≥ 1"),
    );
    let split = client_split(config.clients);
    for (i, (name, _)) in TENANT_MIX.iter().enumerate() {
        // The photographic fond gets a deliberately tight object budget so
        // the QuotaExceeded → read-only client path is exercised for real.
        let quota = if *name == "photographic" {
            Quota { max_objects: (split[i] as u64 * 2).max(4), max_bytes: u64::MAX }
        } else {
            Quota::unlimited()
        };
        store.register_tenant(*name, quota).expect("unique tenant names");
    }
    let exec = ServiceExecutor::new(
        store.clone(),
        clock.clone() as Arc<dyn Clock>,
        ExecutorConfig {
            queue_capacity: config.queue_capacity,
            bucket: BucketConfig { capacity: config.rate_per_ms * 2, refill_per_ms: config.rate_per_ms },
            service_floor_ms: 2,
            service_bytes_per_ms: 256,
        },
    );

    let mut clients: Vec<Client> = Vec::with_capacity(config.clients);
    for (tenant_idx, n) in split.iter().enumerate() {
        for j in 0..*n {
            let id = clients.len() as u64;
            clients.push(Client {
                tenant_idx,
                rng: StdRng::seed_from_u64(
                    config.seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ),
                // Stagger arrivals over the first think window.
                next_ms: (id * 7 + j as u64) % 30,
                waiting: false,
                written: 0,
                claimed: 0,
                read_only: false,
                backoff: 1,
            });
        }
    }

    let mut pending: BTreeMap<u64, usize> = BTreeMap::new();
    let mut shed = vec![0u64; TENANT_MIX.len()];
    let mut quota_rejected = vec![0u64; TENANT_MIX.len()];
    let mut ops = vec![0u64; TENANT_MIX.len()];
    let mut puts = vec![0u64; TENANT_MIX.len()];
    let mut gets = vec![0u64; TENANT_MIX.len()];

    let mut process = |completions: Vec<itrust_service::Completion>,
                       clients: &mut Vec<Client>,
                       pending: &mut BTreeMap<u64, usize>| {
        for c in completions {
            let Some(cid) = pending.remove(&c.seq) else { continue };
            let client = &mut clients[cid];
            client.waiting = false;
            let think = client.think();
            client.next_ms = c.completed_ms + think;
            ops[client.tenant_idx] += 1;
            match &c.outcome {
                Ok(OpOutput::Put(_)) => {
                    client.written += 1;
                    puts[client.tenant_idx] += 1;
                }
                Ok(OpOutput::Get(_)) => gets[client.tenant_idx] += 1,
                Err(_) => {}
            }
        }
    };

    for t in 0..config.duration_ms {
        // Rotate the scan origin each tick so early client ids cannot
        // monopolize the admission queue (deterministic round-robin
        // fairness — without it the last tenants in id order starve).
        let origin = (t as usize).wrapping_mul(7919) % clients.len().max(1);
        for step in 0..clients.len() {
            let cid = (origin + step) % clients.len();
            let client = &mut clients[cid];
            if client.waiting || client.next_ms > t {
                continue;
            }
            let tenant = TENANT_MIX[client.tenant_idx].0;
            let do_put = !client.read_only
                && (client.written == 0 || client.rng.gen_range(0..100u32) < 80);
            let request = if do_put {
                let key_idx = client.claimed;
                Request::Put {
                    tenant: tenant.into(),
                    key: format!("c{cid:05}/k{key_idx}"),
                    payload: payload_for(cid, key_idx).into(),
                }
            } else if client.written > 0 {
                let key_idx = client.rng.gen_range(0..client.written);
                Request::Get { tenant: tenant.into(), key: format!("c{cid:05}/k{key_idx}") }
            } else {
                // Read-only with nothing written yet: idle out a think time.
                let think = client.think();
                client.next_ms = t + think;
                continue;
            };
            match exec.submit(request) {
                Ok(seq) => {
                    client.waiting = true;
                    client.backoff = 1;
                    if do_put {
                        client.claimed += 1;
                    }
                    pending.insert(seq, cid);
                }
                Err(e) if e.is_transient() => {
                    shed[client.tenant_idx] += 1;
                    client.backoff = (client.backoff * 2).min(16);
                    let jitter = client.rng.gen_range(0..4u64);
                    client.next_ms = t + client.backoff + jitter;
                }
                Err(_) => {
                    // QuotaExceeded: permanent — no retry can fix a budget.
                    quota_rejected[client.tenant_idx] += 1;
                    client.read_only = true;
                    let think = client.think();
                    client.next_ms = t + think;
                }
            }
        }
        process(exec.tick(), &mut clients, &mut pending);
        clock.advance_ms(1);
    }

    // Drain: no new submissions; let the bucket refill until the queue and
    // the in-flight set are empty.
    let mut drained = 0u64;
    while exec.queue_depth() > 0 {
        clock.advance_ms(1);
        process(exec.tick(), &mut clients, &mut pending);
        drained += 1;
        assert!(drained < 100_000, "admission queue failed to drain");
    }
    let total_ms = clock.now_ms();

    // Final integrity pass: every shard sweeps clean, every chain verifies.
    let reports = store.verify_all(total_ms + 1).expect("fixity sweep");
    let verified = reports.iter().all(|r| r.is_clean())
        && store.shards().iter().all(|s| s.audit().verify_chain().is_ok());

    let tenants = TENANT_MIX
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let t = store.tenant(name).expect("registered above");
            let snap = t.obs().snapshot();
            let hist = snap.histograms.get("service.tenant.request_ms");
            TenantRow {
                tenant: name,
                clients: split[i],
                ops: ops[i],
                puts: puts[i],
                gets: gets[i],
                shed: shed[i],
                quota_rejected: quota_rejected[i],
                ops_per_s: ops[i] * 1_000 / config.duration_ms.max(1),
                p50_ms: hist.map(|h| h.p50).unwrap_or(0),
                p99_ms: hist.map(|h| h.p99).unwrap_or(0),
                p999_ms: hist.map(|h| h.p999).unwrap_or(0),
            }
        })
        .collect();
    let shards = store
        .shards()
        .iter()
        .map(|s| ShardRow {
            shard: s.index(),
            objects: s.object_count(),
            bytes: s.payload_bytes(),
            audit_len: s.audit_len(),
            root: s.fixity_root().to_hex()[..8].to_string(),
        })
        .collect();
    LoadOutcome { tenants, shards, total_ms, verified }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Render the report (everything in it is virtual-time-derived).
pub fn format_report(config: &LoadConfig, outcome: &LoadOutcome) -> String {
    let mut out = format!(
        "D10 — multi-tenant service under closed-loop load (Table 1 fond mix)\n\
         {} clients, {} shards, {} virtual ms, {} admissions/ms, queue {}\n\n\
         tenant          clients      ops     puts     gets     shed   quota_rej   ops/s   p50   p99   p999\n",
        config.clients, config.shards, config.duration_ms, config.rate_per_ms, config.queue_capacity,
    );
    for r in &outcome.tenants {
        out.push_str(&format!(
            "{:<15} {:>7} {:>8} {:>8} {:>8} {:>8} {:>11} {:>7} {:>5} {:>5} {:>6}\n",
            r.tenant,
            r.clients,
            r.ops,
            r.puts,
            r.gets,
            r.shed,
            r.quota_rejected,
            r.ops_per_s,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
        ));
    }
    out.push_str("\nshard   objects      bytes   audit   root\n");
    for s in &outcome.shards {
        out.push_str(&format!(
            "{:>5} {:>9} {:>10} {:>7} {:>8}\n",
            s.shard, s.objects, s.bytes, s.audit_len, s.root
        ));
    }
    let total_ops: u64 = outcome.tenants.iter().map(|r| r.ops).sum();
    let total_shed: u64 = outcome.tenants.iter().map(|r| r.shed).sum();
    out.push_str(&format!(
        "\ntotal: {} ops in {} virtual ms ({} shed, {} quota-rejected), fixity {}\n",
        total_ops,
        outcome.total_ms,
        total_shed,
        outcome.tenants.iter().map(|r| r.quota_rejected).sum::<u64>(),
        if outcome.verified { "verified clean on every shard" } else { "FAILED" },
    ));
    out.push_str(
        "Latencies are virtual (admission queue wait + deterministic service time),\n\
         recorded per tenant in isolated ObsCtx histograms; the report is\n\
         byte-identical at any ITRUST_THREADS.\n",
    );
    out
}

/// Full experiment: env knobs → closed-loop run → report.
pub fn run(obs: &itrust_obs::ObsCtx) -> (LoadOutcome, String) {
    let defaults = LoadConfig::default_experiment();
    let config = LoadConfig {
        clients: env_usize("D10_CLIENTS", defaults.clients),
        shards: env_usize("D10_SHARDS", defaults.shards),
        duration_ms: env_u64("D10_MS", defaults.duration_ms),
        rate_per_ms: env_u64("D10_RATE", defaults.rate_per_ms).max(1),
        queue_capacity: env_usize("D10_QUEUE", defaults.queue_capacity),
        seed: env_u64("D10_SEED", defaults.seed),
    };
    let outcome = load_run(&config, obs);
    let report = format_report(&config, &outcome);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> LoadConfig {
        LoadConfig {
            clients: 96,
            shards: 4,
            duration_ms: 400,
            rate_per_ms: 2,
            queue_capacity: 24,
            seed: 7,
        }
    }

    #[test]
    fn closed_loop_exercises_every_admission_path() {
        let cfg = smoke_config();
        let outcome = load_run(&cfg, &itrust_obs::ObsCtx::null());
        assert!(outcome.verified);
        let total_ops: u64 = outcome.tenants.iter().map(|r| r.ops).sum();
        let total_shed: u64 = outcome.tenants.iter().map(|r| r.shed).sum();
        let quota: u64 = outcome.tenants.iter().map(|r| r.quota_rejected).sum();
        assert!(total_ops > 100, "closed loop must make progress (got {total_ops})");
        assert!(total_shed > 0, "the rate limit must actually shed (got {total_shed})");
        assert!(quota > 0, "the photographic budget must actually fire (got {quota})");
        // Only the photographic tenant has a finite budget.
        for r in &outcome.tenants {
            if r.tenant != "photographic" {
                assert_eq!(r.quota_rejected, 0, "{} must not hit quota", r.tenant);
            }
        }
        // Latency percentiles are populated and ordered.
        for r in &outcome.tenants {
            assert!(r.ops > 0, "every tenant must complete work");
            assert!(r.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms);
            assert!(r.p50_ms > 0);
        }
        // Objects spread across all shards.
        assert!(outcome.shards.iter().all(|s| s.objects > 0));
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        let cfg = smoke_config();
        let (a, b) = (
            itrust_par::with_threads(1, || {
                let o = load_run(&cfg, &itrust_obs::ObsCtx::null());
                format_report(&cfg, &o)
            }),
            itrust_par::with_threads(4, || {
                let o = load_run(&cfg, &itrust_obs::ObsCtx::null());
                format_report(&cfg, &o)
            }),
        );
        assert_eq!(a, b, "D10 report must not depend on thread count");
    }

    #[test]
    fn client_split_covers_all_tenants_and_sums() {
        for total in [4, 62, 100, 1_240] {
            let split = client_split(total);
            assert_eq!(split.len(), TENANT_MIX.len());
            assert!(split.iter().all(|n| *n >= 1));
            assert_eq!(split.iter().sum::<usize>(), total);
        }
        // The default experiment satisfies the acceptance floor.
        let split = client_split(1_240);
        assert_eq!(split.iter().sum::<usize>(), 1_240);
        assert!(split[0] > split[3], "weights must bias the population");
    }
}
