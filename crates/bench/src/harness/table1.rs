//! Table 1 — "Digitalised Heritage Data": ingest every fond the paper
//! lists, at a 1 TB → 0.1 MB scale factor that preserves the relative
//! proportions (30 : 15 : 1 : 2 : 3 : 2 : 15 : 1323).
//!
//! The paper's table reports only *sizes*; the reproduction turns it into a
//! measurable experiment: accession each fond as TIFF-like blobs and report
//! ingest throughput, fixity-sweep throughput, and the accession receipt.
//! The WAL group-commit ablation lives in the Criterion bench.

use archival_core::ingest::Repository;
use archival_core::oais::{Sip, SubmissionItem};
use archival_core::provenance::ProvenanceChain;
use trustdb::event::EventKind;
use archival_core::record::{Classification, DocumentaryForm, Record};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trustdb::store::{MemoryBackend, ObjectStore};

/// The paper's Table 1, verbatim: (fond, size in TB).
pub const FONDS: [(&str, f64); 8] = [
    ("Trademarks series (UIBM)", 30.0),
    ("Official collection of laws and decrees", 15.0),
    ("Fund A5G (First World War)", 1.0),
    ("Special collections (declassified)", 2.0),
    ("Judgments of military courts", 3.0),
    ("Various photographic funds", 2.0),
    ("Digitised study room inventories", 15.0),
    ("National Archives of the US", 1323.0),
];

/// Scale factor: bytes of synthetic data per paper-TB.
pub const BYTES_PER_TB: u64 = 100 * 1024; // 0.1 MiB per TB

/// Synthetic blob size (a "scanned TIFF page" at scale).
pub const BLOB_BYTES: usize = 32 * 1024;

/// Result row for one fond.
#[derive(Debug, Clone)]
pub struct FondResult {
    /// Fond name.
    pub fond: &'static str,
    /// Paper-reported size (TB).
    pub paper_tb: f64,
    /// Synthetic bytes ingested.
    pub bytes: u64,
    /// Records ingested.
    pub records: usize,
    /// Ingest throughput (MiB/s).
    pub ingest_mib_s: f64,
    /// Fixity sweep throughput (MiB/s).
    pub fixity_mib_s: f64,
}

/// Build the SIP for one fond (deterministic in `seed`).
pub fn fond_sip(fond: &'static str, tb: f64, seed: u64) -> Sip {
    let total_bytes = (tb * BYTES_PER_TB as f64) as u64;
    let n_records = (total_bytes as usize).div_ceil(BLOB_BYTES).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sip = Sip::new("State Central Archives", 1_000);
    for i in 0..n_records {
        let size = BLOB_BYTES.min((total_bytes as usize) - i * BLOB_BYTES).max(1);
        let mut blob = vec![0u8; size];
        rng.fill(&mut blob[..]);
        let id = format!("{}/{i:06}", fond.to_lowercase().replace(' ', "-"));
        let record = Record::over_content(
            id.clone(),
            format!("{fond} — scan {i}"),
            "State Central Archives",
            500,
            "digitisation-programme",
            DocumentaryForm::visual("image/tiff"),
            Classification::Public,
            &blob,
        );
        let mut provenance = ProvenanceChain::new(id);
        provenance
            .append(400, "scanner-lab", EventKind::Creation, "success", "digitised master")
            .expect("fresh chain");
        sip = sip.with_item(SubmissionItem { record, content: blob, provenance });
    }
    sip
}

/// Ingest every fond into a fresh repository; measure per-fond throughput.
pub fn run(obs: &itrust_obs::ObsCtx) -> (Vec<FondResult>, String) {
    let mut rows = Vec::with_capacity(FONDS.len());
    for (i, &(fond, tb)) in FONDS.iter().enumerate() {
        let repo =
            Repository::new(ObjectStore::new(MemoryBackend::new()).with_obs(obs.clone()));
        let sip = fond_sip(fond, tb, 42 + i as u64);
        let bytes = sip.payload_bytes();
        let records = sip.items.len();
        let (receipt, ingest_s) =
            super::timed(|| repo.ingest(sip, 2_000, "archivist").expect("valid sip"));
        let (report, fixity_s) = super::timed(|| repo.fixity_sweep(3_000).expect("sweep"));
        assert!(report.is_clean());
        assert_eq!(receipt.record_count, records);
        let mib = bytes as f64 / (1024.0 * 1024.0);
        rows.push(FondResult {
            fond,
            paper_tb: tb,
            bytes,
            records,
            ingest_mib_s: mib / ingest_s.max(1e-9),
            fixity_mib_s: mib / fixity_s.max(1e-9),
        });
    }
    let mut out = String::from(
        "Table 1 — heritage fond ingest (scaled 1 TB → 0.1 MiB)\n\
         fond                                      paper TB   records      bytes   ingest MiB/s   fixity MiB/s\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<42} {:>8.0} {:>9} {:>10} {:>14.1} {:>14.1}\n",
            r.fond, r.paper_tb, r.records, r.bytes, r.ingest_mib_s, r.fixity_mib_s
        ));
    }
    let total_bytes: u64 = rows.iter().map(|r| r.bytes).sum();
    out.push_str(&format!(
        "TOTAL: {:.1} MiB across {} records in {} fonds\n",
        total_bytes as f64 / (1024.0 * 1024.0),
        rows.iter().map(|r| r.records).sum::<usize>(),
        rows.len()
    ));
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fond_sizes_preserve_paper_proportions() {
        let small = fond_sip("Fund A5G (First World War)", 1.0, 1);
        let large = fond_sip("Official collection of laws and decrees", 15.0, 2);
        let ratio = large.payload_bytes() as f64 / small.payload_bytes() as f64;
        assert!((ratio - 15.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn sips_validate() {
        let sip = fond_sip("Judgments of military courts", 3.0, 3);
        assert!(sip.validate().is_empty());
        assert!(sip.items.len() >= 9);
    }
}
