//! Structured run artifacts for the printable harness binaries.
//!
//! Every `src/bin/<name>.rs` wraps its harness call in an [`Emitter`],
//! which writes three files into `results/`:
//!
//! - `<name>.txt` — the human-readable report (same text the bin prints),
//! - `<name>.json` — a [`RunSummary`] with wall time and derived metrics,
//!   so future PRs can diff performance numerically,
//! - `<name>.telemetry.json` — the snapshot of the run's own
//!   [`itrust_obs::ObsCtx`], created fresh at [`Emitter::begin`] so it
//!   covers exactly this run,
//! - `<name>.trace.jsonl` — optionally (see [`Emitter::with_trace`]), one
//!   JSON line per completed span, streamed through a
//!   [`itrust_obs::JsonlTraceSink`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Machine-readable summary of one harness run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Experiment name (`d1`..`d8`, `fig1`, `fig2`, `table1`).
    pub name: String,
    /// Result rows (or sub-experiments) the run produced.
    pub iters: u64,
    /// End-to-end wall time of the run in seconds.
    pub wall_secs: f64,
    /// Experiment-specific derived metrics, named like obs metrics
    /// (dot-separated, lowercase).
    pub metrics: BTreeMap<String, f64>,
}

/// The `results/` directory, resolved relative to the workspace root so
/// binaries work from any working directory. `ITRUST_RESULTS_DIR`
/// overrides it (useful for scratch runs that must not touch the repo).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("ITRUST_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

/// The default trace path for a run: `results/<name>.trace.jsonl`.
pub fn trace_path(name: &str) -> PathBuf {
    results_dir().join(format!("{name}.trace.jsonl"))
}

/// Collects one run's timing and metrics, then writes the artifact trio.
///
/// The emitter owns the run's [`itrust_obs::ObsCtx`]: harnesses receive it
/// via [`Emitter::obs`], so two runs (even in one process) never share
/// telemetry state.
pub struct Emitter {
    name: &'static str,
    start: Instant,
    metrics: BTreeMap<String, f64>,
    obs: itrust_obs::ObsCtx,
    trace: Option<Arc<itrust_obs::JsonlTraceSink>>,
}

impl Emitter {
    /// Start a run with a fresh telemetry context, so the snapshot covers
    /// exactly this run.
    pub fn begin(name: &'static str) -> Self {
        Emitter {
            name,
            start: Instant::now(),
            metrics: BTreeMap::new(),
            obs: itrust_obs::ObsCtx::new(),
            trace: None,
        }
    }

    /// Stream completed spans to a `.trace.jsonl` file at `path` (created
    /// eagerly; flushed by [`Emitter::finish`]). Call before handing out
    /// [`Emitter::obs`]: the run's context is rebuilt around the sink.
    pub fn with_trace(mut self, path: impl AsRef<Path>) -> io::Result<Self> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        let sink = Arc::new(itrust_obs::JsonlTraceSink::create(path)?);
        self.obs = itrust_obs::ObsCtx::with_sink(sink.clone());
        self.trace = Some(sink);
        Ok(self)
    }

    /// The run's telemetry context; pass to the harness under measurement.
    pub fn obs(&self) -> &itrust_obs::ObsCtx {
        &self.obs
    }

    /// Record one derived metric.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.insert(key.to_string(), value);
        self
    }

    /// Stop the clock, flush the trace sink (if any), and write
    /// `<name>.txt`, `<name>.json`, and `<name>.telemetry.json` into
    /// [`results_dir`].
    pub fn finish(self, iters: u64, report: &str) -> io::Result<RunSummary> {
        let wall_secs = self.start.elapsed().as_secs_f64();
        let summary = RunSummary {
            name: self.name.to_string(),
            iters,
            wall_secs,
            metrics: self.metrics,
        };
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join(format!("{}.txt", self.name)), report)?;
        let summary_json =
            serde_json::to_string_pretty(&summary).expect("summary serialization cannot fail");
        std::fs::write(dir.join(format!("{}.json", self.name)), summary_json + "\n")?;
        std::fs::write(
            dir.join(format!("{}.telemetry.json", self.name)),
            self.obs.snapshot().to_json_pretty() + "\n",
        )?;
        if let Some(trace) = &self.trace {
            trace.flush()?;
        }
        Ok(summary)
    }
}
