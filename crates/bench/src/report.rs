//! Structured run artifacts for the printable harness binaries.
//!
//! Every `src/bin/<name>.rs` wraps its harness call in an [`Emitter`],
//! which writes three files into `results/`:
//!
//! - `<name>.txt` — the human-readable report (same text the bin prints),
//! - `<name>.json` — a [`RunSummary`] with wall time and derived metrics,
//!   so future PRs can diff performance numerically,
//! - `<name>.telemetry.json` — the snapshot of the run's own
//!   [`itrust_obs::ObsCtx`], created fresh at [`Emitter::begin`] so it
//!   covers exactly this run,
//! - `<name>.trace.jsonl` — optionally (see [`Emitter::with_trace`]), one
//!   JSON line per completed span, streamed through a
//!   [`itrust_obs::JsonlTraceSink`],
//! - `<name>.blackbox.json` — only when the process panics mid-run (see
//!   [`Emitter::with_blackbox`]): the flight recorder's last-N-events ring,
//!   for post-mortem analysis with `obstool blackbox`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Machine-readable summary of one harness run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Experiment name (`d1`..`d8`, `fig1`, `fig2`, `table1`).
    pub name: String,
    /// Result rows (or sub-experiments) the run produced.
    pub iters: u64,
    /// End-to-end wall time of the run in seconds.
    pub wall_secs: f64,
    /// Experiment-specific derived metrics, named like obs metrics
    /// (dot-separated, lowercase).
    pub metrics: BTreeMap<String, f64>,
}

/// The `results/` directory, resolved relative to the workspace root so
/// binaries work from any working directory. `ITRUST_RESULTS_DIR`
/// overrides it (useful for scratch runs that must not touch the repo).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("ITRUST_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

/// The default trace path for a run: `results/<name>.trace.jsonl`.
pub fn trace_path(name: &str) -> PathBuf {
    results_dir().join(format!("{name}.trace.jsonl"))
}

/// The flight-recorder dump path for a run: `results/<name>.blackbox.json`.
pub fn blackbox_path(name: &str) -> PathBuf {
    results_dir().join(format!("{name}.blackbox.json"))
}

/// Collects one run's timing and metrics, then writes the artifact trio.
///
/// The emitter owns the run's [`itrust_obs::ObsCtx`]: harnesses receive it
/// via [`Emitter::obs`], so two runs (even in one process) never share
/// telemetry state.
pub struct Emitter {
    name: &'static str,
    start: Instant,
    metrics: BTreeMap<String, f64>,
    meta: BTreeMap<String, String>,
    obs: itrust_obs::ObsCtx,
    trace: Option<Arc<itrust_obs::JsonlTraceSink>>,
    flight: Option<Arc<itrust_obs::FlightRecorder>>,
    /// Set while the run is live; cleared by [`Emitter::finish`] so the
    /// panic hook never dumps a blackbox for a run that completed cleanly.
    armed: Arc<AtomicBool>,
}

impl Emitter {
    /// Start a run with a fresh telemetry context, so the snapshot covers
    /// exactly this run. The snapshot's meta block is pre-filled with the
    /// run configuration (name, thread count, workspace version) —
    /// deterministic values only, never wall-clock time.
    pub fn begin(name: &'static str) -> Self {
        let mut meta = BTreeMap::new();
        meta.insert("name".to_string(), name.to_string());
        meta.insert("threads".to_string(), itrust_par::current_threads().to_string());
        meta.insert(
            "itrust_threads".to_string(),
            std::env::var("ITRUST_THREADS").unwrap_or_else(|_| "unset".to_string()),
        );
        meta.insert("version".to_string(), env!("CARGO_PKG_VERSION").to_string());
        Emitter {
            name,
            start: Instant::now(),
            metrics: BTreeMap::new(),
            meta,
            obs: itrust_obs::ObsCtx::new(),
            trace: None,
            flight: None,
            armed: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Rebuild the run context from the configured sink and flight
    /// recorder, so `with_trace`/`with_blackbox` compose in either order.
    fn rebuild_ctx(&mut self) {
        let sink = self
            .trace
            .as_ref()
            .map(|s| s.clone() as Arc<dyn itrust_obs::SpanSink>);
        self.obs = itrust_obs::ObsCtx::with_parts(sink, self.flight.clone());
    }

    /// Stream completed spans to a `.trace.jsonl` file at `path` (created
    /// eagerly; flushed by [`Emitter::finish`]). Call before handing out
    /// [`Emitter::obs`]: the run's context is rebuilt around the sink.
    pub fn with_trace(mut self, path: impl AsRef<Path>) -> io::Result<Self> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        self.trace = Some(Arc::new(itrust_obs::JsonlTraceSink::create(path)?));
        self.rebuild_ctx();
        Ok(self)
    }

    /// Attach a flight recorder: a ring buffer of the last `capacity`
    /// span/counter/gauge/hist events, dumped to
    /// `results/<name>.blackbox.json` if the process panics before
    /// [`Emitter::finish`]. A clean finish removes any stale dump. Call
    /// before handing out [`Emitter::obs`].
    pub fn with_blackbox(mut self, capacity: usize) -> Self {
        let flight = Arc::new(itrust_obs::FlightRecorder::new(capacity));
        self.flight = Some(flight.clone());
        self.rebuild_ctx();
        self.armed.store(true, Ordering::SeqCst);
        let armed = self.armed.clone();
        let path = blackbox_path(self.name);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if armed.swap(false, Ordering::SeqCst) {
                let dump = flight.dump(Some(info.to_string()));
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let _ = std::fs::write(&path, dump.to_json_pretty() + "\n");
                eprintln!("flight recorder dumped to {}", path.display());
            }
            prev(info);
        }));
        self
    }

    /// The run's telemetry context; pass to the harness under measurement.
    pub fn obs(&self) -> &itrust_obs::ObsCtx {
        &self.obs
    }

    /// Record one derived metric.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.insert(key.to_string(), value);
        self
    }

    /// Record one run-configuration entry for the telemetry meta block
    /// (e.g. the RNG seed). Values must be deterministic for the run.
    pub fn meta(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    /// Stop the clock, flush the trace sink (if any), and write
    /// `<name>.txt`, `<name>.json`, and `<name>.telemetry.json` into
    /// [`results_dir`].
    pub fn finish(self, iters: u64, report: &str) -> io::Result<RunSummary> {
        let wall_secs = self.start.elapsed().as_secs_f64();
        let summary = RunSummary {
            name: self.name.to_string(),
            iters,
            wall_secs,
            metrics: self.metrics,
        };
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join(format!("{}.txt", self.name)), report)?;
        let summary_json =
            serde_json::to_string_pretty(&summary).expect("summary serialization cannot fail");
        std::fs::write(dir.join(format!("{}.json", self.name)), summary_json + "\n")?;
        let mut snap = self.obs.snapshot();
        snap.meta = self.meta.clone();
        std::fs::write(
            dir.join(format!("{}.telemetry.json", self.name)),
            snap.to_json_pretty() + "\n",
        )?;
        if let Some(trace) = &self.trace {
            trace.flush()?;
        }
        // Disarm the panic hook and clear any dump left by an earlier
        // crashed run: reaching this point means the run completed.
        self.armed.store(false, Ordering::SeqCst);
        let blackbox = blackbox_path(self.name);
        if blackbox.exists() {
            std::fs::remove_file(blackbox)?;
        }
        Ok(summary)
    }
}
