//! # itrust-bench — experiment harnesses for every table and figure
//!
//! One module per experiment in DESIGN.md §3. Each exposes a `run()`
//! returning a printable report (the same rows the paper's exhibit implies)
//! plus the structured results, so the Criterion benches
//! (`benches/*.rs`) and the printable binaries (`src/bin/*.rs`) share one
//! implementation.
//!
//! | module | exhibit |
//! |--------|---------|
//! | [`harness::table1`] | Table 1 — heritage fond ingest (scaled) |
//! | [`harness::fig1`] | Figure 1 — PergaNet pipeline stage metrics |
//! | [`harness::fig2`] | Figure 2 — BIM database integration |
//! | [`harness::d1`] | ESCS simulator throughput / delay vs load |
//! | [`harness::d2`] | self-training vs supervised vs labeled fraction |
//! | [`harness::d3`] | TAR vs linear review |
//! | [`harness::d4`] | digital-twin preservation round trip |
//! | [`harness::d5`] | tamper detection + verification cost ablation |
//! | [`harness::d6`] | access index + record linking |
//! | [`harness::d7`] | continuous learning vs annotator error |
//! | [`harness::d8`] | privacy redaction throughput + leakage |
//! | [`harness::d9`] | fault-storm survival with self-healing repair |
//! | [`harness::d10`] | multi-tenant service layer under closed-loop load |

pub mod harness;
pub mod report;

/// Right-pad or align simple report tables.
pub fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:>w$}  ", w = w));
    }
    out.trim_end().to_string()
}
