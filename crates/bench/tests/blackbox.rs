//! Flight-recorder end-to-end: a panic between `Emitter::begin` and
//! `Emitter::finish` must leave a parseable `<name>.blackbox.json` behind,
//! and a clean finish must remove it again.
//!
//! Runs in its own integration-test binary because it installs a global
//! panic hook and sets `ITRUST_RESULTS_DIR` for the whole process.

use itrust_bench::report::{blackbox_path, Emitter};
use itrust_obs::FlightDump;

#[test]
fn panic_mid_run_dumps_a_blackbox_and_clean_finish_removes_it() {
    let dir = std::env::temp_dir().join(format!("itrust-blackbox-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("ITRUST_RESULTS_DIR", &dir);

    // Crash mid-run: the panic hook must write the dump.
    let crash = std::panic::catch_unwind(|| {
        let em = Emitter::begin("bbtest").with_blackbox(16);
        let ctx = em.obs().clone();
        for _ in 0..40 {
            itrust_obs::counter_inc!(&ctx, "bbtest.steps");
        }
        {
            let _span = itrust_obs::span!(&ctx, "bbtest.work");
        }
        panic!("synthetic failure at step 40");
    });
    assert!(crash.is_err());

    let path = blackbox_path("bbtest");
    let text = std::fs::read_to_string(&path).expect("panic hook wrote the blackbox dump");
    let dump = FlightDump::from_json(&text).expect("dump parses back");
    assert_eq!(dump.capacity, 16);
    assert_eq!(dump.recorded, 41, "40 counter events + 1 span");
    assert_eq!(dump.events.len(), 16, "ring keeps only the newest 16");
    assert_eq!(dump.dropped, 41 - 16);
    let panic_msg = dump.panic.as_deref().expect("panic message captured");
    assert!(panic_msg.contains("synthetic failure at step 40"), "{panic_msg}");
    assert!(dump.events.iter().any(|e| e.name == "bbtest.work"));

    // A clean run of the same name must clear the stale dump.
    let em = Emitter::begin("bbtest").with_blackbox(16);
    let ctx = em.obs().clone();
    itrust_obs::counter_add!(&ctx, "bbtest.steps", 1);
    em.finish(1, "clean run").unwrap();
    assert!(!path.exists(), "clean finish removes the stale blackbox");

    std::env::remove_var("ITRUST_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}
