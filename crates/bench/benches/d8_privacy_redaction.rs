//! D8 — sanitization and redaction throughput.

use archival_core::redaction::Redactor;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use escs::privacy::PrivacyProfile;
use itrust_bench::harness::d8::raw_calls;
use std::time::Duration;

fn redaction_bench(c: &mut Criterion) {
    let calls = raw_calls(10_000, 1);
    let profile = PrivacyProfile::research_default();
    let mut group = c.benchmark_group("d8/privacy");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(calls.len() as u64));
    group.bench_function("sanitize_10k_calls", |b| {
        b.iter(|| profile.apply_batch(std::hint::black_box(&calls)))
    });
    let redactor = Redactor::all();
    let narrative = "caller 206-555-0147 (mail ops@dispatch.example.org) reported \
                     smoke at 47.6097, -122.3331; SSN on file 123-45-6789";
    group.throughput(Throughput::Bytes(narrative.len() as u64));
    group.bench_function("redact_narrative", |b| {
        b.iter(|| redactor.redact(std::hint::black_box(narrative)))
    });
    group.finish();
}

criterion_group!(benches, redaction_bench);
criterion_main!(benches);
