//! F1 — PergaNet inference cost: per-stage and end-to-end, on a
//! pre-trained pipeline (training excluded from the timed region).

use criterion::{criterion_group, criterion_main, Criterion};
use itrust_bench::harness::fig1::trained_pipeline_small;
use std::time::Duration;

fn pipeline_bench(c: &mut Criterion) {
    let (mut net, test) = trained_pipeline_small();
    let image = test[0].image.clone();
    let mut group = c.benchmark_group("fig1/perganet");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.bench_function("stage1_classify", |b| {
        b.iter(|| net.classifier.predict(std::hint::black_box(&image)))
    });
    group.bench_function("stage2_text_detect", |b| {
        b.iter(|| net.text_detector.detect(std::hint::black_box(&image)))
    });
    group.bench_function("stage3_signum_detect", |b| {
        b.iter(|| net.signum_detector.detect(std::hint::black_box(&image)))
    });
    group.bench_function("end_to_end_analyze", |b| {
        b.iter(|| net.analyze(std::hint::black_box(&image)))
    });
    group.finish();
}

criterion_group!(benches, pipeline_bench);
criterion_main!(benches);
