//! D1 — ESCS discrete-event simulation cost (30 simulated minutes, quiet
//! vs disaster).

use criterion::{criterion_group, criterion_main, Criterion};
use escs::external::ExternalTimeline;
use escs::graph::Topology;
use escs::sim::{run, SimConfig};
use std::time::Duration;

fn sim_bench(c: &mut Criterion) {
    let duration = 30 * 60_000u64;
    let mut group = c.benchmark_group("d1/escs_sim");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, timeline) in [
        ("quiet_30min", ExternalTimeline::quiet()),
        ("disaster_30min", ExternalTimeline::disaster(duration)),
    ] {
        let config =
            SimConfig::with_defaults(Topology::metro(3), timeline, duration, 1);
        group.bench_function(name, |b| b.iter(|| run(std::hint::black_box(&config))));
    }
    group.finish();
}

criterion_group!(benches, sim_bench);
criterion_main!(benches);
