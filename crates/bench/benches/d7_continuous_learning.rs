//! D7 — cost of one continuous-learning retraining round.

use criterion::{criterion_group, criterion_main, Criterion};
use perganet::classifier::VggLite;
use perganet::corpus::{generate, CorpusConfig};
use std::time::Duration;

fn retrain_bench(c: &mut Criterion) {
    let pool = generate(CorpusConfig { count: 60, damage: 0, seed: 1 });
    let mut group = c.benchmark_group("d7/continuous_learning");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    group.bench_function("retrain_60_parchments_2_epochs", |b| {
        b.iter(|| {
            let mut model = VggLite::new(7);
            model.train(&pool, 2, 0.005)
        })
    });
    group.finish();
}

criterion_group!(benches, retrain_bench);
criterion_main!(benches);
