//! D4 — digital-twin archive + rehydrate cost.

use archival_core::ingest::Repository;
use criterion::{criterion_group, criterion_main, Criterion};
use digital_twin::archive::{archive_twin, DigitalTwin};
use digital_twin::rehydrate::rehydrate_twin;
use std::time::Duration;
use trustdb::store::{MemoryBackend, ObjectStore};

fn roundtrip_bench(c: &mut Criterion) {
    let twin = DigitalTwin::synthetic("Campus", 3, 1, 600_000, 1);
    let mut group = c.benchmark_group("d4/dt_roundtrip");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("archive_3_buildings", |b| {
        b.iter_batched(
            || Repository::new(ObjectStore::new(MemoryBackend::new())),
            |repo| archive_twin(&repo, &twin, 1_000, "a").unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let receipt = archive_twin(&repo, &twin, 1_000, "a").unwrap();
    group.bench_function("rehydrate_3_buildings", |b| {
        b.iter(|| rehydrate_twin(&repo, &receipt.aip_id).unwrap())
    });
    group.finish();
}

criterion_group!(benches, roundtrip_bench);
criterion_main!(benches);
