//! D5 — fixity sweep and audit-chain verification cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use itrust_bench::harness::d5::{tamper_run, verify_ablation};
use std::time::Duration;
use trustdb::audit::AuditLog;
use trustdb::event::EventKind;

fn sweep_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("d5/tamper");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let obs = itrust_obs::ObsCtx::default();
    group.bench_function("sweep_1000_objects_1pct_corrupt", |b| {
        b.iter(|| tamper_run(1_000, 10, 1, &obs))
    });
    group.finish();
}

fn audit_bench(c: &mut Criterion) {
    let audit = AuditLog::new();
    for i in 0..10_000u64 {
        audit.append(i, "agent", EventKind::Ingest, format!("rec-{i}"), "x").unwrap();
    }
    let mut group = c.benchmark_group("d5/audit_chain");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("verify_10k_entries", |b| b.iter(|| audit.verify_chain().unwrap()));
    group.bench_function("merkle_proof_vs_chain_ablation", |b| {
        b.iter(|| verify_ablation(1_000))
    });
    group.finish();
}

criterion_group!(benches, sweep_bench, audit_bench);
criterion_main!(benches);
