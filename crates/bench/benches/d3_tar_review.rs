//! D3 — cost of a full TAR pass vs corpus size.

use criterion::{criterion_group, criterion_main, Criterion};
use itrust_core::sensitivity::generate_corpus;
use itrust_core::tar::{tar_review, TarConfig};
use std::time::Duration;

fn tar_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("d3/tar_review");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[200usize, 500] {
        let corpus = generate_corpus(n, 0.1, 0.1, 2);
        group.bench_function(&format!("full_pass_{n}_docs"), |b| {
            b.iter(|| tar_review(std::hint::black_box(&corpus), TarConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, tar_bench);
criterion_main!(benches);
