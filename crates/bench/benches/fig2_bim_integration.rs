//! F2 — BIM database-integration throughput (6 heterogeneous sources into
//! a 7-building campus).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use digital_twin::bim::BimModel;
use digital_twin::integration::{integrate_all, synthetic_source, SourceKind};
use std::time::Duration;

fn integration_bench(c: &mut Criterion) {
    let model = BimModel::synthetic_campus("Campus", 7, 3, 10);
    let sources: Vec<_> = SourceKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &k)| synthetic_source(&model, k, 0.85, 5, 3, 100 + i as u64))
        .collect();
    let records: usize = sources.iter().map(|s| s.records.len()).sum();
    let mut group = c.benchmark_group("fig2/bim_integration");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(records as u64));
    group.bench_function("six_sources_into_campus", |b| {
        b.iter_batched(
            || BimModel::synthetic_campus("Campus", 7, 3, 10),
            |mut m| integrate_all(&mut m, &sources),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, integration_bench);
criterion_main!(benches);
