//! D6 — BM25 build and query cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use itrust_bench::harness::d6::descriptions;
use itrust_core::access::AccessIndex;
use std::time::Duration;

fn index_bench(c: &mut Criterion) {
    let docs = descriptions(5_000, 1);
    let mut group = c.benchmark_group("d6/access_index");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(docs.len() as u64));
    group.bench_function("build_5k_docs", |b| {
        b.iter(|| {
            let mut idx = AccessIndex::default();
            for (id, text) in &docs {
                idx.add(id.clone(), text);
            }
            idx
        })
    });
    let mut index = AccessIndex::default();
    for (id, text) in &descriptions(20_000, 2) {
        index.add(id.clone(), text);
    }
    group.throughput(Throughput::Elements(1));
    group.bench_function("query_20k_docs", |b| {
        b.iter(|| index.search(std::hint::black_box("signum parchment notary"), 10))
    });
    group.finish();
}

criterion_group!(benches, index_bench);
criterion_main!(benches);
