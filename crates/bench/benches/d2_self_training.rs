//! D2 — cost of supervised vs self-training fits at 2% labels.

use criterion::{criterion_group, criterion_main, Criterion};
use itrust_core::sensitivity::{generate_corpus, FitMode, SensitivityModel};
use std::time::Duration;

fn fit_bench(c: &mut Criterion) {
    let pool = generate_corpus(400, 0.3, 0.2, 1);
    let labeled: Vec<_> = pool.iter().take(8).cloned().collect();
    let unlabeled: Vec<String> = pool.iter().skip(8).map(|d| d.text.clone()).collect();
    let mut group = c.benchmark_group("d2/self_training");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("supervised_fit", |b| {
        b.iter(|| SensitivityModel::fit(&labeled, &[], FitMode::Supervised))
    });
    group.bench_function("self_training_fit", |b| {
        b.iter(|| SensitivityModel::fit(&labeled, &unlabeled, FitMode::SemiSupervised))
    });
    group.finish();
}

criterion_group!(benches, fit_bench);
criterion_main!(benches);
