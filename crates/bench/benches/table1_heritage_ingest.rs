//! T1 — accession throughput (Table 1 workload shape) plus the WAL
//! group-commit ablation called out in DESIGN.md §4.

use archival_core::ingest::Repository;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use itrust_bench::harness::table1::fond_sip;
use std::time::Duration;
use trustdb::store::{MemoryBackend, ObjectStore};
use trustdb::wal::{SyncPolicy, Wal};

fn ingest_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/ingest");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    // "Judgments of military courts": 3 TB → ~0.3 MiB of synthetic scans.
    let template = fond_sip("Judgments of military courts", 3.0, 1);
    group.throughput(Throughput::Bytes(template.payload_bytes()));
    group.bench_function("judgments_fond", |b| {
        b.iter_batched(
            || {
                (
                    Repository::new(ObjectStore::new(MemoryBackend::new())),
                    fond_sip("Judgments of military courts", 3.0, 1),
                )
            },
            |(repo, sip)| repo.ingest(sip, 1_000, "archivist").unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn wal_sync_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/wal_sync_ablation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let frames: Vec<Vec<u8>> = (0..64).map(|i| vec![i as u8; 4096]).collect();
    for (name, policy) in [
        ("fsync_per_record", SyncPolicy::Always),
        ("group_commit", SyncPolicy::GroupCommit),
        ("no_sync", SyncPolicy::Never),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut path = std::env::temp_dir();
                    path.push(format!(
                        "itrust-bench-wal-{}-{:x}",
                        std::process::id(),
                        rand::random::<u64>()
                    ));
                    Wal::open(&path, policy).unwrap()
                },
                |wal| {
                    match policy {
                        // Per-record: one append (and one fsync) per frame.
                        SyncPolicy::Always => {
                            for f in &frames {
                                wal.append(f).unwrap();
                            }
                        }
                        // Group commit: one batch, one fsync.
                        _ => {
                            wal.append_batch(frames.iter().map(|f| f.as_slice())).unwrap();
                        }
                    }
                    let p = wal.path().to_path_buf();
                    drop(wal);
                    std::fs::remove_file(p).ok();
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, ingest_bench, wal_sync_ablation);
criterion_main!(benches);
