//! Admission control: token-bucket rate limiting on the injected clock.
//!
//! The service front end protects the preservation substrate from load it
//! cannot absorb. Two mechanisms compose:
//!
//! * a **bounded queue** (owned by the executor) — requests beyond the
//!   queue capacity are shed immediately with [`trustdb::Error::Overloaded`];
//! * a **token bucket** (this module) — the executor drains at most
//!   `tokens` requests per tick, so throughput is capped at
//!   `refill_per_ms` ops/ms with bursts up to `capacity`.
//!
//! Time comes exclusively from the injected [`Clock`] — never the wall
//! clock — so the bucket refills deterministically under a
//! [`trustdb::replica::ManualClock`] and every admission decision is
//! reproducible bit-for-bit across runs and thread counts.

use parking_lot::Mutex;
use std::sync::Arc;
use trustdb::replica::Clock;

/// Rate-limit parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketConfig {
    /// Maximum tokens the bucket holds (burst size). Also the initial fill.
    pub capacity: u64,
    /// Tokens added per elapsed virtual millisecond.
    pub refill_per_ms: u64,
}

impl BucketConfig {
    /// A bucket that never limits (both knobs effectively infinite).
    pub fn unlimited() -> Self {
        BucketConfig { capacity: u64::MAX, refill_per_ms: u64::MAX }
    }
}

#[derive(Debug)]
struct BucketState {
    tokens: u64,
    last_refill_ms: u64,
}

/// Integer token bucket driven by an injected [`Clock`].
pub struct TokenBucket {
    config: BucketConfig,
    clock: Arc<dyn Clock>,
    state: Mutex<BucketState>,
}

impl TokenBucket {
    /// A bucket starting full, with `last_refill` pinned to the clock's
    /// current reading.
    pub fn new(config: BucketConfig, clock: Arc<dyn Clock>) -> Self {
        let now = clock.now_ms();
        TokenBucket {
            config,
            clock,
            state: Mutex::new(BucketState { tokens: config.capacity, last_refill_ms: now }),
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> BucketConfig {
        self.config
    }

    fn refill(&self, state: &mut BucketState) {
        let now = self.clock.now_ms();
        let elapsed = now.saturating_sub(state.last_refill_ms);
        if elapsed > 0 {
            state.tokens = state
                .tokens
                .saturating_add(elapsed.saturating_mul(self.config.refill_per_ms))
                .min(self.config.capacity);
            state.last_refill_ms = now;
        }
    }

    /// Refill from the clock, then report available tokens without taking.
    pub fn available(&self) -> u64 {
        let mut state = self.state.lock();
        self.refill(&mut state);
        state.tokens
    }

    /// Take one token if available.
    pub fn try_take(&self) -> bool {
        self.take_up_to(1) == 1
    }

    /// Refill, then take up to `max` tokens; returns how many were taken.
    /// The executor calls this once per tick to size its admission batch.
    pub fn take_up_to(&self, max: u64) -> u64 {
        let mut state = self.state.lock();
        self.refill(&mut state);
        let take = state.tokens.min(max);
        state.tokens -= take;
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustdb::replica::ManualClock;

    fn bucket(capacity: u64, refill: u64) -> (Arc<ManualClock>, TokenBucket) {
        let clock = Arc::new(ManualClock::new());
        let b = TokenBucket::new(
            BucketConfig { capacity, refill_per_ms: refill },
            clock.clone() as Arc<dyn Clock>,
        );
        (clock, b)
    }

    #[test]
    fn starts_full_and_drains() {
        let (_clock, b) = bucket(3, 1);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take(), "empty bucket with no elapsed time must refuse");
    }

    #[test]
    fn manual_clock_refill_is_exact() {
        // The satellite-3 refill test: drain the bucket, advance the
        // ManualClock, and check the refill arithmetic token by token.
        let (clock, b) = bucket(10, 2);
        assert_eq!(b.take_up_to(u64::MAX), 10);
        assert_eq!(b.available(), 0);
        clock.advance_ms(3); // 3 ms × 2 tokens/ms = 6 tokens
        assert_eq!(b.available(), 6);
        assert_eq!(b.take_up_to(4), 4);
        assert_eq!(b.available(), 2);
        clock.advance_ms(100); // refill caps at capacity, not 202
        assert_eq!(b.available(), 10);
    }

    #[test]
    fn take_up_to_is_bounded_by_both_sides() {
        let (clock, b) = bucket(5, 1);
        assert_eq!(b.take_up_to(3), 3, "bounded by the ask");
        assert_eq!(b.take_up_to(10), 2, "bounded by the tokens left");
        assert_eq!(b.take_up_to(10), 0);
        clock.advance_ms(2);
        assert_eq!(b.take_up_to(10), 2);
    }

    #[test]
    fn unlimited_never_refuses() {
        let (_clock, b) = bucket(u64::MAX, u64::MAX);
        for _ in 0..10_000 {
            assert!(b.try_take());
        }
        // Saturating arithmetic: a huge elapsed interval must not overflow.
        let (clock, b) = bucket(u64::MAX, u64::MAX);
        clock.advance_ms(u32::MAX as u64);
        assert!(b.try_take());
    }
}
