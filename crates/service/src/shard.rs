//! Hash-partitioned sharded store.
//!
//! One [`ShardedStore`] fans a multi-tenant key space out over N
//! [`Shard`]s. Each shard is a complete, self-contained preservation unit:
//! its own content-addressed [`ObjectStore`], its own write-ahead log, its
//! own tamper-evident audit chain, and its own catalog mapping scoped
//! `(tenant, key)` names to content digests. Routing is the deterministic
//! [`shard_of`] hash, so the same `(tenant, key)` always lands on the same
//! shard regardless of thread count, process, or machine — the property
//! that lets the D10 load experiment produce byte-identical reports at any
//! `ITRUST_THREADS`.
//!
//! Concurrency contract: a shard's mutating operations are internally
//! locked and safe to call from any thread, but *deterministic ordering*
//! (WAL frame order, audit chain order) is the caller's job — the
//! [`crate::executor::ServiceExecutor`] serializes each shard's operations
//! within a tick while running distinct shards in parallel over
//! `itrust-par`.

use crate::tenant::{Quota, Tenant};
use bytes::Bytes;
use itrust_obs::ObsCtx;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use trustdb::audit::AuditLog;
use trustdb::event::EventKind;
use trustdb::errors::{Error, Result};
use trustdb::fixity::{FixityAuditor, FixityReport};
use trustdb::hash::{sha256, Digest};
use trustdb::merkle::MerkleTree;
use trustdb::store::{MemoryBackend, ObjectStore};
use trustdb::wal::{SyncPolicy, Wal};

/// Deterministic shard routing: SHA-256 over the length-prefixed tenant
/// and key, reduced mod `shards`. Length prefixes keep `("ab","c")` and
/// `("a","bc")` on independent routes.
pub fn shard_of(shards: usize, tenant: &str, key: &str) -> usize {
    let mut msg = Vec::with_capacity(8 + tenant.len() + key.len());
    msg.extend_from_slice(&(tenant.len() as u32).to_le_bytes());
    msg.extend_from_slice(tenant.as_bytes());
    msg.extend_from_slice(&(key.len() as u32).to_le_bytes());
    msg.extend_from_slice(key.as_bytes());
    let h = sha256(&msg);
    let mut word = [0u8; 8];
    word.copy_from_slice(&h.0[..8]);
    (u64::from_le_bytes(word) % shards.max(1) as u64) as usize
}

/// Durability configuration for the per-shard write-ahead logs.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding one `shard-<i>.wal` file per shard.
    pub dir: PathBuf,
    /// Sync policy for appends.
    pub sync: SyncPolicy,
}

/// Configuration for a [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Optional WAL durability; `None` keeps shards purely in memory.
    pub wal: Option<WalConfig>,
}

impl ShardedConfig {
    /// In-memory store with `shards` partitions and no WAL.
    pub fn in_memory(shards: usize) -> Self {
        ShardedConfig { shards, wal: None }
    }

    /// Durable store: per-shard WALs under `dir`.
    pub fn durable(shards: usize, dir: impl Into<PathBuf>, sync: SyncPolicy) -> Self {
        ShardedConfig { shards, wal: Some(WalConfig { dir: dir.into(), sync }) }
    }
}

/// Outcome of one shard put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutOutcome {
    /// Content address of the stored payload.
    pub digest: Digest,
    /// True when the `(tenant, key)` already held identical content; the
    /// write was a no-op and any quota reservation should be returned.
    pub deduplicated: bool,
}

/// One partition: object store + WAL + audit chain + scoped catalog.
pub struct Shard {
    index: usize,
    store: ObjectStore<MemoryBackend>,
    wal: Option<Wal>,
    audit: AuditLog,
    /// `(tenant, key) → digest`. BTreeMap so catalog walks (fixity roots,
    /// listings) are deterministically ordered.
    catalog: RwLock<BTreeMap<(String, String), Digest>>,
}

/// Encode one WAL frame: `[tenant][key][digest][payload]`, strings
/// length-prefixed.
fn encode_frame(tenant: &str, key: &str, digest: &Digest, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + tenant.len() + key.len() + 32 + payload.len());
    buf.extend_from_slice(&(tenant.len() as u32).to_le_bytes());
    buf.extend_from_slice(tenant.as_bytes());
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key.as_bytes());
    buf.extend_from_slice(&digest.0);
    buf.extend_from_slice(payload);
    buf
}

/// Decode a frame produced by [`encode_frame`].
fn decode_frame(frame: &[u8]) -> Result<(String, String, Digest, Vec<u8>)> {
    let corrupt = |detail: &str| Error::Codec(format!("service WAL frame: {detail}"));
    let take_str = |buf: &[u8], at: usize| -> Result<(String, usize)> {
        if buf.len() < at + 4 {
            return Err(corrupt("truncated length"));
        }
        let mut len = [0u8; 4];
        // itrust-lint: allow(panic-reachable) — shard slots are selected modulo the shard count
        len.copy_from_slice(&buf[at..at + 4]);
        let len = u32::from_le_bytes(len) as usize;
        if buf.len() < at + 4 + len {
            return Err(corrupt("truncated string"));
        }
        let s = std::str::from_utf8(&buf[at + 4..at + 4 + len])
            .map_err(|_| corrupt("non-utf8 name"))?;
        Ok((s.to_string(), at + 4 + len))
    };
    let (tenant, at) = take_str(frame, 0)?;
    let (key, at) = take_str(frame, at)?;
    if frame.len() < at + 32 {
        return Err(corrupt("truncated digest"));
    }
    let mut d = [0u8; 32];
    d.copy_from_slice(&frame[at..at + 32]);
    Ok((tenant, key, Digest(d), frame[at + 32..].to_vec()))
}

impl Shard {
    fn open(index: usize, wal: Option<&WalConfig>, obs: &ObsCtx) -> Result<Self> {
        // The shard's store is deliberately *not* wired to the service
        // ObsCtx: per-object spans would dominate the trace at load-test
        // volumes (tens of thousands of ops). The service layer records
        // its own counters per put/get instead.
        let store = ObjectStore::new(MemoryBackend::new());
        let mut catalog = BTreeMap::new();
        let wal = match wal {
            None => None,
            Some(cfg) => {
                std::fs::create_dir_all(&cfg.dir)?;
                let wal = Wal::open_with_obs(
                    cfg.dir.join(format!("shard-{index}.wal")),
                    cfg.sync,
                    obs.clone(),
                )?;
                // Recovery: replay every intact frame into the store and
                // catalog. Each payload is re-hashed; a frame whose bytes no
                // longer match their recorded digest is an integrity
                // incident, not a recoverable tail.
                for frame in wal.replay()?.frames {
                    let (tenant, key, digest, payload) = decode_frame(&frame)?;
                    let actual = sha256(&payload);
                    if actual != digest {
                        return Err(Error::DigestMismatch {
                            expected: digest.to_hex(),
                            actual: actual.to_hex(),
                        });
                    }
                    store.put(payload)?;
                    catalog.insert((tenant, key), digest);
                }
                Some(wal)
            }
        };
        Ok(Shard { index, store, wal, audit: AuditLog::new(), catalog: RwLock::new(catalog) })
    }

    /// This shard's position in the ring.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Store `payload` under the scoped `(tenant, key)`.
    ///
    /// * Existing key, identical content → idempotent
    ///   ([`PutOutcome::deduplicated`]).
    /// * Existing key, different content → [`Error::InvariantViolation`]:
    ///   records are immutable; updates are new keys.
    ///
    /// The WAL frame is appended before the store write (redo-log
    /// discipline) and the ingest lands in the shard's audit chain at
    /// `now_ms`.
    pub fn put(&self, tenant: &str, key: &str, payload: Bytes, now_ms: u64) -> Result<PutOutcome> {
        let digest = sha256(&payload);
        let scoped = (tenant.to_string(), key.to_string());
        {
            let catalog = self.catalog.read();
            if let Some(existing) = catalog.get(&scoped) {
                if *existing == digest {
                    return Ok(PutOutcome { digest, deduplicated: true });
                }
                return Err(Error::InvariantViolation(format!(
                    "key {tenant}/{key} already holds different content (records are immutable)"
                )));
            }
        }
        if let Some(wal) = &self.wal {
            wal.append(&encode_frame(tenant, key, &digest, &payload))?;
        }
        let stored = self.store.put(payload)?;
        debug_assert_eq!(stored, digest);
        self.catalog.write().insert(scoped, digest);
        self.audit.append(
            now_ms,
            format!("tenant:{tenant}"),
            EventKind::Ingest,
            format!("{tenant}/{key}"),
            digest.to_hex(),
        )?;
        Ok(PutOutcome { digest, deduplicated: false })
    }

    /// Fetch the payload at the scoped `(tenant, key)`. A key owned by a
    /// different tenant is indistinguishable from an absent one —
    /// [`Error::NotFound`] either way, so the namespace cannot be probed.
    pub fn get(&self, tenant: &str, key: &str) -> Result<Bytes> {
        let digest = {
            let catalog = self.catalog.read();
            match catalog.get(&(tenant.to_string(), key.to_string())) {
                Some(d) => *d,
                None => return Err(Error::NotFound(format!("{tenant}/{key}"))),
            }
        };
        self.store.get(&digest)
    }

    /// Number of cataloged objects.
    pub fn object_count(&self) -> usize {
        self.catalog.read().len()
    }

    /// Total payload bytes stored (post-dedup).
    pub fn payload_bytes(&self) -> u64 {
        self.store.payload_bytes()
    }

    /// WAL frames appended over this shard's lifetime (0 without a WAL).
    pub fn wal_frames(&self) -> u64 {
        self.wal.as_ref().map(|w| w.frame_count()).unwrap_or(0)
    }

    /// Length of the shard's audit chain.
    pub fn audit_len(&self) -> usize {
        self.audit.len()
    }

    /// The shard's audit chain (ingests + fixity sweeps, hash-linked).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The shard's fixity root: a Merkle root over the catalog in
    /// deterministic `(tenant, key)` order, each leaf committing to the
    /// scoped name *and* the content digest. Two shards with identical
    /// holdings-and-names share a root; any divergence in membership,
    /// naming, or content changes it. [`Digest::zero`] for an empty shard.
    pub fn fixity_root(&self) -> Digest {
        let catalog = self.catalog.read();
        let leaves: Vec<Vec<u8>> = catalog
            .iter()
            .map(|((tenant, key), digest)| encode_frame(tenant, key, digest, &[]))
            .collect();
        match MerkleTree::from_leaves(leaves.iter().map(|l| l.as_slice())) {
            Some(tree) => tree.root(),
            None => Digest::zero(),
        }
    }

    /// Re-hash every object, record the sweep in the audit chain, and
    /// verify the chain itself.
    pub fn verify(&self, now_ms: u64) -> Result<FixityReport> {
        let auditor = FixityAuditor::new(&self.store, &self.audit, format!("shard-{}", self.index));
        let report = auditor.sweep(now_ms)?;
        self.audit.verify_chain()?;
        Ok(report)
    }
}

/// Hash-partitioned, multi-tenant store: N independent [`Shard`]s plus the
/// tenant registry. See the module docs for the concurrency contract.
pub struct ShardedStore {
    shards: Vec<Shard>,
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    obs: ObsCtx,
}

impl ShardedStore {
    /// Open a store per `config`, replaying any existing per-shard WALs.
    pub fn open(config: &ShardedConfig, obs: ObsCtx) -> Result<Self> {
        if config.shards == 0 {
            return Err(Error::InvariantViolation("shard count must be ≥ 1".into()));
        }
        let shards = (0..config.shards)
            .map(|i| Shard::open(i, config.wal.as_ref(), &obs))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedStore { shards, tenants: RwLock::new(BTreeMap::new()), obs })
    }

    /// In-memory store with `shards` partitions and a null telemetry
    /// context (tests, examples).
    pub fn in_memory(shards: usize) -> Result<Self> {
        Self::open(&ShardedConfig::in_memory(shards), ObsCtx::null())
    }

    /// The service-level telemetry context shared by all shards.
    pub fn obs(&self) -> &ObsCtx {
        &self.obs
    }

    /// Register a tenant namespace. Rejects duplicates.
    pub fn register_tenant(&self, name: impl Into<String>, quota: Quota) -> Result<Arc<Tenant>> {
        let name = name.into();
        let mut tenants = self.tenants.write();
        if tenants.contains_key(&name) {
            return Err(Error::InvariantViolation(format!("tenant {name} already registered")));
        }
        let tenant = Arc::new(Tenant::new(name.clone(), quota));
        tenants.insert(name, tenant.clone());
        Ok(tenant)
    }

    /// Look up a tenant, or [`Error::NotFound`].
    pub fn tenant(&self, name: &str) -> Result<Arc<Tenant>> {
        self.tenants
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("tenant:{name}")))
    }

    /// Registered tenants, in name order.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants.read().values().cloned().collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow shard `i` (panics never: returns `None` out of range).
    pub fn shard(&self, i: usize) -> Option<&Shard> {
        self.shards.get(i)
    }

    /// All shards, in ring order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Route a scoped key to its shard index.
    pub fn route(&self, tenant: &str, key: &str) -> usize {
        shard_of(self.shards.len(), tenant, key)
    }

    /// Store `payload` for `tenant` under `key`: reserves quota, routes,
    /// writes. Dedup hands the reservation back.
    pub fn put(&self, tenant: &str, key: &str, payload: Bytes, now_ms: u64) -> Result<Digest> {
        let t = self.tenant(tenant)?;
        t.reserve(payload.len() as u64)?;
        match self.put_prereserved(&t, key, payload, now_ms) {
            Ok(outcome) => Ok(outcome.digest),
            Err(e) => Err(e),
        }
    }

    /// [`ShardedStore::put`] for callers that already hold a quota
    /// reservation (the admission executor reserves at submit time so
    /// queued work can never overrun a budget). Releases the reservation on
    /// dedup or failure.
    pub fn put_prereserved(
        &self,
        tenant: &Arc<Tenant>,
        key: &str,
        payload: Bytes,
        now_ms: u64,
    ) -> Result<PutOutcome> {
        let bytes = payload.len() as u64;
        // itrust-lint: allow(panic-reachable) — shard slots are selected modulo the shard count
        let shard = &self.shards[self.route(tenant.name(), key)];
        match shard.put(tenant.name(), key, payload, now_ms) {
            Ok(outcome) => {
                if outcome.deduplicated {
                    tenant.release(bytes);
                    itrust_obs::counter_inc!(self.obs, "service.store.dedup_hits");
                } else {
                    itrust_obs::counter_inc!(self.obs, "service.store.puts");
                    itrust_obs::counter_add!(self.obs, "service.store.put_bytes", bytes);
                    itrust_obs::counter_inc!(tenant.obs(), "service.tenant.puts");
                    itrust_obs::counter_add!(tenant.obs(), "service.tenant.bytes_in", bytes);
                }
                Ok(outcome)
            }
            Err(e) => {
                tenant.release(bytes);
                Err(e)
            }
        }
    }

    /// Fetch `tenant`'s object at `key`.
    pub fn get(&self, tenant: &str, key: &str) -> Result<Bytes> {
        let t = self.tenant(tenant)?;
        // itrust-lint: allow(panic-reachable) — shard slots are selected modulo the shard count
        let shard = &self.shards[self.route(tenant, key)];
        let bytes = shard.get(tenant, key)?;
        itrust_obs::counter_inc!(self.obs, "service.store.gets");
        itrust_obs::counter_inc!(t.obs(), "service.tenant.gets");
        itrust_obs::counter_add!(t.obs(), "service.tenant.bytes_out", bytes.len() as u64);
        Ok(bytes)
    }

    /// Per-shard fixity roots, in ring order.
    pub fn fixity_roots(&self) -> Vec<Digest> {
        self.shards.iter().map(|s| s.fixity_root()).collect()
    }

    /// Sweep every shard (in parallel over `itrust-par`; each shard's sweep
    /// appends exactly one audit entry so chains stay deterministic) and
    /// verify every audit chain.
    pub fn verify_all(&self, now_ms: u64) -> Result<Vec<FixityReport>> {
        let _span = itrust_obs::span!(self.obs, "service.store.verify_all");
        itrust_par::par_map(&self.shards, |s| s.verify(now_ms)).into_iter().collect()
    }

    /// Total cataloged objects across shards.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.object_count()).sum()
    }

    /// Total payload bytes across shards.
    pub fn payload_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.payload_bytes()).sum()
    }

    /// Export the per-shard audit chains into a provenance ledger as one
    /// merged history. Entries are ordered by `(timestamp_ms, shard,
    /// seq)` — a deterministic total order that respects each chain's
    /// internal order — so the merged stream satisfies the ledger's
    /// monotone-timestamp invariant regardless of shard count or thread
    /// schedule. Pass a tenant name to export only that tenant's events
    /// (scoped-subject prefix match); `None` exports everything,
    /// including shard-level fixity sweeps. Returns the number of events
    /// appended.
    pub fn export_to_ledger(
        &self,
        ledger: &itrust_ledger::Ledger,
        tenant: Option<&str>,
    ) -> Result<u64> {
        let _span = itrust_obs::span!(self.obs, "service.store.export_to_ledger");
        let prefix = tenant.map(|t| format!("{t}/"));
        let mut merged: Vec<(u64, usize, u64, trustdb::event::LedgerEvent)> = Vec::new();
        for shard in &self.shards {
            for e in shard.audit().export() {
                if let Some(p) = &prefix {
                    if !e.subject.starts_with(p.as_str()) {
                        continue;
                    }
                }
                merged.push((e.timestamp_ms, shard.index(), e.seq, e));
            }
        }
        merged.sort_by_key(|a| (a.0, a.1, a.2));
        let n = ledger.ingest(merged.iter().map(|(_, _, _, e)| e))?;
        itrust_obs::counter_add!(self.obs, "service.store.ledger_exports", n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_tenants(shards: usize) -> ShardedStore {
        let store = ShardedStore::in_memory(shards).unwrap();
        store.register_tenant("alpha", Quota::unlimited()).unwrap();
        store.register_tenant("beta", Quota::unlimited()).unwrap();
        store
    }

    #[test]
    fn routing_is_deterministic_and_spreads() {
        let mut hit = [0usize; 8];
        for i in 0..800 {
            let s = shard_of(8, "tenant", &format!("key-{i}"));
            assert_eq!(s, shard_of(8, "tenant", &format!("key-{i}")));
            hit[s] += 1;
        }
        for (i, n) in hit.iter().enumerate() {
            assert!(*n > 40, "shard {i} starved: {n} of 800");
        }
        // Length prefixing separates ("ab","c") routing from ("a","bc").
        let a = shard_of(1024, "ab", "c");
        let b = shard_of(1024, "a", "bc");
        assert!(a < 1024 && b < 1024);
    }

    #[test]
    fn put_get_round_trip_and_cross_tenant_isolation() {
        let store = store_with_tenants(4);
        let d = store.put("alpha", "doc-1", Bytes::from_static(b"alpha master"), 10).unwrap();
        assert_eq!(&store.get("alpha", "doc-1").unwrap()[..], b"alpha master");
        assert_eq!(d, sha256(b"alpha master"));
        // beta cannot see (or probe) alpha's key.
        assert!(matches!(store.get("beta", "doc-1"), Err(Error::NotFound(_))));
        // Unknown tenants are rejected outright.
        assert!(matches!(store.get("gamma", "doc-1"), Err(Error::NotFound(_))));
        assert!(matches!(
            store.put("gamma", "k", Bytes::from_static(b"x"), 11),
            Err(Error::NotFound(_))
        ));
    }

    #[test]
    fn same_key_same_content_dedups_and_returns_quota() {
        let store = ShardedStore::in_memory(4).unwrap();
        let t = store.register_tenant("alpha", Quota { max_objects: 10, max_bytes: 100 }).unwrap();
        store.put("alpha", "k", Bytes::from_static(b"same"), 1).unwrap();
        store.put("alpha", "k", Bytes::from_static(b"same"), 2).unwrap();
        assert_eq!(t.usage().objects, 1, "dedup must not double-charge the quota");
        assert_eq!(store.object_count(), 1);
        // Same key, different content: immutability violation.
        let err = store.put("alpha", "k", Bytes::from_static(b"other"), 3).unwrap_err();
        assert!(matches!(err, Error::InvariantViolation(_)));
        assert_eq!(t.usage().objects, 1, "failed put must hand its reservation back");
    }

    #[test]
    fn quota_rejection_charges_nothing() {
        let store = ShardedStore::in_memory(2).unwrap();
        let t = store.register_tenant("small", Quota { max_objects: 1, max_bytes: 1024 }).unwrap();
        store.put("small", "a", Bytes::from_static(b"one"), 1).unwrap();
        let err = store.put("small", "b", Bytes::from_static(b"two"), 2).unwrap_err();
        assert!(matches!(err, Error::QuotaExceeded { .. }));
        assert_eq!(t.usage().objects, 1);
        assert_eq!(store.object_count(), 1);
    }

    #[test]
    fn per_shard_chains_and_roots_track_ingest() {
        let store = store_with_tenants(4);
        let before: Vec<Digest> = store.fixity_roots();
        assert!(before.iter().all(|r| *r == Digest::zero()));
        for i in 0..40 {
            store.put("alpha", &format!("k{i}"), Bytes::from(vec![i as u8; 64]), i as u64).unwrap();
        }
        let roots = store.fixity_roots();
        assert_ne!(roots, before);
        let mut total_audit = 0;
        for shard in store.shards() {
            assert_eq!(shard.audit_len(), shard.object_count());
            shard.audit().verify_chain().unwrap();
            total_audit += shard.audit_len();
        }
        assert_eq!(total_audit, 40);
        for report in store.verify_all(100).unwrap() {
            assert!(report.is_clean());
        }
    }

    #[test]
    fn fixity_root_commits_to_names_not_just_content() {
        // Same payload under two different keys on the same shard must
        // change the root: the root covers the namespace mapping.
        let store = ShardedStore::in_memory(1).unwrap();
        store.register_tenant("alpha", Quota::unlimited()).unwrap();
        store.put("alpha", "k1", Bytes::from_static(b"payload"), 1).unwrap();
        let r1 = store.fixity_roots()[0];
        store.put("alpha", "k2", Bytes::from_static(b"payload"), 2).unwrap();
        let r2 = store.fixity_roots()[0];
        assert_ne!(r1, r2);
    }

    #[test]
    fn wal_replay_recovers_catalog_and_store() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("itrust-service-walrec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ShardedConfig::durable(3, &dir, SyncPolicy::Never);
        let digests: Vec<Digest>;
        {
            let store = ShardedStore::open(&config, ObsCtx::null()).unwrap();
            store.register_tenant("alpha", Quota::unlimited()).unwrap();
            digests = (0..12)
                .map(|i| {
                    store
                        .put("alpha", &format!("k{i}"), Bytes::from(vec![i as u8 ^ 0x5A; 100]), i)
                        .unwrap()
                })
                .collect();
        }
        // "Crash" and reopen: catalog and payloads come back from the WALs.
        let store = ShardedStore::open(&config, ObsCtx::null()).unwrap();
        store.register_tenant("alpha", Quota::unlimited()).unwrap();
        assert_eq!(store.object_count(), 12);
        for (i, d) in digests.iter().enumerate() {
            let bytes = store.get("alpha", &format!("k{i}")).unwrap();
            assert_eq!(sha256(&bytes), *d);
        }
        assert!(store.shards().iter().any(|s| s.wal_frames() > 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn frame_codec_round_trips_and_rejects_truncation() {
        let d = sha256(b"payload");
        let frame = encode_frame("tenant-x", "key/17", &d, b"payload");
        let (t, k, dd, p) = decode_frame(&frame).unwrap();
        assert_eq!((t.as_str(), k.as_str(), dd, p.as_slice()),
                   ("tenant-x", "key/17", d, b"payload".as_slice()));
        for cut in [0, 3, 10, frame.len() - 40] {
            assert!(matches!(decode_frame(&frame[..cut]), Err(Error::Codec(_))));
        }
    }

    #[test]
    fn duplicate_tenant_registration_rejected() {
        let store = ShardedStore::in_memory(2).unwrap();
        store.register_tenant("alpha", Quota::unlimited()).unwrap();
        assert!(matches!(
            store.register_tenant("alpha", Quota::unlimited()),
            Err(Error::InvariantViolation(_))
        ));
        assert_eq!(store.tenants().len(), 1);
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            ShardedStore::open(&ShardedConfig::in_memory(0), ObsCtx::null()),
            Err(Error::InvariantViolation(_))
        ));
    }

    #[test]
    fn export_to_ledger_merges_shards_deterministically() {
        use itrust_ledger::{Keyring, Ledger, SecretKey};

        let ring = Keyring::new().with("svc", SecretKey::derive("svc"));
        let store = store_with_tenants(4);
        for i in 0..12u64 {
            let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
            store
                .put(tenant, &format!("doc-{i}"), Bytes::from(format!("payload {i}")), 10 + i)
                .unwrap();
        }
        store.verify_all(100).unwrap();

        // Tenant-scoped export: only alpha's ingests, in timestamp order.
        let alpha = Ledger::new("alpha", "svc", ring.clone());
        let n = store.export_to_ledger(&alpha, Some("alpha")).unwrap();
        assert_eq!(n, 6);
        assert_eq!(alpha.len(), 6);
        let events: Vec<_> = (0..6).map(|s| alpha.event(s).unwrap()).collect();
        assert!(events.iter().all(|e| e.subject.starts_with("alpha/")));
        assert!(events.windows(2).all(|w| w[0].timestamp_ms <= w[1].timestamp_ms));
        alpha.verify().unwrap();

        // Full export also carries the per-shard fixity sweeps and is
        // identical across runs (same merge order).
        let all_a = Ledger::new("svc", "svc", ring.clone());
        let all_b = Ledger::new("svc", "svc", ring);
        assert_eq!(
            store.export_to_ledger(&all_a, None).unwrap(),
            store.export_to_ledger(&all_b, None).unwrap()
        );
        assert_eq!(all_a.head(), all_b.head());
        assert_eq!(all_a.len(), 12 + 4, "12 ingests + one sweep per shard");
        all_a.checkpoint(200).unwrap();
        all_a.prove(0).unwrap().verify("svc", all_a.keyring(), 0).unwrap();
    }
}
