//! # itrust-service — multi-tenant archival service layer
//!
//! A concurrent front end over the `trustdb` preservation substrate,
//! modelling the service tier an ARCHANGEL-style public archive runs for
//! its depositing institutions. Three layers compose:
//!
//! * [`shard`] — a hash-partitioned [`shard::ShardedStore`]: N independent
//!   shards, each with its own content-addressed object store, write-ahead
//!   log, audit chain, and fixity root. [`shard::shard_of`] routing is a
//!   pure hash, so placement is deterministic everywhere.
//! * [`tenant`] — per-tenant namespaces with object-count and byte quotas
//!   enforced by reservation *before* any byte is written
//!   ([`trustdb::Error::QuotaExceeded`], never transient), plus an isolated
//!   [`itrust_obs::ObsCtx`] per tenant.
//! * [`executor`] — an admission-controlled request executor on
//!   `itrust-par`: bounded queue (shed with the transient
//!   [`trustdb::Error::Overloaded`]), token-bucket rate limiting on the
//!   injected [`trustdb::replica::Clock`], and per-tick parallel execution
//!   that serializes each shard's operations so the whole service is
//!   deterministic at any `ITRUST_THREADS`.
//!
//! The D10 experiment (`itrust-bench`) drives this layer with a
//! closed-loop load generator replaying the paper's Table 1 fond mix from
//! thousands of simulated clients, reporting per-tenant p50/p99/p999 —
//! byte-identical across thread counts.

pub mod admission;
pub mod executor;
pub mod shard;
pub mod tenant;

pub use admission::{BucketConfig, TokenBucket};
pub use executor::{Completion, ExecutorConfig, OpOutput, Request, ServiceExecutor};
pub use shard::{shard_of, PutOutcome, Shard, ShardedConfig, ShardedStore, WalConfig};
pub use tenant::{Quota, Tenant, Usage};
