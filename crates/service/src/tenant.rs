//! Per-tenant namespaces with quota enforcement.
//!
//! ARCHANGEL-style public archives serve many independent custodians
//! against one tamper-evident substrate. Each custodian (tenant) gets:
//!
//! * a **namespace** — keys are scoped `(tenant, key)`, so one tenant can
//!   never address (or even probe for) another tenant's holdings;
//! * a **budget** — an object-count and byte quota reserved *before* any
//!   byte is written, so a runaway depositor cannot crowd out the rest;
//! * an **isolated telemetry registry** — every tenant holds its own
//!   [`itrust_obs::ObsCtx`], so per-tenant latency histograms and counters
//!   share no state across tenants (the obs-isolation suite pins this).

use itrust_obs::ObsCtx;
use parking_lot::Mutex;
use trustdb::errors::{Error, Result};

/// Object-count and byte budget for one tenant. `u64::MAX` means
/// effectively unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quota {
    /// Maximum number of stored objects.
    pub max_objects: u64,
    /// Maximum total payload bytes.
    pub max_bytes: u64,
}

impl Quota {
    /// A quota that never rejects (both budgets at `u64::MAX`).
    pub fn unlimited() -> Self {
        Quota { max_objects: u64::MAX, max_bytes: u64::MAX }
    }
}

/// Point-in-time resource usage of one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Objects currently charged against the quota.
    pub objects: u64,
    /// Bytes currently charged against the quota.
    pub bytes: u64,
}

/// One tenant's namespace: identity, budget, usage accounting, and an
/// isolated telemetry context.
pub struct Tenant {
    name: String,
    quota: Quota,
    usage: Mutex<Usage>,
    obs: ObsCtx,
}

impl Tenant {
    /// Create a tenant with its own fresh [`ObsCtx`].
    pub fn new(name: impl Into<String>, quota: Quota) -> Self {
        Tenant { name: name.into(), quota, usage: Mutex::new(Usage::default()), obs: ObsCtx::new() }
    }

    /// The tenant's name (namespace prefix).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured budget.
    pub fn quota(&self) -> Quota {
        self.quota
    }

    /// Current usage snapshot.
    pub fn usage(&self) -> Usage {
        *self.usage.lock()
    }

    /// The tenant's isolated telemetry context. Latency histograms and
    /// per-tenant counters land here and nowhere else.
    pub fn obs(&self) -> &ObsCtx {
        &self.obs
    }

    /// Atomically reserve budget for one object of `bytes` payload bytes.
    /// The reservation happens *before* the write (at admission time), so
    /// the quota can never be exceeded even transiently — a rejected or
    /// failed write must call [`Tenant::release`] to hand the budget back.
    pub fn reserve(&self, bytes: u64) -> Result<()> {
        let mut usage = self.usage.lock();
        if usage.objects + 1 > self.quota.max_objects {
            itrust_obs::counter_inc!(self.obs, "service.tenant.quota_rejected_objects");
            return Err(Error::QuotaExceeded {
                tenant: self.name.clone(),
                detail: format!("object budget {} reached", self.quota.max_objects),
            });
        }
        if usage.bytes.saturating_add(bytes) > self.quota.max_bytes {
            itrust_obs::counter_inc!(self.obs, "service.tenant.quota_rejected_bytes");
            return Err(Error::QuotaExceeded {
                tenant: self.name.clone(),
                detail: format!(
                    "byte budget {} would be exceeded ({} used + {bytes} new)",
                    self.quota.max_bytes, usage.bytes
                ),
            });
        }
        usage.objects += 1;
        usage.bytes += bytes;
        Ok(())
    }

    /// Return a reservation made by [`Tenant::reserve`] (the write was
    /// rejected, deduplicated, or failed downstream).
    pub fn release(&self, bytes: u64) {
        let mut usage = self.usage.lock();
        usage.objects = usage.objects.saturating_sub(1);
        usage.bytes = usage.bytes.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_up_to_object_budget_then_reject() {
        let t = Tenant::new("fond-a", Quota { max_objects: 2, max_bytes: 1_000 });
        t.reserve(10).unwrap();
        t.reserve(10).unwrap();
        let err = t.reserve(10).unwrap_err();
        assert!(matches!(err, Error::QuotaExceeded { .. }));
        assert!(!err.is_transient(), "quota rejection is a policy decision, not a fault");
        assert_eq!(t.usage(), Usage { objects: 2, bytes: 20 });
    }

    #[test]
    fn reserve_rejects_byte_budget_overrun() {
        let t = Tenant::new("fond-b", Quota { max_objects: 100, max_bytes: 25 });
        t.reserve(20).unwrap();
        let err = t.reserve(6).unwrap_err();
        assert!(err.to_string().contains("byte budget"));
        // The failed reservation charged nothing.
        assert_eq!(t.usage(), Usage { objects: 1, bytes: 20 });
        // Exactly-at-budget still fits.
        t.reserve(5).unwrap();
        assert_eq!(t.usage().bytes, 25);
    }

    #[test]
    fn release_returns_budget() {
        let t = Tenant::new("fond-c", Quota { max_objects: 1, max_bytes: 100 });
        t.reserve(40).unwrap();
        assert!(t.reserve(1).is_err());
        t.release(40);
        assert_eq!(t.usage(), Usage::default());
        t.reserve(99).unwrap();
    }

    #[test]
    fn unlimited_quota_never_rejects() {
        let t = Tenant::new("fond-d", Quota::unlimited());
        for _ in 0..1_000 {
            t.reserve(u32::MAX as u64).unwrap();
        }
        assert_eq!(t.usage().objects, 1_000);
    }

    #[test]
    fn tenants_have_isolated_obs_registries() {
        let a = Tenant::new("a", Quota { max_objects: 0, max_bytes: 0 });
        let b = Tenant::new("b", Quota::unlimited());
        let _ = a.reserve(1); // records a quota_rejected counter into a only
        assert!(!a.obs().metric_names().is_empty());
        assert!(b.obs().metric_names().is_empty());
    }
}
