//! Admission-controlled request executor on `itrust-par`.
//!
//! The executor is the service's front door. Requests flow through three
//! gates and then into the sharded store:
//!
//! 1. **Load shedding** — a bounded queue; submissions beyond the capacity
//!    are refused with the *transient* [`Error::Overloaded`] so clients
//!    back off and retry.
//! 2. **Quota reservation** — a put reserves its tenant's budget at submit
//!    time (the *non-transient* [`Error::QuotaExceeded`] on breach), so
//!    queued work can never overrun a budget no matter how it interleaves.
//! 3. **Rate limiting** — each [`ServiceExecutor::tick`] drains at most as
//!    many requests as the [`TokenBucket`] will grant.
//!
//! # Determinism
//!
//! A tick admits a batch in FIFO order, groups it by destination shard,
//! and runs the shard groups in parallel over [`itrust_par::par_map`]
//! while executing *within* each group sequentially in submission order.
//! Shard routing is a pure hash, the batch is drained under one lock, and
//! all time comes from the injected [`Clock`], so WAL frame order, audit
//! chains, fixity roots, quota decisions, and every latency sample are
//! identical at `ITRUST_THREADS=1` and `=64`. Completions are returned
//! sorted by submission sequence number.

use crate::admission::{BucketConfig, TokenBucket};
use crate::shard::{PutOutcome, ShardedStore};
use crate::tenant::Tenant;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use trustdb::errors::{Error, Result};
use trustdb::replica::Clock;

/// Executor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Maximum requests waiting for admission before shedding starts.
    pub queue_capacity: usize,
    /// Token-bucket rate limit drained by [`ServiceExecutor::tick`].
    pub bucket: BucketConfig,
    /// Fixed virtual service time charged to every operation, in ms.
    pub service_floor_ms: u64,
    /// Payload bytes served per additional virtual millisecond
    /// (0 disables the size-proportional term).
    pub service_bytes_per_ms: u64,
}

impl ExecutorConfig {
    /// Permissive defaults for tests: deep queue, no rate limit, 1 ms flat
    /// service time.
    pub fn unthrottled() -> Self {
        ExecutorConfig {
            queue_capacity: usize::MAX,
            bucket: BucketConfig::unlimited(),
            service_floor_ms: 1,
            service_bytes_per_ms: 0,
        }
    }
}

/// A client request against a tenant namespace.
#[derive(Debug, Clone)]
pub enum Request {
    /// Store `payload` under `key` in `tenant`'s namespace.
    Put { tenant: String, key: String, payload: Bytes },
    /// Fetch `tenant`'s object at `key`.
    Get { tenant: String, key: String },
}

impl Request {
    /// The tenant this request addresses.
    pub fn tenant(&self) -> &str {
        match self {
            Request::Put { tenant, .. } | Request::Get { tenant, .. } => tenant,
        }
    }

    /// The key this request addresses.
    pub fn key(&self) -> &str {
        match self {
            Request::Put { key, .. } | Request::Get { key, .. } => key,
        }
    }
}

/// Successful operation output.
#[derive(Debug, Clone)]
pub enum OpOutput {
    /// Result of a put.
    Put(PutOutcome),
    /// Result of a get.
    Get(Bytes),
}

/// One finished request, with its virtual timeline.
#[derive(Debug)]
pub struct Completion {
    /// Submission sequence number (as returned by [`ServiceExecutor::submit`]).
    pub seq: u64,
    /// Addressed tenant.
    pub tenant: String,
    /// Addressed key.
    pub key: String,
    /// Virtual time the request entered the queue.
    pub submitted_ms: u64,
    /// Virtual time the request finished service.
    pub completed_ms: u64,
    /// What happened.
    pub outcome: Result<OpOutput>,
}

impl Completion {
    /// End-to-end virtual latency (queue wait + service time).
    pub fn latency_ms(&self) -> u64 {
        self.completed_ms.saturating_sub(self.submitted_ms)
    }
}

struct Queued {
    seq: u64,
    tenant: Arc<Tenant>,
    submitted_ms: u64,
    request: Request,
}

/// The admission-controlled front end over a [`ShardedStore`].
pub struct ServiceExecutor {
    store: Arc<ShardedStore>,
    clock: Arc<dyn Clock>,
    config: ExecutorConfig,
    bucket: TokenBucket,
    queue: Mutex<VecDeque<Queued>>,
    next_seq: Mutex<u64>,
}

impl ServiceExecutor {
    /// Build an executor over `store`, timed by `clock`.
    pub fn new(store: Arc<ShardedStore>, clock: Arc<dyn Clock>, config: ExecutorConfig) -> Self {
        let bucket = TokenBucket::new(config.bucket, clock.clone());
        ServiceExecutor {
            store,
            clock,
            config,
            bucket,
            queue: Mutex::new(VecDeque::new()),
            next_seq: Mutex::new(0),
        }
    }

    /// The store behind this executor.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// Requests currently waiting for admission.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().len()
    }

    /// Submit a request. Returns its sequence number, or:
    ///
    /// * [`Error::Overloaded`] (transient) when the queue is full,
    /// * [`Error::QuotaExceeded`] (non-transient) when a put would overrun
    ///   its tenant's budget,
    /// * [`Error::NotFound`] for an unregistered tenant.
    pub fn submit(&self, request: Request) -> Result<u64> {
        let obs = self.store.obs();
        let tenant = self.store.tenant(request.tenant())?;
        let now = self.clock.now_ms();
        let mut queue = self.queue.lock();
        if queue.len() >= self.config.queue_capacity {
            itrust_obs::counter_inc!(obs, "service.admission.shed");
            itrust_obs::counter_inc!(tenant.obs(), "service.tenant.shed");
            return Err(Error::Overloaded {
                detail: format!("admission queue full ({} waiting)", queue.len()),
            });
        }
        if let Request::Put { payload, .. } = &request {
            // Reserve while holding the queue lock so the budget check and
            // the enqueue are one atomic admission decision.
            tenant.reserve(payload.len() as u64)?;
        }
        let seq = {
            let mut next = self.next_seq.lock();
            let seq = *next;
            *next += 1;
            seq
        };
        queue.push_back(Queued { seq, tenant, submitted_ms: now, request });
        itrust_obs::counter_inc!(obs, "service.admission.submitted");
        itrust_obs::gauge_set!(obs, "service.admission.queue_depth", queue.len() as i64);
        Ok(seq)
    }

    /// Drain one admission batch: refill the bucket, pop as many queued
    /// requests as it grants, execute them grouped by shard (groups in
    /// parallel, each group in FIFO order), and return the completions
    /// sorted by sequence number.
    pub fn tick(&self) -> Vec<Completion> {
        let obs = self.store.obs();
        let _span = itrust_obs::span!(obs, "service.admission.tick");
        let now = self.clock.now_ms();
        let batch: Vec<Queued> = {
            let mut queue = self.queue.lock();
            let grant = self.bucket.take_up_to(queue.len() as u64) as usize;
            let batch = queue.drain(..grant).collect();
            itrust_obs::gauge_set!(obs, "service.admission.queue_depth", queue.len() as i64);
            batch
        };
        if batch.is_empty() {
            return Vec::new();
        }
        itrust_obs::counter_add!(obs, "service.admission.admitted", batch.len() as u64);

        let mut by_shard: BTreeMap<usize, Vec<Queued>> = BTreeMap::new();
        for q in batch {
            let shard = self.store.route(q.tenant.name(), q.request.key());
            by_shard.entry(shard).or_default().push(q);
        }
        let groups: Vec<Vec<Queued>> = by_shard.into_values().collect();
        let mut completions: Vec<Completion> = itrust_par::par_map(&groups, |group| {
            group.iter().map(|q| self.execute(q, now)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        completions.sort_by_key(|c| c.seq);
        completions
    }

    /// Execute one admitted request at virtual time `now`.
    fn execute(&self, q: &Queued, now: u64) -> Completion {
        let (outcome, served_bytes) = match &q.request {
            Request::Put { key, payload, .. } => {
                let bytes = payload.len() as u64;
                let res = self.store.put_prereserved(&q.tenant, key, payload.clone(), now);
                (res.map(OpOutput::Put), bytes)
            }
            Request::Get { tenant, key } => match self.store.get(tenant, key) {
                Ok(payload) => {
                    let bytes = payload.len() as u64;
                    (Ok(OpOutput::Get(payload)), bytes)
                }
                Err(e) => (Err(e), 0),
            },
        };
        let size_ms = match self.config.service_bytes_per_ms {
            0 => 0,
            per_ms => served_bytes / per_ms,
        };
        let completed_ms = now + self.config.service_floor_ms + size_ms;
        let latency = completed_ms.saturating_sub(q.submitted_ms);
        itrust_obs::hist_record!(q.tenant.obs(), "service.tenant.request_ms", latency);
        itrust_obs::counter_inc!(q.tenant.obs(), "service.tenant.ops");
        itrust_obs::hist_record!(
            self.store.obs(),
            "service.admission.queue_wait_ms",
            now.saturating_sub(q.submitted_ms)
        );
        Completion {
            seq: q.seq,
            tenant: q.tenant.name().to_string(),
            key: q.request.key().to_string(),
            submitted_ms: q.submitted_ms,
            completed_ms,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::Quota;
    use trustdb::replica::ManualClock;

    fn service(
        shards: usize,
        config: ExecutorConfig,
    ) -> (Arc<ManualClock>, Arc<ShardedStore>, ServiceExecutor) {
        let clock = Arc::new(ManualClock::new());
        let store = Arc::new(
            ShardedStore::open(
                &crate::shard::ShardedConfig::in_memory(shards),
                itrust_obs::ObsCtx::new(),
            )
            .unwrap(),
        );
        store.register_tenant("alpha", Quota::unlimited()).unwrap();
        store.register_tenant("beta", Quota { max_objects: 2, max_bytes: 1 << 20 }).unwrap();
        let exec = ServiceExecutor::new(store.clone(), clock.clone(), config);
        (clock, store, exec)
    }

    fn put(tenant: &str, key: &str, body: &str) -> Request {
        Request::Put {
            tenant: tenant.into(),
            key: key.into(),
            payload: Bytes::from(body.as_bytes().to_vec()),
        }
    }

    #[test]
    fn submit_tick_completes_in_seq_order() {
        let (clock, store, exec) = service(4, ExecutorConfig::unthrottled());
        for i in 0..20 {
            exec.submit(put("alpha", &format!("k{i}"), "payload")).unwrap();
        }
        clock.advance_ms(5);
        let done = exec.tick();
        assert_eq!(done.len(), 20);
        assert!(done.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(done.iter().all(|c| c.outcome.is_ok()));
        // Queue wait 5 ms + service floor 1 ms.
        assert!(done.iter().all(|c| c.latency_ms() == 6));
        assert_eq!(store.object_count(), 20);
        assert_eq!(exec.queue_depth(), 0);
    }

    #[test]
    fn queue_full_sheds_with_transient_overloaded() {
        let mut config = ExecutorConfig::unthrottled();
        config.queue_capacity = 3;
        let (_clock, store, exec) = service(2, config);
        for i in 0..3 {
            exec.submit(put("alpha", &format!("k{i}"), "x")).unwrap();
        }
        let err = exec.submit(put("alpha", "k3", "x")).unwrap_err();
        assert!(matches!(err, Error::Overloaded { .. }));
        assert!(err.is_transient(), "shedding must invite a retry");
        // The shed was counted for both the service and the tenant.
        let snap = store.obs().snapshot();
        assert_eq!(snap.counters.get("service.admission.shed").copied(), Some(1));
        let t = store.tenant("alpha").unwrap();
        assert_eq!(t.obs().snapshot().counters.get("service.tenant.shed").copied(), Some(1));
        // Draining the queue makes room again.
        exec.tick();
        exec.submit(put("alpha", "k3", "x")).unwrap();
    }

    #[test]
    fn quota_breach_rejected_at_submit_not_at_tick() {
        let (_clock, store, exec) = service(2, ExecutorConfig::unthrottled());
        exec.submit(put("beta", "a", "1")).unwrap();
        exec.submit(put("beta", "b", "2")).unwrap();
        // Third put breaches beta's 2-object budget *at submit time*,
        // before anything has even executed.
        let err = exec.submit(put("beta", "c", "3")).unwrap_err();
        assert!(matches!(err, Error::QuotaExceeded { .. }));
        assert!(!err.is_transient());
        exec.tick();
        assert_eq!(store.tenant("beta").unwrap().usage().objects, 2);
    }

    #[test]
    fn rate_limit_spreads_admission_over_ticks() {
        let mut config = ExecutorConfig::unthrottled();
        config.bucket = BucketConfig { capacity: 4, refill_per_ms: 2 };
        let (clock, _store, exec) = service(4, config);
        for i in 0..10 {
            exec.submit(put("alpha", &format!("k{i}"), "x")).unwrap();
        }
        assert_eq!(exec.tick().len(), 4, "burst capacity");
        assert_eq!(exec.tick().len(), 0, "no time elapsed, no tokens");
        clock.advance_ms(2);
        assert_eq!(exec.tick().len(), 4, "2 ms x 2 tokens/ms");
        clock.advance_ms(1);
        assert_eq!(exec.tick().len(), 2, "remainder");
        assert_eq!(exec.queue_depth(), 0);
    }

    #[test]
    fn size_proportional_service_time() {
        let mut config = ExecutorConfig::unthrottled();
        config.service_floor_ms = 2;
        config.service_bytes_per_ms = 10;
        let (_clock, _store, exec) = service(2, config);
        exec.submit(put("alpha", "big", &"x".repeat(50))).unwrap();
        let done = exec.tick();
        // 2 ms floor + 50 bytes / 10 bytes-per-ms = 7 ms.
        assert_eq!(done[0].completed_ms, 7);
    }

    #[test]
    fn unknown_tenant_rejected_at_submit() {
        let (_clock, _store, exec) = service(2, ExecutorConfig::unthrottled());
        let err = exec.submit(put("nobody", "k", "x")).unwrap_err();
        assert!(matches!(err, Error::NotFound(_)));
    }

    #[test]
    fn get_of_missing_key_completes_with_not_found() {
        let (_clock, _store, exec) = service(2, ExecutorConfig::unthrottled());
        exec.submit(Request::Get { tenant: "alpha".into(), key: "ghost".into() }).unwrap();
        let done = exec.tick();
        assert_eq!(done.len(), 1);
        assert!(matches!(done[0].outcome, Err(Error::NotFound(_))));
    }
}
