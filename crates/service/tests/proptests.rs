//! Property-based tests over random cross-tenant operation interleavings.
//!
//! Three service-layer invariants, under arbitrary interleavings of puts,
//! gets, and deliberate cross-tenant probe reads:
//!
//! 1. **isolation** — no read ever observes another tenant's content;
//! 2. **budgets** — no tenant's usage ever exceeds its quota, not even
//!    transiently, and usage always matches an independent model;
//! 3. **integrity** — every shard's fixity chain verifies afterwards, and
//!    the per-shard fixity roots are a pure function of the surviving
//!    holdings (replaying the model into a fresh store reproduces them).

use bytes::Bytes;
use itrust_service::{
    BucketConfig, ExecutorConfig, Quota, Request, ServiceExecutor, ShardedConfig, ShardedStore,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use trustdb::errors::Error;
use trustdb::replica::{Clock, ManualClock};

const TENANTS: [&str; 3] = ["trademarks", "decrees", "inventories"];

fn quotas() -> [Quota; 3] {
    [
        // Tight object budget, loose bytes.
        Quota { max_objects: 6, max_bytes: 1 << 20 },
        // Tight byte budget, loose objects.
        Quota { max_objects: 1 << 20, max_bytes: 400 },
        Quota::unlimited(),
    ]
}

fn fresh_store(shards: usize) -> ShardedStore {
    let store =
        ShardedStore::open(&ShardedConfig::in_memory(shards), itrust_obs::ObsCtx::new()).unwrap();
    for (name, quota) in TENANTS.iter().zip(quotas()) {
        store.register_tenant(*name, quota).unwrap();
    }
    store
}

/// Deterministic payload for a `(tenant, key, len)` triple. Two puts of the
/// same key agree iff they chose the same length.
fn payload(tenant: usize, key: usize, len: usize) -> Vec<u8> {
    vec![(tenant as u8) << 4 ^ key as u8; len.max(1)]
}

type Model = BTreeMap<(usize, usize), Vec<u8>>;

/// Mirror of the reservation arithmetic in `Tenant::reserve`.
fn model_would_fit(usage: (u64, u64), quota: Quota, bytes: u64) -> bool {
    usage.0 < quota.max_objects && usage.1.saturating_add(bytes) <= quota.max_bytes
}

proptest! {
    /// Direct-store interleavings: isolation, budgets, and root purity.
    #[test]
    fn store_interleavings_preserve_isolation_budgets_integrity(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), 1u16..600), 1..120),
        shards in 2usize..9,
    ) {
        let store = fresh_store(shards);
        let quotas = quotas();
        let mut model: Model = BTreeMap::new();
        let mut usage = [(0u64, 0u64); 3];

        for (i, (kind, t, k, len)) in ops.iter().enumerate() {
            let tenant = (*t as usize) % 3;
            let key = (*k as usize) % 12;
            let key_name = format!("k{key}");
            let now = i as u64;
            match kind % 4 {
                0 | 1 => {
                    let body = payload(tenant, key, *len as usize);
                    let bytes = body.len() as u64;
                    let fits = model_would_fit(usage[tenant], quotas[tenant], bytes);
                    let res = store.put(TENANTS[tenant], &key_name, Bytes::from(body.clone()), now);
                    match model.get(&(tenant, key)) {
                        _ if !fits => {
                            // Reservation happens before dedup/immutability
                            // checks, so an over-budget put always rejects.
                            prop_assert!(matches!(res, Err(Error::QuotaExceeded { .. })));
                        }
                        Some(existing) if *existing == body => {
                            prop_assert!(res.is_ok(), "idempotent re-put must succeed");
                        }
                        Some(_) => {
                            prop_assert!(matches!(res, Err(Error::InvariantViolation(_))));
                        }
                        None => {
                            prop_assert!(res.is_ok());
                            model.insert((tenant, key), body);
                            usage[tenant].0 += 1;
                            usage[tenant].1 += bytes;
                        }
                    }
                }
                2 => {
                    let res = store.get(TENANTS[tenant], &key_name);
                    match model.get(&(tenant, key)) {
                        Some(expect) => prop_assert_eq!(&res.unwrap()[..], &expect[..]),
                        None => prop_assert!(matches!(res, Err(Error::NotFound(_)))),
                    }
                }
                _ => {
                    // Cross-tenant probe: a reader must never see an owner's
                    // bytes, only its own holdings under that key name.
                    let reader = (tenant + 1) % 3;
                    let res = store.get(TENANTS[reader], &key_name);
                    match model.get(&(reader, key)) {
                        Some(own) => prop_assert_eq!(&res.unwrap()[..], &own[..]),
                        None => prop_assert!(
                            matches!(res, Err(Error::NotFound(_))),
                            "cross-tenant read must not succeed"
                        ),
                    }
                }
            }
            // Budgets hold after every single operation.
            for (ti, q) in quotas.iter().enumerate() {
                let u = store.tenant(TENANTS[ti]).unwrap().usage();
                prop_assert!(u.objects <= q.max_objects && u.bytes <= q.max_bytes);
                prop_assert_eq!((u.objects, u.bytes), usage[ti], "usage must match the model");
            }
        }

        // Every shard's fixity chain verifies and every sweep is clean.
        for report in store.verify_all(10_000).unwrap() {
            prop_assert!(report.is_clean());
        }
        for shard in store.shards() {
            shard.audit().verify_chain().unwrap();
        }
        // Root purity: replaying the surviving holdings (model order, which
        // differs from insertion order) into a fresh store reproduces the
        // per-shard roots bit-for-bit.
        let replay = fresh_store(shards);
        for ((tenant, key), body) in &model {
            replay
                .put(TENANTS[*tenant], &format!("k{key}"), Bytes::from(body.clone()), 0)
                .unwrap();
        }
        prop_assert_eq!(replay.fixity_roots(), store.fixity_roots());
    }

    /// Executor interleavings under shedding and rate limiting: every
    /// submission is accounted for exactly once, budgets hold, and the
    /// substrate stays verifiable.
    #[test]
    fn executor_interleavings_account_for_every_request(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), 1u16..300), 1..100),
    ) {
        let clock = Arc::new(ManualClock::new());
        let store = Arc::new(fresh_store(4));
        let exec = ServiceExecutor::new(
            store.clone(),
            clock.clone() as Arc<dyn Clock>,
            ExecutorConfig {
                queue_capacity: 8,
                bucket: BucketConfig { capacity: 4, refill_per_ms: 2 },
                service_floor_ms: 1,
                service_bytes_per_ms: 64,
            },
        );
        let quotas = quotas();
        let (mut accepted, mut shed, mut quota_rejected) = (0u64, 0u64, 0u64);
        let mut completed = 0u64;

        for (kind, t, k, len) in &ops {
            let tenant = (*t as usize) % 3;
            let key = format!("k{}", k % 24);
            let req = if kind % 3 == 0 {
                Request::Get { tenant: TENANTS[tenant].into(), key }
            } else {
                Request::Put {
                    tenant: TENANTS[tenant].into(),
                    key,
                    payload: Bytes::from(payload(tenant, (*k as usize) % 24, *len as usize)),
                }
            };
            match exec.submit(req) {
                Ok(_) => accepted += 1,
                Err(Error::Overloaded { .. }) => shed += 1,
                Err(Error::QuotaExceeded { .. }) => quota_rejected += 1,
                Err(e) => prop_assert!(false, "unexpected submit error: {e}"),
            }
            if kind % 4 == 0 {
                clock.advance_ms((*len as u64 % 3) + 1);
                completed += exec.tick().len() as u64;
            }
        }
        // Drain: the bucket refills with time, so the queue must empty.
        let mut rounds = 0;
        while exec.queue_depth() > 0 {
            clock.advance_ms(10);
            completed += exec.tick().len() as u64;
            rounds += 1;
            prop_assert!(rounds < 1_000, "queue failed to drain");
        }
        prop_assert_eq!(accepted, completed, "every admitted request completes exactly once");
        prop_assert_eq!(accepted + shed + quota_rejected, ops.len() as u64);

        for (ti, q) in quotas.iter().enumerate() {
            let u = store.tenant(TENANTS[ti]).unwrap().usage();
            prop_assert!(u.objects <= q.max_objects && u.bytes <= q.max_bytes);
        }
        for report in store.verify_all(1_000_000).unwrap() {
            prop_assert!(report.is_clean());
        }
        for shard in store.shards() {
            shard.audit().verify_chain().unwrap();
        }
    }
}
