//! Replay of preserved scenarios.
//!
//! Section 3.1 motivates preservation by "re-creation of past events (as
//! might be done to support training or to explore the effects of changes
//! in policies and procedures)". Because the simulator is deterministic in
//! `(config, seed)`, a preserved configuration replays to *exactly* the
//! preserved outcome — and [`ReplayReport::divergence`] quantifies any gap
//! on the privacy-invariant fields (sanitization removes phone/GPS detail,
//! so those fields are excluded from the comparison by construction).
//!
//! The same machinery answers the "what if" question: [`replay_modified`]
//! re-runs the preserved scenario under an edited topology (more trunks,
//! different overflow policy) and reports the counterfactual statistics.

use crate::call::{CallRecord, CallStats};
use crate::graph::Topology;
use crate::preserve::{load_run, PreserveError, PreservedRun};
use crate::sim::{run, run_with_obs, SimConfig, SimOutput};
use archival_core::ingest::Repository;
use trustdb::store::Backend;

/// Result of replaying a preserved scenario.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Statistics preserved with the original run.
    pub original_stats: CallStats,
    /// Statistics of the replayed run.
    pub replayed_stats: CallStats,
    /// Number of calls whose privacy-invariant fields differ, plus any
    /// count mismatch. 0 = faithful replay.
    pub divergence: usize,
}

impl ReplayReport {
    /// Whether the replay reproduced the preserved run exactly.
    pub fn is_faithful(&self) -> bool {
        self.divergence == 0
    }
}

/// Fields preserved under sanitization, used for divergence comparison.
fn invariant_key(c: &CallRecord) -> (u64, u64, String, Option<u64>, Option<u64>, String) {
    (
        c.call_id,
        c.arrived_ms,
        format!("{:?}", c.category),
        c.answered_ms,
        c.on_scene_ms,
        format!("{:?}", c.outcome),
    )
}

/// Count calls whose invariant fields differ between two runs.
pub fn divergence(a: &[CallRecord], b: &[CallRecord]) -> usize {
    let mismatched = a
        .iter()
        .zip(b)
        .filter(|(x, y)| invariant_key(x) != invariant_key(y))
        .count();
    mismatched + a.len().abs_diff(b.len())
}

/// Replay a preserved AIP and compare against its preserved call log.
pub fn replay_from_archive<B: Backend>(
    repo: &Repository<B>,
    aip_id: &str,
) -> Result<ReplayReport, PreserveError> {
    let preserved = load_run(repo, aip_id)?;
    Ok(replay_preserved_with_obs(&preserved, repo.obs()))
}

/// Replay an already-loaded preserved run.
pub fn replay_preserved(preserved: &PreservedRun) -> ReplayReport {
    replay_preserved_with_obs(preserved, &itrust_obs::ObsCtx::null())
}

/// [`replay_preserved`], recording telemetry (including the inner
/// simulation's) into `obs`.
pub fn replay_preserved_with_obs(
    preserved: &PreservedRun,
    obs: &itrust_obs::ObsCtx,
) -> ReplayReport {
    let _span = itrust_obs::span!(obs, "escs.replay.preserved");
    let replayed = run_with_obs(&preserved.config, obs);
    let report = ReplayReport {
        original_stats: preserved.stats.clone(),
        replayed_stats: replayed.stats.clone(),
        divergence: divergence(&preserved.calls, &replayed.calls),
    };
    if !report.is_faithful() {
        itrust_obs::counter_inc!(obs, "escs.replay.divergent_runs");
    }
    report
}

/// Re-run a preserved scenario under a modified topology ("investigate how
/// modifications to such a system might produce different outcomes").
/// Returns the counterfactual output.
pub fn replay_modified(preserved: &PreservedRun, new_topology: Topology) -> SimOutput {
    let config = SimConfig { topology: new_topology, ..preserved.config.clone() };
    run(&config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agreement::DataSharingAgreement;
    use crate::external::ExternalTimeline;
    use crate::preserve::preserve_run;
    use crate::privacy::PrivacyProfile;
    use trustdb::store::{MemoryBackend, ObjectStore};

    fn preserved_scenario(surge: bool) -> (Repository<MemoryBackend>, String) {
        let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
        let duration = 1_800_000;
        let timeline = if surge {
            ExternalTimeline::disaster(duration)
        } else {
            ExternalTimeline::quiet()
        };
        let config =
            SimConfig::with_defaults(Topology::single_city(), timeline, duration, 99);
        let output = run(&config);
        let dsa = DataSharingAgreement {
            id: "dsa".into(),
            owner: "owner".into(),
            recipient: "lab".into(),
            purpose: "replay".into(),
            jurisdiction: "US-WA".into(),
            privacy: PrivacyProfile::research_default(),
            valid_ms: (0, u64::MAX),
            research_retention_ms: u64::MAX,
        };
        let receipt = preserve_run(&repo, &config, &output, &dsa, &[], 10, "a").unwrap();
        (repo, receipt.aip_id)
    }

    #[test]
    fn replay_is_faithful() {
        let (repo, aip) = preserved_scenario(false);
        let report = replay_from_archive(&repo, &aip).unwrap();
        assert!(report.is_faithful(), "divergence {}", report.divergence);
        assert_eq!(report.original_stats, report.replayed_stats);
    }

    #[test]
    fn disaster_replay_is_faithful_too() {
        let (repo, aip) = preserved_scenario(true);
        let report = replay_from_archive(&repo, &aip).unwrap();
        assert!(report.is_faithful(), "divergence {}", report.divergence);
    }

    #[test]
    fn divergence_counts_mismatches_and_length_gaps() {
        let (repo, aip) = preserved_scenario(false);
        let preserved = load_run(&repo, &aip).unwrap();
        let mut mutated = preserved.calls.clone();
        mutated[0].arrived_ms += 1;
        mutated[3].outcome = crate::call::CallOutcome::Abandoned;
        assert_eq!(divergence(&preserved.calls, &mutated), 2);
        mutated.pop();
        // One fewer call: 2 field mismatches + 1 count mismatch.
        assert_eq!(divergence(&preserved.calls, &mutated), 3);
    }

    #[test]
    fn sanitized_fields_do_not_affect_divergence() {
        let (repo, aip) = preserved_scenario(false);
        let preserved = load_run(&repo, &aip).unwrap();
        let mut masked = preserved.calls.clone();
        for c in &mut masked {
            c.caller_phone = "gone".into();
            c.gps = (0.0, 0.0);
        }
        assert_eq!(divergence(&preserved.calls, &masked), 0);
    }

    #[test]
    fn counterfactual_more_trunks_improves_service() {
        let (repo, aip) = preserved_scenario(true);
        let preserved = load_run(&repo, &aip).unwrap();
        let mut bigger = preserved.config.topology.clone();
        bigger.psaps[0].trunks *= 4;
        let counterfactual = replay_modified(&preserved, bigger);
        // More trunks: abandonment cannot rise, p95 answer delay should not
        // materially worsen.
        assert!(
            counterfactual.stats.abandonment_rate()
                <= preserved.stats.abandonment_rate() + 1e-9,
            "counterfactual {:?} vs original {:?}",
            counterfactual.stats,
            preserved.stats
        );
        assert!(
            counterfactual.stats.p95_answer_delay_ms
                <= preserved.stats.p95_answer_delay_ms + 1.0
        );
    }
}
