//! # escs — graph-based emergency services communications system simulator
//!
//! Section 3.1 of the paper studies how data from emergency services
//! communications systems (9-1-1 / NG911) can be preserved as trustworthy
//! records. The study is explicitly *pre-data-collection*: the paper's plan
//! is to connect "large-scale simulations of ESCS to historical data" and
//! to use "simulation results and simulation artifact provenance
//! information as exemplars". This crate builds exactly that apparatus,
//! following the graph-based simulator design of the paper's cited
//! companion work (Jordan et al., ANNSIM 2022):
//!
//! * [`graph`] — the PSAP (public-safety answering point) network topology:
//!   call sources, primary/secondary PSAPs, dispatch centers, responder
//!   pools, with transfer and overflow edges.
//! * [`stats`] — Poisson/exponential/log-normal samplers driving arrivals
//!   and service times (implemented in-repo; no rand_distr dependency).
//! * [`event`] — a deterministic discrete-event engine (binary-heap future
//!   event list with stable tie-breaking).
//! * [`call`] — the call record: the *data object* whose preservation the
//!   study is about, including the fields the paper enumerates (partial
//!   phone numbers, categorization, GPS, responder info, response times).
//! * [`external`] — the event streams the paper notes are *absent* from
//!   ESCS data (weather, traffic, geopolitical events) that drive call
//!   surges.
//! * [`sim`] — the simulation engine: arrivals, queueing, answering,
//!   transfer, dispatch, abandonment; produces call detail records plus
//!   artifact provenance.
//! * [`privacy`] — redaction/fuzzing for transfer to research environments
//!   (the study's stated privacy risk), and [`agreement`] — the model
//!   data-sharing agreement the study drafts.
//! * [`preserve`] — packaging simulation output as archival records
//!   (SIP construction against `archival-core`).
//! * [`replay`] — re-running a preserved scenario ("replay of a previous
//!   disaster") and verifying divergence is zero.

pub mod agreement;
pub mod analytic;
pub mod call;
pub mod event;
pub mod external;
pub mod graph;
pub mod preserve;
pub mod privacy;
pub mod replay;
pub mod sim;
pub mod stats;
