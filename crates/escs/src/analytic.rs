//! Analytic queueing-theory validation of the simulator.
//!
//! A discrete-event simulator is only as trustworthy as its agreement with
//! known theory. Under constant load, a single PSAP with `c` trunks,
//! Poisson arrivals (rate λ), and exponential-ish service (rate μ) is
//! approximately an M/M/c queue, for which the Erlang C formula gives the
//! probability of waiting and the mean wait. This module implements
//! Erlang B/C and the M/M/c mean-wait formula; the tests drive the
//! simulator under matching assumptions and check agreement — the
//! validation experiment the paper's §3.1 ("analyzing and comparing
//! simulation output with real-world data") needs before any real data
//! exists.

/// Erlang B blocking probability for offered load `a` Erlangs and `c`
/// servers, via the numerically stable recurrence.
pub fn erlang_b(a: f64, c: usize) -> f64 {
    assert!(a >= 0.0);
    let mut b = 1.0f64;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    b
}

/// Erlang C probability that an arrival must wait (M/M/c). Returns 1.0
/// when the system is unstable (a ≥ c).
pub fn erlang_c(a: f64, c: usize) -> f64 {
    assert!(c > 0);
    if a >= c as f64 {
        return 1.0;
    }
    let b = erlang_b(a, c);
    let rho = a / c as f64;
    b / (1.0 - rho + rho * b)
}

/// Mean waiting time in an M/M/c queue with arrival rate `lambda`,
/// per-server service rate `mu`, `c` servers. `None` when unstable.
pub fn mmc_mean_wait(lambda: f64, mu: f64, c: usize) -> Option<f64> {
    assert!(lambda > 0.0 && mu > 0.0 && c > 0);
    let a = lambda / mu;
    if a >= c as f64 {
        return None;
    }
    let pw = erlang_c(a, c);
    Some(pw / (c as f64 * mu - lambda))
}

/// Server utilization ρ = λ/(cμ).
pub fn utilization(lambda: f64, mu: f64, c: usize) -> f64 {
    lambda / (c as f64 * mu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::external::ExternalTimeline;
    use crate::graph::Topology;
    use crate::sim::{run, SimConfig};

    #[test]
    fn erlang_b_known_values() {
        // Classic traffic-table values: a=2 Erlangs, c=5 → B ≈ 0.0367.
        assert!((erlang_b(2.0, 5) - 0.0367).abs() < 0.001);
        // a=10, c=10 → B ≈ 0.2146.
        assert!((erlang_b(10.0, 10) - 0.2146).abs() < 0.001);
        // No load → no blocking; no servers handled by c=0 loop → B=1.
        assert_eq!(erlang_b(0.0, 5), 0.0);
        assert_eq!(erlang_b(3.0, 0), 1.0);
    }

    #[test]
    fn erlang_c_known_values_and_bounds() {
        // a=2, c=3 → C ≈ 0.4444.
        assert!((erlang_c(2.0, 3) - 0.4444).abs() < 0.001);
        // C ≥ B always; C in [0,1].
        for &(a, c) in &[(0.5, 2usize), (2.0, 4), (5.0, 8)] {
            let b = erlang_b(a, c);
            let cc = erlang_c(a, c);
            assert!(cc >= b);
            assert!((0.0..=1.0).contains(&cc));
        }
        // Unstable system always waits.
        assert_eq!(erlang_c(5.0, 4), 1.0);
    }

    #[test]
    fn mean_wait_increases_with_load_and_diverges_at_saturation() {
        let w1 = mmc_mean_wait(1.0, 1.0, 4).unwrap();
        let w2 = mmc_mean_wait(3.0, 1.0, 4).unwrap();
        let w3 = mmc_mean_wait(3.9, 1.0, 4).unwrap();
        assert!(w1 < w2 && w2 < w3);
        assert!(mmc_mean_wait(4.0, 1.0, 4).is_none());
        assert!((utilization(2.0, 1.0, 4) - 0.5).abs() < 1e-12);
    }

    /// The headline validation: the simulator's mean answer delay under
    /// quiet constant load tracks the Erlang C prediction.
    #[test]
    fn simulator_agrees_with_erlang_c() {
        // Single PSAP, 4 trunks. Arrival rate λ = 2/min; handling ≈
        // log-normal with mean exp(μ+σ²/2). Configure near-deterministic
        // service (σ→0) so the M/M/c approximation is as fair as possible,
        // and effectively-infinite patience so no abandonment censors waits.
        let handling_mean_ms = 90_000.0f64;
        let mut config = SimConfig::with_defaults(
            Topology::single_city(),
            ExternalTimeline::quiet(),
            40 * 3_600_000, // 40 simulated hours for tight statistics
            12345,
        );
        config.handling_lognormal = (handling_mean_ms.ln(), 0.05);
        config.mean_patience_ms = 1e12;
        let output = run(&config);

        let lambda_per_ms = 2.0 / 60_000.0;
        let mu_per_ms = 1.0 / handling_mean_ms;
        let predicted_wait =
            mmc_mean_wait(lambda_per_ms, mu_per_ms, 4).expect("stable") ;
        let measured_wait = output.stats.mean_answer_delay_ms;
        // M/D/c waits are shorter than M/M/c (deterministic service halves
        // the queueing delay asymptotically), so expect measured between
        // 0.3× and 1.2× of the M/M/c prediction — and far from zero-queue.
        assert!(
            measured_wait > 0.2 * predicted_wait && measured_wait < 1.2 * predicted_wait,
            "measured {measured_wait:.0}ms vs Erlang-C {predicted_wait:.0}ms"
        );
        // Utilization sanity: ρ = λ/(cμ) = 0.75 → busy but stable; the
        // simulator should answer nearly everything.
        assert!(output.stats.abandonment_rate() < 0.01);
    }

    /// Waiting probability also tracks Erlang C.
    #[test]
    fn waiting_fraction_tracks_erlang_c() {
        let handling_mean_ms = 90_000.0f64;
        let mut config = SimConfig::with_defaults(
            Topology::single_city(),
            ExternalTimeline::quiet(),
            40 * 3_600_000,
            777,
        );
        config.handling_lognormal = (handling_mean_ms.ln(), 0.05);
        config.mean_patience_ms = 1e12;
        let output = run(&config);
        let waited = output
            .calls
            .iter()
            .filter(|c| c.answer_delay_ms().is_some_and(|d| d > 0))
            .count();
        let answered = output.calls.iter().filter(|c| c.answered_ms.is_some()).count();
        let measured_pw = waited as f64 / answered as f64;
        let a = (2.0 / 60_000.0) / (1.0 / handling_mean_ms);
        let predicted_pw = erlang_c(a, 4);
        // Deterministic-ish service lowers P(wait) slightly vs M/M/c.
        assert!(
            (measured_pw - predicted_pw).abs() < 0.15,
            "measured P(wait) {measured_pw:.3} vs Erlang-C {predicted_pw:.3}"
        );
    }
}
