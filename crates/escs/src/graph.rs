//! PSAP network topology: the graph underlying the simulation.
//!
//! An ESCS is modeled as regions whose calls route to a primary PSAP
//! (public-safety answering point); PSAPs have finite trunk capacity, may
//! overflow to a partner PSAP, and hand answered calls to responder pools
//! (fire / police / EMS) for dispatch.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of a PSAP in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PsapId(pub usize);

/// Index of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub usize);

/// Responder service branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResponderKind {
    /// Fire and rescue.
    Fire,
    /// Law enforcement.
    Police,
    /// Emergency medical services.
    Ems,
}

impl ResponderKind {
    /// All branches, for iteration.
    pub const ALL: [ResponderKind; 3] =
        [ResponderKind::Fire, ResponderKind::Police, ResponderKind::Ems];
}

/// Configuration of one PSAP node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PsapConfig {
    /// Node id (must equal its index in [`Topology::psaps`]).
    pub id: PsapId,
    /// Display name (e.g. "King County 911").
    pub name: String,
    /// Concurrent call-taker trunks.
    pub trunks: usize,
    /// Queue length beyond which new arrivals overflow to the partner.
    pub overflow_threshold: usize,
    /// Partner PSAP receiving overflow, if any.
    pub overflow_to: Option<PsapId>,
}

/// Configuration of one responder pool (per region × kind).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponderPoolConfig {
    /// Which region the pool serves.
    pub region: RegionId,
    /// Service branch.
    pub kind: ResponderKind,
    /// Available units.
    pub units: usize,
}

/// One geographic region generating calls.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionConfig {
    /// Region id (must equal its index).
    pub id: RegionId,
    /// Display name.
    pub name: String,
    /// Primary PSAP for this region's calls.
    pub primary_psap: PsapId,
    /// Baseline call rate (calls per simulated minute).
    pub base_rate_per_min: f64,
    /// Region centroid for synthetic GPS (lat, lon).
    pub centroid: (f64, f64),
}

/// The complete ESCS graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// PSAP nodes.
    pub psaps: Vec<PsapConfig>,
    /// Regions.
    pub regions: Vec<RegionConfig>,
    /// Responder pools.
    pub pools: Vec<ResponderPoolConfig>,
}

impl Topology {
    /// Validate referential integrity. Returns problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.psaps.is_empty() {
            problems.push("topology has no PSAPs".into());
        }
        if self.regions.is_empty() {
            problems.push("topology has no regions".into());
        }
        for (i, p) in self.psaps.iter().enumerate() {
            if p.id.0 != i {
                problems.push(format!("PSAP {} id mismatch (index {i})", p.id.0));
            }
            if p.trunks == 0 {
                problems.push(format!("PSAP '{}' has zero trunks", p.name));
            }
            if let Some(o) = p.overflow_to {
                if o == p.id {
                    problems.push(format!("PSAP '{}' overflows to itself", p.name));
                }
                if o.0 >= self.psaps.len() {
                    problems.push(format!("PSAP '{}' overflows to unknown PSAP {}", p.name, o.0));
                }
            }
        }
        for (i, r) in self.regions.iter().enumerate() {
            if r.id.0 != i {
                problems.push(format!("region {} id mismatch (index {i})", r.id.0));
            }
            if r.primary_psap.0 >= self.psaps.len() {
                problems.push(format!("region '{}' routes to unknown PSAP", r.name));
            }
            if r.base_rate_per_min <= 0.0 {
                problems.push(format!("region '{}' has non-positive call rate", r.name));
            }
        }
        for pool in &self.pools {
            if pool.region.0 >= self.regions.len() {
                problems.push(format!("pool {:?} serves unknown region", pool.kind));
            }
            if pool.units == 0 {
                problems.push(format!("pool {:?}/region {} has zero units", pool.kind, pool.region.0));
            }
        }
        // Every region needs all three pools for dispatchability.
        let mut have: BTreeMap<(RegionId, ResponderKind), usize> = BTreeMap::new();
        for pool in &self.pools {
            *have.entry((pool.region, pool.kind)).or_default() += pool.units;
        }
        for r in &self.regions {
            for kind in ResponderKind::ALL {
                if !have.contains_key(&(r.id, kind)) {
                    problems.push(format!("region '{}' lacks a {:?} pool", r.name, kind));
                }
            }
        }
        problems
    }

    /// Total trunk capacity.
    pub fn total_trunks(&self) -> usize {
        self.psaps.iter().map(|p| p.trunks).sum()
    }

    /// Total responder units.
    pub fn total_units(&self) -> usize {
        self.pools.iter().map(|p| p.units).sum()
    }

    /// A small single-city topology: 1 region, 1 PSAP, three pools. The
    /// quickstart configuration.
    pub fn single_city() -> Topology {
        Topology {
            psaps: vec![PsapConfig {
                id: PsapId(0),
                name: "City 911".into(),
                trunks: 4,
                overflow_threshold: 10,
                overflow_to: None,
            }],
            regions: vec![RegionConfig {
                id: RegionId(0),
                name: "City".into(),
                primary_psap: PsapId(0),
                base_rate_per_min: 2.0,
                centroid: (47.6062, -122.3321),
            }],
            pools: ResponderKind::ALL
                .iter()
                .map(|&kind| ResponderPoolConfig { region: RegionId(0), kind, units: 3 })
                .collect(),
        }
    }

    /// A metro topology with `n` districts: `n` regions, `n` PSAPs in an
    /// overflow ring, pools sized to the district index. Used for the D1
    /// scaling sweep.
    pub fn metro(n: usize) -> Topology {
        assert!(n >= 1);
        let psaps = (0..n)
            .map(|i| PsapConfig {
                id: PsapId(i),
                name: format!("District {i} PSAP"),
                trunks: 3 + i % 3,
                overflow_threshold: 8,
                overflow_to: if n > 1 { Some(PsapId((i + 1) % n)) } else { None },
            })
            .collect();
        let regions = (0..n)
            .map(|i| RegionConfig {
                id: RegionId(i),
                name: format!("District {i}"),
                primary_psap: PsapId(i),
                base_rate_per_min: 1.0 + (i % 4) as f64 * 0.5,
                centroid: (45.0 + i as f64 * 0.05, -120.0 - i as f64 * 0.05),
            })
            .collect();
        let mut pools = Vec::with_capacity(3 * n);
        for i in 0..n {
            for kind in ResponderKind::ALL {
                pools.push(ResponderPoolConfig {
                    region: RegionId(i),
                    kind,
                    units: 2 + i % 3,
                });
            }
        }
        Topology { psaps, regions, pools }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_city_is_valid() {
        let t = Topology::single_city();
        assert!(t.validate().is_empty(), "{:?}", t.validate());
        assert_eq!(t.total_trunks(), 4);
        assert_eq!(t.total_units(), 9);
    }

    #[test]
    fn metro_topologies_valid_across_sizes() {
        for n in [1, 2, 3, 10, 25] {
            let t = Topology::metro(n);
            assert!(t.validate().is_empty(), "n={n}: {:?}", t.validate());
            assert_eq!(t.psaps.len(), n);
            assert_eq!(t.regions.len(), n);
            assert_eq!(t.pools.len(), 3 * n);
        }
    }

    #[test]
    fn metro_overflow_forms_ring() {
        let t = Topology::metro(4);
        assert_eq!(t.psaps[3].overflow_to, Some(PsapId(0)));
        let t1 = Topology::metro(1);
        assert_eq!(t1.psaps[0].overflow_to, None);
    }

    #[test]
    fn validation_catches_problems() {
        let mut t = Topology::single_city();
        t.psaps[0].trunks = 0;
        t.psaps[0].overflow_to = Some(PsapId(0));
        t.regions[0].base_rate_per_min = 0.0;
        let problems = t.validate();
        assert!(problems.iter().any(|p| p.contains("zero trunks")));
        assert!(problems.iter().any(|p| p.contains("overflows to itself")));
        assert!(problems.iter().any(|p| p.contains("non-positive call rate")));
    }

    #[test]
    fn validation_catches_missing_pools() {
        let mut t = Topology::single_city();
        t.pools.retain(|p| p.kind != ResponderKind::Ems);
        let problems = t.validate();
        assert!(problems.iter().any(|p| p.contains("Ems")));
    }

    #[test]
    fn validation_catches_dangling_references() {
        let mut t = Topology::single_city();
        t.regions[0].primary_psap = PsapId(99);
        t.psaps[0].overflow_to = Some(PsapId(99));
        let problems = t.validate();
        assert!(problems.iter().filter(|p| p.contains("unknown")).count() >= 2);
    }

    #[test]
    fn serde_round_trip() {
        let t = Topology::metro(3);
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert!(back.validate().is_empty());
        assert_eq!(back.psaps.len(), 3);
    }
}
