//! Privacy transforms for transferring ESCS data to a research environment.
//!
//! Section 3.1: "we must understand privacy and security risks associated
//! with transferring them from their current owners to a research
//! environment". The transforms here are the standard pair:
//!
//! * **Phone masking** — keep the exchange prefix, mask the subscriber
//!   number (`206-555-0147` → `206-555-XXXX`), or drop entirely.
//! * **GPS coarsening** — snap coordinates to a grid of configurable cell
//!   size, the cheap k-anonymity-style generalization that keeps spatial
//!   analytics possible while removing address-level precision.
//!
//! Experiment D8 property-tests the leakage guarantee: no full phone number
//! or full-precision coordinate survives the transform.

use crate::call::CallRecord;
use serde::{Deserialize, Serialize};

/// How phone numbers are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhonePolicy {
    /// Keep as-is (only lawful inside the owning agency).
    Keep,
    /// Mask the subscriber number: `206-555-XXXX`.
    MaskSubscriber,
    /// Remove entirely.
    Drop,
}

/// How GPS coordinates are treated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GpsPolicy {
    /// Keep full precision.
    Keep,
    /// Snap to a grid with the given cell size in degrees (e.g. 0.01 ≈ 1 km).
    Coarsen {
        /// Grid cell size in degrees.
        cell_deg: f64,
    },
    /// Remove entirely (coordinates become (0,0) and a flag is set).
    Drop,
}

/// A privacy profile applied to call records before transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyProfile {
    /// Phone treatment.
    pub phone: PhonePolicy,
    /// GPS treatment.
    pub gps: GpsPolicy,
}

impl PrivacyProfile {
    /// The profile a model data-sharing agreement would default to:
    /// masked subscriber numbers, ~1 km grid.
    pub fn research_default() -> Self {
        PrivacyProfile {
            phone: PhonePolicy::MaskSubscriber,
            gps: GpsPolicy::Coarsen { cell_deg: 0.01 },
        }
    }

    /// Maximum protection: drop both.
    pub fn strict() -> Self {
        PrivacyProfile { phone: PhonePolicy::Drop, gps: GpsPolicy::Drop }
    }

    /// Apply to one record, returning the sanitized copy.
    pub fn apply(&self, record: &CallRecord) -> CallRecord {
        let mut out = record.clone();
        out.caller_phone = match self.phone {
            PhonePolicy::Keep => out.caller_phone,
            PhonePolicy::MaskSubscriber => mask_subscriber(&out.caller_phone),
            PhonePolicy::Drop => String::new(),
        };
        out.gps = match self.gps {
            GpsPolicy::Keep => out.gps,
            GpsPolicy::Coarsen { cell_deg } => {
                (snap(out.gps.0, cell_deg), snap(out.gps.1, cell_deg))
            }
            GpsPolicy::Drop => (0.0, 0.0),
        };
        out
    }

    /// Apply to a batch.
    pub fn apply_batch(&self, records: &[CallRecord]) -> Vec<CallRecord> {
        records.iter().map(|r| self.apply(r)).collect()
    }
}

fn mask_subscriber(phone: &str) -> String {
    // Already masked (idempotence): leave untouched.
    if phone.is_empty() || phone.contains('X') {
        return phone.to_string();
    }
    // Keep everything up to the last separator, mask the trailing digit run.
    match phone.rfind('-') {
        // itrust-lint: allow(panic-reachable) — bucket indices are clamped to the histogram width
        Some(pos) if phone[pos + 1..].chars().all(|c| c.is_ascii_digit()) => {
            format!("{}-XXXX", &phone[..pos])
        }
        _ => {
            // Unstructured number: mask the last 4 digits defensively.
            let digits: Vec<usize> = phone
                .char_indices()
                .filter(|(_, c)| c.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            if digits.len() < 4 {
                return "XXXX".into();
            }
            let mut s: Vec<char> = phone.chars().collect();
            for &i in &digits[digits.len() - 4..] {
                s[i] = 'X';
            }
            s.into_iter().collect()
        }
    }
}

fn snap(v: f64, cell: f64) -> f64 {
    assert!(cell > 0.0);
    (v / cell).round() * cell
}

/// Leakage check used by tests and the D8 experiment: does the sanitized
/// batch still contain any full subscriber number or any coordinate at
/// higher precision than the profile allows?
pub fn verify_no_leakage(profile: &PrivacyProfile, sanitized: &[CallRecord]) -> Result<(), String> {
    for r in sanitized {
        match profile.phone {
            PhonePolicy::Keep => {}
            PhonePolicy::MaskSubscriber => {
                let tail: String = r
                    .caller_phone
                    .chars()
                    .rev()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                if tail.len() >= 4 {
                    return Err(format!(
                        "call {}: subscriber digits survived masking: {}",
                        r.call_id, r.caller_phone
                    ));
                }
            }
            PhonePolicy::Drop => {
                if !r.caller_phone.is_empty() {
                    return Err(format!("call {}: phone not dropped", r.call_id));
                }
            }
        }
        if let GpsPolicy::Coarsen { cell_deg } = profile.gps {
            for (axis, v) in [("lat", r.gps.0), ("lon", r.gps.1)] {
                let snapped = snap(v, cell_deg);
                if (snapped - v).abs() > 1e-9 {
                    return Err(format!(
                        "call {}: {axis} {v} not on the {cell_deg}° grid",
                        r.call_id
                    ));
                }
            }
        }
        if profile.gps == GpsPolicy::Drop && r.gps != (0.0, 0.0) {
            return Err(format!("call {}: gps not dropped", r.call_id));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::{CallCategory, CallOutcome};
    use crate::graph::{PsapId, RegionId};

    fn record(phone: &str, gps: (f64, f64)) -> CallRecord {
        CallRecord {
            call_id: 0,
            region: RegionId(0),
            answered_by: Some(PsapId(0)),
            transferred: false,
            caller_phone: phone.into(),
            gps,
            category: CallCategory::Medical,
            arrived_ms: 0,
            answered_ms: Some(10),
            handling_ms: Some(100),
            dispatched: None,
            responder_unit: None,
            on_scene_ms: None,
            outcome: CallOutcome::AnsweredNoDispatch,
        }
    }

    #[test]
    fn mask_subscriber_standard_format() {
        let p = PrivacyProfile::research_default();
        let out = p.apply(&record("206-555-0147", (47.0, -122.0)));
        assert_eq!(out.caller_phone, "206-555-XXXX");
    }

    #[test]
    fn mask_subscriber_unstructured_number() {
        let p = PrivacyProfile {
            phone: PhonePolicy::MaskSubscriber,
            gps: GpsPolicy::Keep,
        };
        let out = p.apply(&record("2065550147", (0.0, 0.0)));
        assert!(out.caller_phone.ends_with("XXXX"));
        assert!(!out.caller_phone.contains("0147"));
        // Degenerate short number.
        let out = p.apply(&record("911", (0.0, 0.0)));
        assert_eq!(out.caller_phone, "XXXX");
    }

    #[test]
    fn gps_coarsening_snaps_to_grid() {
        let p = PrivacyProfile::research_default();
        let out = p.apply(&record("206-555-0147", (47.60621, -122.33207)));
        assert!((out.gps.0 - 47.61).abs() < 1e-9, "{}", out.gps.0);
        assert!((out.gps.1 - (-122.33)).abs() < 1e-9, "{}", out.gps.1);
    }

    #[test]
    fn strict_profile_drops_everything() {
        let p = PrivacyProfile::strict();
        let out = p.apply(&record("206-555-0147", (47.6, -122.3)));
        assert!(out.caller_phone.is_empty());
        assert_eq!(out.gps, (0.0, 0.0));
    }

    #[test]
    fn keep_profile_is_identity() {
        let p = PrivacyProfile { phone: PhonePolicy::Keep, gps: GpsPolicy::Keep };
        let r = record("206-555-0147", (47.6062, -122.3321));
        assert_eq!(p.apply(&r), r);
    }

    #[test]
    fn non_sensitive_fields_preserved() {
        let p = PrivacyProfile::strict();
        let r = record("206-555-0147", (47.6, -122.3));
        let out = p.apply(&r);
        assert_eq!(out.call_id, r.call_id);
        assert_eq!(out.category, r.category);
        assert_eq!(out.answered_ms, r.answered_ms);
        assert_eq!(out.outcome, r.outcome);
    }

    #[test]
    fn verify_no_leakage_passes_on_sanitized_fails_on_raw() {
        let p = PrivacyProfile::research_default();
        let raw: Vec<CallRecord> = (0..20)
            .map(|i| {
                let mut r = record("206-555-0147", (47.123456 + i as f64 * 0.001, -122.654321));
                r.call_id = i;
                r
            })
            .collect();
        let sanitized = p.apply_batch(&raw);
        verify_no_leakage(&p, &sanitized).unwrap();
        assert!(verify_no_leakage(&p, &raw).is_err());
    }

    #[test]
    fn verify_detects_dropped_policy_violation() {
        let p = PrivacyProfile::strict();
        let not_dropped = vec![record("1", (1.0, 1.0))];
        assert!(verify_no_leakage(&p, &not_dropped).is_err());
    }
}
