//! Model data-sharing agreements.
//!
//! One of the Section 3.1 work items: "fleshing out a model data sharing
//! agreement to serve as a starting point for discussions surrounding
//! transferring data to our research environment". The agreement here is a
//! machine-checkable contract: parties, purpose, the privacy profile the
//! transfer must satisfy, a retention limit for the research copy, and the
//! jurisdictional restrictions the study's "knowledge base of legal
//! restrictions" tracks. The preserve module refuses to package a transfer
//! that violates its agreement.

use crate::privacy::{PrivacyProfile, verify_no_leakage};
use crate::call::CallRecord;
use serde::{Deserialize, Serialize};

/// A jurisdiction's collection/transfer restriction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LegalRestriction {
    /// Jurisdiction code (e.g. "US-WA", "CA-BC", "IT").
    pub jurisdiction: String,
    /// Summary of the restriction.
    pub summary: String,
    /// Whether transfer outside the jurisdiction is permitted at all.
    pub transfer_permitted: bool,
}

/// A data-sharing agreement between an ESCS owner and a research host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSharingAgreement {
    /// Stable agreement id.
    pub id: String,
    /// The data owner (e.g. "King County E-911 Office").
    pub owner: String,
    /// The receiving research organization.
    pub recipient: String,
    /// Research purpose statement.
    pub purpose: String,
    /// Jurisdiction the data originates in.
    pub jurisdiction: String,
    /// Privacy profile every transferred record must satisfy.
    pub privacy: PrivacyProfile,
    /// Agreement validity window (ms, inclusive start / exclusive end).
    pub valid_ms: (u64, u64),
    /// Maximum retention of the research copy after transfer (ms).
    pub research_retention_ms: u64,
}

/// Why a transfer was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferViolation {
    /// The agreement is not in force at the transfer time.
    OutsideValidity,
    /// The jurisdiction forbids transfer.
    JurisdictionForbids(String),
    /// Sanitization requirements not met.
    PrivacyLeakage(String),
}

impl std::fmt::Display for TransferViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferViolation::OutsideValidity => write!(f, "agreement not in force"),
            TransferViolation::JurisdictionForbids(j) => {
                write!(f, "jurisdiction {j} forbids transfer")
            }
            TransferViolation::PrivacyLeakage(d) => write!(f, "privacy leakage: {d}"),
        }
    }
}

impl DataSharingAgreement {
    /// Check a proposed transfer of `records` (already sanitized) at
    /// `now_ms` against this agreement and the restriction knowledge base.
    pub fn check_transfer(
        &self,
        records: &[CallRecord],
        now_ms: u64,
        restrictions: &[LegalRestriction],
    ) -> Result<(), TransferViolation> {
        if now_ms < self.valid_ms.0 || now_ms >= self.valid_ms.1 {
            return Err(TransferViolation::OutsideValidity);
        }
        if let Some(r) = restrictions
            .iter()
            .find(|r| r.jurisdiction == self.jurisdiction && !r.transfer_permitted)
        {
            return Err(TransferViolation::JurisdictionForbids(r.jurisdiction.clone()));
        }
        verify_no_leakage(&self.privacy, records)
            .map_err(TransferViolation::PrivacyLeakage)?;
        Ok(())
    }

    /// Sanitize then check: the one-call path `preserve` uses.
    pub fn prepare_transfer(
        &self,
        raw: &[CallRecord],
        now_ms: u64,
        restrictions: &[LegalRestriction],
    ) -> Result<Vec<CallRecord>, TransferViolation> {
        let sanitized = self.privacy.apply_batch(raw);
        self.check_transfer(&sanitized, now_ms, restrictions)?;
        Ok(sanitized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::{CallCategory, CallOutcome};
    use crate::graph::{PsapId, RegionId};

    fn agreement() -> DataSharingAgreement {
        DataSharingAgreement {
            id: "dsa-2022-01".into(),
            owner: "County E-911 Office".into(),
            recipient: "University Research Lab".into(),
            purpose: "replay of past events; analytics method research".into(),
            jurisdiction: "US-WA".into(),
            privacy: PrivacyProfile::research_default(),
            valid_ms: (1_000, 1_000_000),
            research_retention_ms: 5_000_000,
        }
    }

    fn raw_calls(n: u64) -> Vec<CallRecord> {
        (0..n)
            .map(|i| CallRecord {
                call_id: i,
                region: RegionId(0),
                answered_by: Some(PsapId(0)),
                transferred: false,
                caller_phone: format!("206-555-{:04}", 1000 + i),
                gps: (47.123456, -122.654321),
                category: CallCategory::Fire,
                arrived_ms: i * 100,
                answered_ms: Some(i * 100 + 5),
                handling_ms: Some(60_000),
                dispatched: None,
                responder_unit: None,
                on_scene_ms: None,
                outcome: CallOutcome::AnsweredNoDispatch,
            })
            .collect()
    }

    #[test]
    fn prepare_transfer_sanitizes_and_passes() {
        let dsa = agreement();
        let out = dsa.prepare_transfer(&raw_calls(10), 2_000, &[]).unwrap();
        assert_eq!(out.len(), 10);
        for r in &out {
            assert!(r.caller_phone.ends_with("XXXX"));
        }
    }

    #[test]
    fn raw_transfer_is_refused_as_leakage() {
        let dsa = agreement();
        let err = dsa.check_transfer(&raw_calls(3), 2_000, &[]).unwrap_err();
        assert!(matches!(err, TransferViolation::PrivacyLeakage(_)));
    }

    #[test]
    fn validity_window_enforced() {
        let dsa = agreement();
        let sanitized = dsa.privacy.apply_batch(&raw_calls(1));
        assert_eq!(
            dsa.check_transfer(&sanitized, 500, &[]),
            Err(TransferViolation::OutsideValidity)
        );
        assert_eq!(
            dsa.check_transfer(&sanitized, 1_000_000, &[]),
            Err(TransferViolation::OutsideValidity)
        );
        dsa.check_transfer(&sanitized, 999_999, &[]).unwrap();
    }

    #[test]
    fn jurisdictional_prohibition_enforced() {
        let dsa = agreement();
        let restrictions = vec![LegalRestriction {
            jurisdiction: "US-WA".into(),
            summary: "state law forbids off-site transfer of CAD data".into(),
            transfer_permitted: false,
        }];
        let sanitized = dsa.privacy.apply_batch(&raw_calls(1));
        assert!(matches!(
            dsa.check_transfer(&sanitized, 2_000, &restrictions),
            Err(TransferViolation::JurisdictionForbids(_))
        ));
        // A restriction in a different jurisdiction does not block.
        let other = vec![LegalRestriction {
            jurisdiction: "CA-BC".into(),
            summary: "…".into(),
            transfer_permitted: false,
        }];
        dsa.check_transfer(&sanitized, 2_000, &other).unwrap();
    }

    #[test]
    fn violation_display() {
        assert!(TransferViolation::OutsideValidity.to_string().contains("not in force"));
        assert!(TransferViolation::JurisdictionForbids("X".into())
            .to_string()
            .contains('X'));
    }

    #[test]
    fn serde_round_trip() {
        let dsa = agreement();
        let json = serde_json::to_string(&dsa).unwrap();
        let back: DataSharingAgreement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dsa);
    }
}
