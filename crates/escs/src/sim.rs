//! The ESCS simulation engine.
//!
//! A nonhomogeneous-Poisson call stream (regional base rates × the external
//! timeline's multipliers, via thinning) drives a queueing network of PSAPs
//! (finite trunks, overflow transfer, caller abandonment) and responder
//! pools (finite units, dispatch queues). Runs are bit-deterministic in
//! `(config, seed)` — the property the preservation/replay experiment
//! depends on.
//!
//! Arrival generation is parallel and the event loop is RNG-free: each
//! region's candidate stream is sampled up front in its own seeded
//! sub-stream (split from the run seed via `SeedableRng::seed_from_stream`),
//! every random quantity a call will ever need is drawn at acceptance time,
//! and the per-region streams are merged by `(time, region)`. The event
//! loop then only consumes pre-sampled values, so [`SimOutput`] is
//! byte-identical for every `ITRUST_THREADS` setting.

use crate::call::{CallCategory, CallOutcome, CallRecord, CallStats};
use crate::event::{EventQueue, SimTime};
use crate::external::ExternalTimeline;
use crate::graph::{PsapId, RegionId, ResponderKind, Topology};
use crate::stats::{exponential, gaussian, log_normal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Engine version string embedded in run provenance (paradata).
pub const ENGINE_VERSION: &str = "escs-sim/0.1.0";

/// Simulation configuration: everything a replay needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Network topology.
    pub topology: Topology,
    /// External (weather/traffic/geopolitical) context.
    pub timeline: ExternalTimeline,
    /// Arrivals are generated for `[0, duration_ms)`.
    pub duration_ms: u64,
    /// RNG seed (full determinism).
    pub seed: u64,
    /// Log-normal (mu, sigma) of call handling time, ms-scale.
    pub handling_lognormal: (f64, f64),
    /// Mean caller patience before abandoning, ms (exponential).
    pub mean_patience_ms: f64,
    /// Log-normal (mu, sigma) of unit travel time, ms-scale.
    pub travel_lognormal: (f64, f64),
    /// Log-normal (mu, sigma) of on-scene time, ms-scale.
    pub on_scene_lognormal: (f64, f64),
}

impl SimConfig {
    /// Sensible defaults over a topology: ~90 s handling, ~45 s patience,
    /// ~6 min travel, ~20 min on scene.
    pub fn with_defaults(topology: Topology, timeline: ExternalTimeline, duration_ms: u64, seed: u64) -> Self {
        SimConfig {
            topology,
            timeline,
            duration_ms,
            seed,
            handling_lognormal: ((90_000.0f64).ln(), 0.35),
            mean_patience_ms: 45_000.0,
            travel_lognormal: ((360_000.0f64).ln(), 0.4),
            on_scene_lognormal: ((1_200_000.0f64).ln(), 0.3),
        }
    }

    /// Content digest of the canonical config encoding — identifies the
    /// scenario in provenance records.
    pub fn digest(&self) -> trustdb::hash::Digest {
        // itrust-lint: allow(panic-reachable) — plain numeric config serializes infallibly; digest() is an identity, not an I/O path
        trustdb::hash::sha256(&serde_json::to_vec(self).expect("config serializable"))
    }
}

/// Artifact provenance of one run ("simulation artifact provenance
/// information as exemplars", §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProvenance {
    /// Engine version.
    pub engine: String,
    /// Digest of the exact configuration.
    pub config_digest: String,
    /// RNG seed.
    pub seed: u64,
    /// Events processed.
    pub events_processed: u64,
    /// Calls generated.
    pub calls_generated: u64,
}

/// Complete output of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutput {
    /// Every call's detail record, in call-id order.
    pub calls: Vec<CallRecord>,
    /// Aggregate statistics.
    pub stats: CallStats,
    /// Run provenance / paradata.
    pub provenance: RunProvenance,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Call taker finished handling a call at a PSAP.
    AnswerComplete { psap: usize, call: usize },
    /// A queued caller's patience expires.
    Abandon { call: usize },
    /// A dispatched unit reaches the scene.
    UnitArrive { call: usize, region: usize, kind: ResponderKind, unit: usize },
    /// A unit clears the scene and becomes available.
    UnitClear { region: usize, kind: ResponderKind, unit: usize },
}

/// One accepted call with every random quantity it will ever need,
/// pre-sampled at generation time from its region's dedicated RNG stream.
/// Pre-sampling unconditionally (even `patience_ms` for calls that are
/// never queued, or `travel_ms` for calls that are never dispatched) is
/// what decouples the region streams from queueing dynamics: the values a
/// call draws can never depend on what happened to earlier calls.
#[derive(Debug, Clone)]
struct ArrivalDraw {
    at: SimTime,
    region: usize,
    category: CallCategory,
    phone_suffix: u32,
    gps: (f64, f64),
    handling_ms: SimTime,
    patience_ms: SimTime,
    travel_ms: SimTime,
    on_scene_ms: SimTime,
}

/// Generate one region's accepted arrivals for `[0, duration_ms)`.
///
/// The stream index is `region + 1`: stream 0 of a seed is the base
/// `seed_from_u64` stream, which other (non-regional) consumers of the run
/// seed may already be using.
fn region_arrivals(config: &SimConfig, region: usize, max_multiplier: f64) -> Vec<ArrivalDraw> {
    let mut rng = StdRng::seed_from_stream(config.seed, region as u64 + 1);
    // itrust-lint: allow(panic-reachable) — agent and cell indices are bounded by the grid dims fixed at setup
    let region_cfg = &config.topology.regions[region];
    let envelope = region_cfg.base_rate_per_min * max_multiplier / 60_000.0; // per ms
    let (clat, clon) = region_cfg.centroid;
    let mut draws = Vec::new();
    let mut t = exponential(&mut rng, envelope).ceil() as SimTime;
    while t < config.duration_ms {
        // Thinning: accept with probability rate(t)/envelope-rate.
        let actual =
            region_cfg.base_rate_per_min * config.timeline.multiplier(t, region) / 60_000.0;
        if rng.gen::<f64>() < actual / envelope {
            let category = sample_category(&mut rng);
            let phone_suffix = rng.gen_range(0..10_000u32);
            let gps = (clat + 0.02 * gaussian(&mut rng), clon + 0.02 * gaussian(&mut rng));
            let handling_ms =
                log_normal(&mut rng, config.handling_lognormal.0, config.handling_lognormal.1)
                    .ceil() as SimTime;
            let patience_ms =
                exponential(&mut rng, 1.0 / config.mean_patience_ms).ceil().max(1.0) as SimTime;
            let travel_ms =
                log_normal(&mut rng, config.travel_lognormal.0, config.travel_lognormal.1).ceil()
                    as SimTime;
            let on_scene_ms =
                log_normal(&mut rng, config.on_scene_lognormal.0, config.on_scene_lognormal.1)
                    .ceil() as SimTime;
            draws.push(ArrivalDraw {
                at: t,
                region,
                category,
                phone_suffix,
                gps,
                handling_ms,
                patience_ms,
                travel_ms,
                on_scene_ms,
            });
        }
        // Inter-arrival times are ≥ 1 ms, so within a region arrival times
        // are strictly increasing — (at, region) totally orders the merge.
        t += exponential(&mut rng, envelope).ceil().max(1.0) as SimTime;
    }
    draws
}

struct PsapState {
    busy_trunks: usize,
    queue: VecDeque<usize>,
}

struct PoolState {
    units_busy: Vec<bool>,
    pending: VecDeque<usize>, // call indices awaiting a unit
}

/// Run the simulation to completion (arrivals stop at `duration_ms`; the
/// event list then drains so every accepted call reaches a terminal state).
pub fn run(config: &SimConfig) -> SimOutput {
    run_with_obs(config, &itrust_obs::ObsCtx::null())
}

/// [`run`], recording telemetry (spans, dispatch counters, queue-depth
/// high-water gauge) into `obs`.
pub fn run_with_obs(config: &SimConfig, obs: &itrust_obs::ObsCtx) -> SimOutput {
    let _span = itrust_obs::span!(obs, "escs.sim.run");
    let problems = config.topology.validate();
    assert!(problems.is_empty(), "invalid topology: {problems:?}");
    let mut queue: EventQueue<Event> = EventQueue::new();
    let n_regions = config.topology.regions.len();

    // Per-region thinning envelope: base rate × an upper bound on the
    // timeline multiplier (product of all surge multipliers ≥ 1).
    let max_multiplier: f64 = config
        .timeline
        .events
        .iter()
        .map(|e| e.rate_multiplier.max(1.0))
        .product::<f64>()
        .max(1.0);

    // Generate every region's arrival stream (parallel — each region has
    // its own RNG stream), then merge deterministically by (time, region).
    let arrivals: Vec<ArrivalDraw> = obs.time("escs.sim.generate_arrivals", || {
        let per_region: Vec<Vec<ArrivalDraw>> =
            itrust_par::par_map_indices(n_regions, |ri| region_arrivals(config, ri, max_multiplier));
        let mut all: Vec<ArrivalDraw> = per_region.into_iter().flatten().collect();
        all.sort_by_key(|d| (d.at, d.region));
        all
    });

    let mut psaps: Vec<PsapState> = config
        .topology
        .psaps
        .iter()
        .map(|_| PsapState { busy_trunks: 0, queue: VecDeque::new() })
        .collect();
    // Pools indexed by (region, kind).
    let pool_units = |topology: &Topology, region: usize, kind: ResponderKind| -> usize {
        topology
            .pools
            .iter()
            .filter(|p| p.region.0 == region && p.kind == kind)
            .map(|p| p.units)
            .sum()
    };
    let kind_index = |k: ResponderKind| match k {
        ResponderKind::Fire => 0usize,
        ResponderKind::Police => 1,
        ResponderKind::Ems => 2,
    };
    let mut pools: Vec<PoolState> = Vec::with_capacity(n_regions * 3);
    for ri in 0..n_regions {
        for kind in ResponderKind::ALL {
            pools.push(PoolState {
                units_busy: vec![false; pool_units(&config.topology, ri, kind)],
                pending: VecDeque::new(),
            });
        }
    }
    let pool_at = |region: usize, kind: ResponderKind| region * 3 + kind_index(kind);

    let mut calls: Vec<CallRecord> = Vec::new();
    let mut waiting: Vec<bool> = Vec::new(); // call index → still in a queue

    // Handles hoisted out of the event loop: the loop body must stay pure
    // atomics, not per-iteration registry lookups.
    let dispatched = obs.counter("escs.sim.events_dispatched");
    let depth_high_water = obs.gauge("escs.sim.queue_depth_max");

    // Helper closures are avoided where they would need &mut captures;
    // the match below is explicit instead. The pre-generated arrival stream
    // is merged with the scheduled-event queue in time order; an arrival
    // wins ties (any fixed rule works — it just must not depend on the
    // thread count).
    let mut next_arrival = 0usize;
    while next_arrival < arrivals.len() || !queue.is_empty() {
        let take_arrival = match queue.peek_time() {
            // itrust-lint: allow(panic-reachable) — agent and cell indices are bounded by the grid dims fixed at setup
            Some(t) => next_arrival < arrivals.len() && arrivals[next_arrival].at <= t,
            None => next_arrival < arrivals.len(),
        };
        if take_arrival {
            let draw = &arrivals[next_arrival];
            next_arrival += 1;
            dispatched.inc();
            let now = draw.at;
            let region = draw.region;
            let region_cfg = &config.topology.regions[region];
            // Create the call. Every accepted draw becomes exactly one call,
            // so call_id indexes both `calls` and `arrivals`.
            let call_id = calls.len();
            let call = CallRecord {
                call_id: call_id as u64,
                region: RegionId(region),
                answered_by: None,
                transferred: false,
                caller_phone: format!("206-555-{:04}", draw.phone_suffix),
                gps: draw.gps,
                category: draw.category,
                arrived_ms: now,
                answered_ms: None,
                handling_ms: None,
                dispatched: None,
                responder_unit: None,
                on_scene_ms: None,
                outcome: CallOutcome::Abandoned, // until proven otherwise
            };
            calls.push(call);
            waiting.push(false);
            // Route: primary PSAP, with overflow transfer when congested.
            let primary = region_cfg.primary_psap.0;
            let mut target = primary;
            let pcfg = &config.topology.psaps[primary];
            if psaps[primary].queue.len() >= pcfg.overflow_threshold {
                if let Some(partner) = pcfg.overflow_to {
                    target = partner.0;
                    calls[call_id].transferred = true;
                }
            }
            calls[call_id].answered_by = Some(PsapId(target));
            let tcfg = &config.topology.psaps[target];
            if psaps[target].busy_trunks < tcfg.trunks {
                psaps[target].busy_trunks += 1;
                calls[call_id].answered_ms = Some(now);
                calls[call_id].handling_ms = Some(draw.handling_ms);
                queue.schedule(
                    now + draw.handling_ms,
                    Event::AnswerComplete { psap: target, call: call_id },
                );
            } else {
                psaps[target].queue.push_back(call_id);
                waiting[call_id] = true;
                queue.schedule(now + draw.patience_ms, Event::Abandon { call: call_id });
            }
            continue;
        }
        let Some((now, event)) = queue.pop() else {
            // `take_arrival` was false with an empty queue, which the loop
            // condition excludes; treat defensively as a drained simulation
            // instead of panicking mid-run.
            break;
        };
        dispatched.inc();
        depth_high_water.max_of(queue.len() as i64);
        match event {
            Event::Abandon { call } => {
                if waiting[call] {
                    waiting[call] = false;
                    calls[call].outcome = CallOutcome::Abandoned;
                    calls[call].answered_by = None;
                    // Lazy removal: the PSAP queue skips non-waiting entries.
                }
            }
            Event::AnswerComplete { psap, call } => {
                // Dispatch the just-handled call if its category requires it.
                let region = calls[call].region.0;
                match calls[call].category.responder() {
                    None => {
                        calls[call].outcome = CallOutcome::AnsweredNoDispatch;
                    }
                    Some(kind) => {
                        calls[call].dispatched = Some(kind);
                        let pi = pool_at(region, kind);
                        if let Some(unit) =
                            pools[pi].units_busy.iter().position(|&b| !b)
                        {
                            pools[pi].units_busy[unit] = true;
                            dispatch_unit(
                                &mut queue, &mut calls, &arrivals, call, region, kind, unit, now,
                            );
                        } else {
                            pools[pi].pending.push_back(call);
                        }
                    }
                }
                // Free the trunk and serve the next waiting caller.
                psaps[psap].busy_trunks -= 1;
                while let Some(next) = psaps[psap].queue.pop_front() {
                    if !waiting[next] {
                        continue; // abandoned while queued
                    }
                    waiting[next] = false;
                    psaps[psap].busy_trunks += 1;
                    calls[next].answered_ms = Some(now);
                    let handling = arrivals[next].handling_ms;
                    calls[next].handling_ms = Some(handling);
                    queue.schedule(now + handling, Event::AnswerComplete { psap, call: next });
                    break;
                }
            }
            Event::UnitArrive { call, region, kind, unit } => {
                calls[call].on_scene_ms = Some(now);
                calls[call].outcome = CallOutcome::Completed;
                let on_scene = arrivals[call].on_scene_ms;
                queue.schedule(now + on_scene, Event::UnitClear { region, kind, unit });
            }
            Event::UnitClear { region, kind, unit } => {
                let pi = pool_at(region, kind);
                if let Some(next) = pools[pi].pending.pop_front() {
                    dispatch_unit(
                        &mut queue, &mut calls, &arrivals, next, region, kind, unit, now,
                    );
                } else {
                    pools[pi].units_busy[unit] = false;
                }
            }
        }
    }

    let stats = CallStats::from_records(&calls);
    let provenance = RunProvenance {
        engine: ENGINE_VERSION.to_string(),
        config_digest: config.digest().to_hex(),
        seed: config.seed,
        events_processed: queue.processed() + arrivals.len() as u64,
        calls_generated: calls.len() as u64,
    };
    SimOutput { calls, stats, provenance }
}

#[allow(clippy::too_many_arguments)]
fn dispatch_unit(
    queue: &mut EventQueue<Event>,
    calls: &mut [CallRecord],
    arrivals: &[ArrivalDraw],
    call: usize,
    region: usize,
    kind: ResponderKind,
    unit: usize,
    now: SimTime,
) {
    // itrust-lint: allow(panic-reachable) — agent and cell indices are bounded by the grid dims fixed at setup
    calls[call].responder_unit = Some(format!("{kind:?}-{region}-{unit}"));
    queue.schedule(now + arrivals[call].travel_ms, Event::UnitArrive { call, region, kind, unit });
}

fn sample_category(rng: &mut StdRng) -> CallCategory {
    let x: f64 = rng.gen();
    if x < 0.35 {
        CallCategory::Medical
    } else if x < 0.45 {
        CallCategory::Fire
    } else if x < 0.70 {
        CallCategory::Crime
    } else if x < 0.90 {
        CallCategory::Traffic
    } else {
        CallCategory::NonEmergency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    fn hour_run(seed: u64) -> SimOutput {
        let config = SimConfig::with_defaults(
            Topology::single_city(),
            ExternalTimeline::quiet(),
            3_600_000, // one hour
            seed,
        );
        run(&config)
    }

    #[test]
    fn generates_plausible_call_volume() {
        let out = hour_run(1);
        // Base rate 2/min over 60 min ≈ 120 calls.
        assert!(
            (80..=160).contains(&out.calls.len()),
            "got {} calls",
            out.calls.len()
        );
        assert_eq!(out.stats.total, out.calls.len());
        assert!(out.provenance.events_processed > 0);
    }

    #[test]
    fn identical_seed_reproduces_bitwise() {
        let a = hour_run(42);
        let b = hour_run(42);
        assert_eq!(a.calls, b.calls);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.provenance, b.provenance);
    }

    #[test]
    fn output_is_byte_identical_across_thread_counts() {
        let serial = itrust_par::with_threads(1, || hour_run(42));
        for threads in [2, 4] {
            let par = itrust_par::with_threads(threads, || hour_run(42));
            assert_eq!(
                serde_json::to_vec(&par).unwrap(),
                serde_json::to_vec(&serial).unwrap(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = hour_run(1);
        let b = hour_run(2);
        assert_ne!(a.calls, b.calls);
    }

    #[test]
    fn every_call_reaches_a_terminal_state() {
        let out = hour_run(7);
        for c in &out.calls {
            match c.outcome {
                CallOutcome::Completed => {
                    assert!(c.answered_ms.is_some());
                    assert!(c.dispatched.is_some());
                    assert!(c.on_scene_ms.is_some());
                    assert!(c.responder_unit.is_some());
                }
                CallOutcome::AnsweredNoDispatch => {
                    assert!(c.answered_ms.is_some());
                    assert_eq!(c.category, CallCategory::NonEmergency);
                    assert!(c.on_scene_ms.is_none());
                }
                CallOutcome::Abandoned => {
                    assert!(c.answered_ms.is_none());
                    assert!(c.on_scene_ms.is_none());
                }
            }
        }
    }

    #[test]
    fn timestamps_are_causally_ordered() {
        let out = hour_run(9);
        for c in &out.calls {
            if let Some(ans) = c.answered_ms {
                assert!(ans >= c.arrived_ms);
                if let Some(scene) = c.on_scene_ms {
                    assert!(scene > ans);
                }
            }
        }
    }

    #[test]
    fn surge_increases_volume_and_delay() {
        let duration = 3_600_000u64;
        let quiet = run(&SimConfig::with_defaults(
            Topology::single_city(),
            ExternalTimeline::quiet(),
            duration,
            5,
        ));
        let disaster = run(&SimConfig::with_defaults(
            Topology::single_city(),
            ExternalTimeline::disaster(duration),
            duration,
            5,
        ));
        assert!(
            disaster.calls.len() as f64 > quiet.calls.len() as f64 * 1.3,
            "disaster {} vs quiet {}",
            disaster.calls.len(),
            quiet.calls.len()
        );
        // Under surge, queueing appears: more abandonment or worse delays.
        assert!(
            disaster.stats.abandonment_rate() >= quiet.stats.abandonment_rate()
                || disaster.stats.p95_answer_delay_ms > quiet.stats.p95_answer_delay_ms,
            "disaster should stress the system: {:?} vs {:?}",
            disaster.stats,
            quiet.stats
        );
    }

    #[test]
    fn overflow_transfers_occur_in_congested_metro() {
        // Tiny PSAPs with low thresholds under a disaster surge.
        let mut topology = Topology::metro(3);
        for p in &mut topology.psaps {
            p.trunks = 1;
            p.overflow_threshold = 1;
        }
        let duration = 3_600_000;
        let out = run(&SimConfig::with_defaults(
            topology,
            ExternalTimeline::disaster(duration),
            duration,
            11,
        ));
        assert!(
            out.stats.transferred > 0,
            "expected overflow transfers, stats {:?}",
            out.stats
        );
    }

    #[test]
    fn category_mix_roughly_matches_weights() {
        let out = run(&SimConfig::with_defaults(
            Topology::single_city(),
            ExternalTimeline::quiet(),
            36_000_000, // 10 hours for volume
            13,
        ));
        let n = out.calls.len() as f64;
        let frac = |cat: CallCategory| {
            out.calls.iter().filter(|c| c.category == cat).count() as f64 / n
        };
        assert!((frac(CallCategory::Medical) - 0.35).abs() < 0.05);
        assert!((frac(CallCategory::NonEmergency) - 0.10).abs() < 0.04);
    }

    #[test]
    fn provenance_identifies_the_scenario() {
        let config = SimConfig::with_defaults(
            Topology::single_city(),
            ExternalTimeline::quiet(),
            600_000,
            21,
        );
        let out = run(&config);
        assert_eq!(out.provenance.engine, ENGINE_VERSION);
        assert_eq!(out.provenance.config_digest, config.digest().to_hex());
        assert_eq!(out.provenance.seed, 21);
        assert_eq!(out.provenance.calls_generated as usize, out.calls.len());
    }
}
