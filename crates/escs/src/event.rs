//! Deterministic discrete-event engine.
//!
//! A binary-heap future event list keyed by (time, sequence). The sequence
//! number makes simultaneous events fire in insertion order, which is what
//! makes whole simulation runs bit-reproducible from a seed — the property
//! the replay experiment (D1) depends on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in milliseconds.
pub type SimTime = u64;

/// An entry in the future event list.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future event list for events of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0, processed: 0 }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the past
    /// (events may be scheduled at the current instant).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time: at, seq, event });
    }

    /// Schedule `event` `delay` after now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now);
        self.now = s.time;
        self.processed += 1;
        Some((s.time, s.event))
    }

    /// Peek at the next event time without advancing.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        q.schedule_in(50, ());
        assert_eq!(q.peek_time(), Some(150));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(99, ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(100, "first");
        q.pop();
        q.schedule(100, "second");
        assert_eq!(q.pop(), Some((100, "second")));
    }

    #[test]
    fn interleaved_schedule_pop_is_deterministic() {
        // Two identical interleavings must produce identical sequences.
        fn run() -> Vec<(SimTime, u32)> {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(5, 1);
            q.schedule(5, 2);
            q.schedule(1, 0);
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
                if e == 0 {
                    q.schedule_in(4, 3); // lands at 5, after existing ties
                }
            }
            out
        }
        assert_eq!(run(), run());
        assert_eq!(run(), vec![(1, 0), (5, 1), (5, 2), (5, 3)]);
    }
}
