//! Call detail records — the data objects whose preservation Section 3.1
//! studies.
//!
//! The paper enumerates what "typical ESCS data currently involve": lists of
//! individual calls with "full or partial phone numbers, call
//! categorization, GPS coordinates, responder information, response times".
//! [`CallRecord`] carries exactly those fields, and is what the privacy
//! module redacts and the preservation module packages.

use crate::graph::{PsapId, RegionId, ResponderKind};
use serde::{Deserialize, Serialize};

/// Caller-reported incident category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallCategory {
    /// Medical emergency → EMS.
    Medical,
    /// Fire → fire service.
    Fire,
    /// Crime in progress → police.
    Crime,
    /// Traffic accident → police (with EMS in severe cases; simplified to
    /// police here).
    Traffic,
    /// Non-emergency / misdial: answered, not dispatched.
    NonEmergency,
}

impl CallCategory {
    /// Responder branch handling this category (None = no dispatch).
    pub fn responder(&self) -> Option<ResponderKind> {
        match self {
            CallCategory::Medical => Some(ResponderKind::Ems),
            CallCategory::Fire => Some(ResponderKind::Fire),
            CallCategory::Crime | CallCategory::Traffic => Some(ResponderKind::Police),
            CallCategory::NonEmergency => None,
        }
    }

    /// All categories.
    pub const ALL: [CallCategory; 5] = [
        CallCategory::Medical,
        CallCategory::Fire,
        CallCategory::Crime,
        CallCategory::Traffic,
        CallCategory::NonEmergency,
    ];
}

/// Terminal status of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallOutcome {
    /// Answered and (if applicable) dispatched to completion.
    Completed,
    /// Caller hung up before being answered.
    Abandoned,
    /// Answered; no dispatch required.
    AnsweredNoDispatch,
}

/// One call's complete detail record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallRecord {
    /// Sequential call id within the scenario.
    pub call_id: u64,
    /// Originating region.
    pub region: RegionId,
    /// PSAP that ultimately answered (after any overflow transfer).
    pub answered_by: Option<PsapId>,
    /// Whether the call overflowed from its primary PSAP.
    pub transferred: bool,
    /// Caller phone number (synthetic, NANP-formatted) — sensitive.
    pub caller_phone: String,
    /// Incident GPS (lat, lon) — sensitive at full precision.
    pub gps: (f64, f64),
    /// Category assigned by the call taker.
    pub category: CallCategory,
    /// Arrival time (ms).
    pub arrived_ms: u64,
    /// Answer time (ms), if answered.
    pub answered_ms: Option<u64>,
    /// Call-taker handling duration (ms), if answered.
    pub handling_ms: Option<u64>,
    /// Responder branch dispatched, if any.
    pub dispatched: Option<ResponderKind>,
    /// Responder unit identifier, if dispatched.
    pub responder_unit: Option<String>,
    /// On-scene arrival time (ms), if a unit arrived.
    pub on_scene_ms: Option<u64>,
    /// Terminal status.
    pub outcome: CallOutcome,
}

impl CallRecord {
    /// Answer delay (arrival → answer) in ms, if answered.
    pub fn answer_delay_ms(&self) -> Option<u64> {
        self.answered_ms.map(|a| a - self.arrived_ms)
    }

    /// Response time (arrival → on scene) in ms, if a unit arrived.
    pub fn response_time_ms(&self) -> Option<u64> {
        self.on_scene_ms.map(|o| o - self.arrived_ms)
    }

    /// Serialize to the line format used in preserved call logs.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parse from the preserved line format.
    pub fn from_json(s: &str) -> Option<CallRecord> {
        serde_json::from_str(s).ok()
    }

    /// A human-readable one-line summary used in DIP finding aids.
    pub fn summary(&self) -> String {
        format!(
            "call {} [{:?}] region {} at {}ms → {:?}",
            self.call_id, self.category, self.region.0, self.arrived_ms, self.outcome
        )
    }
}

/// Aggregate statistics over a batch of call records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallStats {
    /// Total calls.
    pub total: usize,
    /// Answered calls.
    pub answered: usize,
    /// Abandoned calls.
    pub abandoned: usize,
    /// Calls transferred by overflow.
    pub transferred: usize,
    /// Mean answer delay (ms) over answered calls.
    pub mean_answer_delay_ms: f64,
    /// 95th-percentile answer delay (ms).
    pub p95_answer_delay_ms: f64,
    /// Mean response time (ms) over dispatched-and-arrived calls.
    pub mean_response_time_ms: f64,
}

impl CallStats {
    /// Compute from a slice of records. Zero-valued stats for empty input.
    pub fn from_records(records: &[CallRecord]) -> CallStats {
        let answered: Vec<&CallRecord> =
            records.iter().filter(|r| r.answered_ms.is_some()).collect();
        let delays: Vec<f64> = answered
            .iter()
            .filter_map(|r| r.answer_delay_ms())
            .map(|d| d as f64)
            .collect();
        let responses: Vec<f64> = records
            .iter()
            .filter_map(|r| r.response_time_ms())
            .map(|d| d as f64)
            .collect();
        let delay_summary = crate::stats::summarize(&delays);
        CallStats {
            total: records.len(),
            answered: answered.len(),
            abandoned: records
                .iter()
                .filter(|r| r.outcome == CallOutcome::Abandoned)
                .count(),
            transferred: records.iter().filter(|r| r.transferred).count(),
            mean_answer_delay_ms: delay_summary.map_or(0.0, |s| s.mean),
            p95_answer_delay_ms: delay_summary.map_or(0.0, |s| s.p95),
            mean_response_time_ms: crate::stats::summarize(&responses).map_or(0.0, |s| s.mean),
        }
    }

    /// Abandonment rate in [0,1].
    pub fn abandonment_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.abandoned as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(id: u64) -> CallRecord {
        CallRecord {
            call_id: id,
            region: RegionId(0),
            answered_by: Some(PsapId(0)),
            transferred: false,
            caller_phone: "206-555-0147".into(),
            gps: (47.6062, -122.3321),
            category: CallCategory::Medical,
            arrived_ms: 1_000,
            answered_ms: Some(1_400),
            handling_ms: Some(90_000),
            dispatched: Some(ResponderKind::Ems),
            responder_unit: Some("EMS-0-1".into()),
            on_scene_ms: Some(400_000),
            outcome: CallOutcome::Completed,
        }
    }

    #[test]
    fn derived_times() {
        let r = sample(1);
        assert_eq!(r.answer_delay_ms(), Some(400));
        assert_eq!(r.response_time_ms(), Some(399_000));
        let mut abandoned = sample(2);
        abandoned.answered_ms = None;
        abandoned.on_scene_ms = None;
        abandoned.outcome = CallOutcome::Abandoned;
        assert_eq!(abandoned.answer_delay_ms(), None);
        assert_eq!(abandoned.response_time_ms(), None);
    }

    #[test]
    fn category_routing() {
        assert_eq!(CallCategory::Medical.responder(), Some(ResponderKind::Ems));
        assert_eq!(CallCategory::Fire.responder(), Some(ResponderKind::Fire));
        assert_eq!(CallCategory::Crime.responder(), Some(ResponderKind::Police));
        assert_eq!(CallCategory::Traffic.responder(), Some(ResponderKind::Police));
        assert_eq!(CallCategory::NonEmergency.responder(), None);
    }

    #[test]
    fn json_round_trip() {
        let r = sample(7);
        let line = r.to_json().unwrap();
        let back = CallRecord::from_json(&line).unwrap();
        assert_eq!(back, r);
        assert!(CallRecord::from_json("{broken").is_none());
    }

    #[test]
    fn stats_over_mixed_batch() {
        let mut records = vec![sample(0), sample(1), sample(2)];
        records[1].transferred = true;
        let mut ab = sample(3);
        ab.answered_ms = None;
        ab.on_scene_ms = None;
        ab.outcome = CallOutcome::Abandoned;
        records.push(ab);
        let stats = CallStats::from_records(&records);
        assert_eq!(stats.total, 4);
        assert_eq!(stats.answered, 3);
        assert_eq!(stats.abandoned, 1);
        assert_eq!(stats.transferred, 1);
        assert!((stats.abandonment_rate() - 0.25).abs() < 1e-12);
        assert!((stats.mean_answer_delay_ms - 400.0).abs() < 1e-9);
    }

    #[test]
    fn stats_empty_batch() {
        let stats = CallStats::from_records(&[]);
        assert_eq!(stats.total, 0);
        assert_eq!(stats.abandonment_rate(), 0.0);
        assert_eq!(stats.mean_answer_delay_ms, 0.0);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let s = sample(42).summary();
        assert!(s.contains("42") && s.contains("Medical") && s.contains("Completed"));
    }
}
