//! Random samplers for simulation workloads: exponential, Poisson, and
//! log-normal, built on `rand`'s uniform source (keeping the dependency
//! footprint to the whitelisted crates).

use rand::Rng;

/// Sample an exponential inter-arrival time with rate `lambda` (events per
/// unit time). Mean is `1/lambda`.
pub fn exponential<R: Rng>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / lambda
}

/// Sample a Poisson count with mean `lambda`. Knuth's product method for
/// small λ, normal approximation (rounded, clamped at 0) for large λ.
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let z = gaussian(rng);
        let v = lambda + lambda.sqrt() * z;
        if v < 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

/// Standard normal via Box–Muller.
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal sample with the given parameters of the underlying normal
/// (`mu`, `sigma`). Service/handling times are classically log-normal.
pub fn log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0);
    (mu + sigma * gaussian(rng)).exp()
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (by sorting a copy).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// Compute summary statistics. Returns `None` for an empty slice.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pct = |p: f64| {
        let idx = ((n as f64 - 1.0) * p).round() as usize;
        // itrust-lint: allow(panic-reachable) — percentile ranks are clamped to the sorted sample length
        sorted[idx]
    };
    Some(Summary {
        n,
        mean,
        std: var.sqrt(),
        min: sorted[0],
        max: sorted[n - 1],
        p50: pct(0.5),
        p95: pct(0.95),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.5, 2.0, 10.0] {
            let n = 20_000;
            let mean: f64 =
                (0..n).map(|_| exponential(&mut rng, lambda)).sum::<f64>() / n as f64;
            assert!(
                (mean - 1.0 / lambda).abs() < 0.05 / lambda + 0.01,
                "λ={lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 3.0) > 0.0);
        }
    }

    #[test]
    fn poisson_small_lambda_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let lambda = 4.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let s = summarize(&samples).unwrap();
        assert!((s.mean - lambda).abs() < 0.1, "mean {}", s.mean);
        // Poisson variance == mean.
        assert!((s.std * s.std - lambda).abs() < 0.3, "var {}", s.std * s.std);
    }

    #[test]
    fn poisson_large_lambda_normal_branch() {
        let mut rng = StdRng::seed_from_u64(4);
        let lambda = 200.0;
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, lambda) as f64).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let s = summarize(&samples).unwrap();
        assert!(s.mean.abs() < 0.02, "mean {}", s.mean);
        assert!((s.std - 1.0).abs() < 0.02, "std {}", s.std);
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mu, sigma) = (1.0, 0.5);
        let n = 30_000;
        let samples: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, mu, sigma)).collect();
        let s = summarize(&samples).unwrap();
        assert!((s.p50 - mu.exp()).abs() < 0.1, "median {}", s.p50);
        assert!(s.min > 0.0);
    }

    #[test]
    fn summarize_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.std - (2.0f64).sqrt()).abs() < 1e-12);
        assert!(summarize(&[]).is_none());
    }
}
