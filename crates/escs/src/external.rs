//! External event streams: the context the paper says is missing from ESCS
//! data.
//!
//! "What these datasets do not directly include are events and data that
//! are external to the call stream but are the reason for such calls
//! (traffic, weather, geopolitical events, and so on)." This module
//! generates such events and exposes their effect as time-varying call-rate
//! multipliers, so scenarios can model a storm or disaster surge — and so
//! the preserved record of a simulation can include the *causal* stream,
//! which is the study's point.

use serde::{Deserialize, Serialize};

/// Kind of external event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExternalKind {
    /// Severe weather (storm, flood).
    Weather,
    /// Major traffic incident.
    Traffic,
    /// Geopolitical / civil event (demonstration, emergency declaration).
    Geopolitical,
}

/// One external event with a time window and an intensity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternalEvent {
    /// Kind of event.
    pub kind: ExternalKind,
    /// Human-readable description.
    pub description: String,
    /// Start of effect (ms).
    pub start_ms: u64,
    /// End of effect (ms, exclusive).
    pub end_ms: u64,
    /// Multiplier applied to regional call rates while active (≥ 1.0 for
    /// surges; < 1.0 would model suppression, e.g. curfew).
    pub rate_multiplier: f64,
    /// Regions affected (empty = all).
    pub regions: Vec<usize>,
}

impl ExternalEvent {
    /// Whether the event affects `region` at `t_ms`.
    pub fn active(&self, t_ms: u64, region: usize) -> bool {
        t_ms >= self.start_ms
            && t_ms < self.end_ms
            && (self.regions.is_empty() || self.regions.contains(&region))
    }
}

/// A scenario's complete external context.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExternalTimeline {
    /// Events in no particular order.
    pub events: Vec<ExternalEvent>,
}

impl ExternalTimeline {
    /// No external events (baseline load).
    pub fn quiet() -> Self {
        Self::default()
    }

    /// Add an event (builder).
    pub fn with(mut self, event: ExternalEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Combined rate multiplier for `region` at `t_ms` (product of active
    /// events — concurrent stressors compound).
    pub fn multiplier(&self, t_ms: u64, region: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active(t_ms, region))
            .map(|e| e.rate_multiplier)
            .product()
    }

    /// A canonical "disaster surge" scenario: a storm tripling call volume
    /// across all regions for the middle third of `duration_ms`, plus a
    /// traffic pile-up doubling one region's rate briefly.
    pub fn disaster(duration_ms: u64) -> Self {
        ExternalTimeline::quiet()
            .with(ExternalEvent {
                kind: ExternalKind::Weather,
                description: "severe storm front".into(),
                start_ms: duration_ms / 3,
                end_ms: 2 * duration_ms / 3,
                rate_multiplier: 3.0,
                regions: Vec::new(),
            })
            .with(ExternalEvent {
                kind: ExternalKind::Traffic,
                description: "multi-vehicle pile-up, highway 9".into(),
                start_ms: duration_ms / 3,
                end_ms: duration_ms / 3 + duration_ms / 10,
                rate_multiplier: 2.0,
                regions: vec![0],
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_timeline_is_identity() {
        let t = ExternalTimeline::quiet();
        assert_eq!(t.multiplier(0, 0), 1.0);
        assert_eq!(t.multiplier(u64::MAX, 5), 1.0);
    }

    #[test]
    fn event_window_is_half_open() {
        let e = ExternalEvent {
            kind: ExternalKind::Weather,
            description: "storm".into(),
            start_ms: 100,
            end_ms: 200,
            rate_multiplier: 2.0,
            regions: Vec::new(),
        };
        assert!(!e.active(99, 0));
        assert!(e.active(100, 0));
        assert!(e.active(199, 0));
        assert!(!e.active(200, 0));
    }

    #[test]
    fn region_scoping() {
        let e = ExternalEvent {
            kind: ExternalKind::Traffic,
            description: "pile-up".into(),
            start_ms: 0,
            end_ms: 100,
            rate_multiplier: 2.0,
            regions: vec![1, 3],
        };
        assert!(!e.active(50, 0));
        assert!(e.active(50, 1));
        assert!(e.active(50, 3));
    }

    #[test]
    fn concurrent_events_compound() {
        let t = ExternalTimeline::disaster(900);
        // Middle third (300..600): storm ×3 everywhere; region 0 also has
        // the pile-up ×2 during 300..390.
        assert!((t.multiplier(350, 0) - 6.0).abs() < 1e-12);
        assert!((t.multiplier(350, 1) - 3.0).abs() < 1e-12);
        assert!((t.multiplier(500, 0) - 3.0).abs() < 1e-12);
        assert!((t.multiplier(100, 0) - 1.0).abs() < 1e-12);
        assert!((t.multiplier(700, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let t = ExternalTimeline::disaster(1_000);
        let json = serde_json::to_string(&t).unwrap();
        let back: ExternalTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
