//! Property-based tests over ESCS privacy, statistics, and replay
//! machinery.

use escs::call::{CallCategory, CallOutcome, CallRecord};
use escs::graph::{PsapId, RegionId};
use escs::privacy::{verify_no_leakage, GpsPolicy, PhonePolicy, PrivacyProfile};
use escs::replay::divergence;
use escs::stats::summarize;
use proptest::prelude::*;

fn arb_call() -> impl Strategy<Value = CallRecord> {
    (
        any::<u64>(),
        0usize..4,
        200u32..999,
        0u32..9999,
        -90.0f64..90.0,
        -180.0f64..180.0,
        0u64..1_000_000,
        proptest::option::of(0u64..100_000),
    )
        .prop_map(|(id, region, area, number, lat, lon, arrived, delay)| CallRecord {
            call_id: id,
            region: RegionId(region),
            answered_by: delay.map(|_| PsapId(region % 3)),
            transferred: id % 7 == 0,
            caller_phone: format!("{area}-555-{number:04}"),
            gps: (lat, lon),
            category: CallCategory::ALL[(id % 5) as usize],
            arrived_ms: arrived,
            answered_ms: delay.map(|d| arrived + d),
            handling_ms: delay.map(|d| d + 1),
            dispatched: None,
            responder_unit: None,
            on_scene_ms: None,
            outcome: if delay.is_some() {
                CallOutcome::AnsweredNoDispatch
            } else {
                CallOutcome::Abandoned
            },
        })
}

proptest! {
    /// The research-default profile never leaks, for arbitrary records.
    #[test]
    fn research_profile_never_leaks(calls in proptest::collection::vec(arb_call(), 0..30)) {
        let profile = PrivacyProfile::research_default();
        let sanitized = profile.apply_batch(&calls);
        prop_assert!(verify_no_leakage(&profile, &sanitized).is_ok());
        // Sanitization preserves record count and non-sensitive fields.
        prop_assert_eq!(sanitized.len(), calls.len());
        for (a, b) in calls.iter().zip(&sanitized) {
            prop_assert_eq!(a.call_id, b.call_id);
            prop_assert_eq!(a.arrived_ms, b.arrived_ms);
            prop_assert_eq!(a.outcome, b.outcome);
        }
    }

    /// Sanitization is idempotent: applying the profile twice equals once.
    #[test]
    fn sanitization_idempotent(calls in proptest::collection::vec(arb_call(), 0..20)) {
        let profile = PrivacyProfile {
            phone: PhonePolicy::MaskSubscriber,
            gps: GpsPolicy::Coarsen { cell_deg: 0.01 },
        };
        let once = profile.apply_batch(&calls);
        let twice = profile.apply_batch(&once);
        prop_assert_eq!(once, twice);
    }

    /// Call-record JSON round trip is lossless.
    #[test]
    fn call_record_json_round_trip(call in arb_call()) {
        let json = call.to_json().unwrap();
        let back = CallRecord::from_json(&json).unwrap();
        prop_assert_eq!(back, call);
    }

    /// Divergence is a premetric: d(a,a) = 0, symmetric, and counts
    /// length mismatches.
    #[test]
    fn divergence_premetric(a in proptest::collection::vec(arb_call(), 0..15),
                            b in proptest::collection::vec(arb_call(), 0..15)) {
        prop_assert_eq!(divergence(&a, &a), 0);
        prop_assert_eq!(divergence(&a, &b), divergence(&b, &a));
        prop_assert!(divergence(&a, &b) >= a.len().abs_diff(b.len()));
    }

    /// Summary statistics respect ordering: min ≤ p50 ≤ p95 ≤ max, and the
    /// mean lies within [min, max].
    #[test]
    fn summary_ordering(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = summarize(&values).unwrap();
        prop_assert!(s.min <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.n, values.len());
    }

    /// Metro topologies of any size validate; any dangling overflow edge is
    /// caught.
    #[test]
    fn topology_validation(n in 1usize..20, broken in any::<bool>()) {
        use escs::graph::Topology;
        let mut t = Topology::metro(n);
        if broken {
            t.psaps[0].overflow_to = Some(escs::graph::PsapId(n + 5));
            prop_assert!(!t.validate().is_empty());
        } else {
            prop_assert!(t.validate().is_empty());
        }
    }
}
