//! # neural — from-scratch machine-learning substrate
//!
//! Section 2 of the paper surveys the AI toolbox the I Trust AI studies draw
//! on: deep learning (CNNs for grid-like data, with VGG/EAST/YOLO as the
//! concrete architectures of Figure 1), classical ML, and the supervision
//! spectrum (supervised, semi-supervised self-/co-training, unsupervised
//! clustering). This crate implements that toolbox with **no external ML
//! dependencies** — tensors, layers, optimizers, losses, classical models,
//! semi-supervised meta-learners, and evaluation metrics are all built here
//! and unit-tested against analytically known results.
//!
//! Scope is deliberately "laptop-trainable": dense/conv networks of a few
//! tens of thousands of parameters, which is sufficient to reproduce the
//! *behavioral shape* of the paper's pipelines on synthetic corpora (see
//! the `perganet` crate).
//!
//! ## Layout
//!
//! * [`tensor`] — row-major `f32` n-d arrays with the linear algebra the
//!   layers need.
//! * [`layers`] — `Dense`, `Conv2d`, `MaxPool2d`, activations, `Dropout`.
//! * [`net`] — [`net::Sequential`] container wiring layers together.
//! * [`loss`] — softmax cross-entropy and MSE, with fused backward.
//! * [`optim`] — SGD with momentum, Adam.
//! * [`classical`] — naive Bayes (Gaussian & multinomial), logistic
//!   regression, k-means, decision tree.
//! * [`semi`] — self-training and co-training wrappers (the paper's §2
//!   semi-supervised paradigms).
//! * [`sequence`] — Elman RNN (truncated BPTT) and single-head
//!   self-attention, the §2 architecture families beyond CNNs.
//! * [`metrics`] — accuracy, precision/recall/F1, confusion matrix, IoU,
//!   average precision.
//! * [`data`] — dataset shuffling, splitting, batching, one-hot encoding.

pub mod classical;
pub mod data;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod net;
pub mod optim;
pub mod semi;
pub mod sequence;
pub mod tensor;

pub use tensor::Tensor;
