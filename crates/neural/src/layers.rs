//! Neural network layers with explicit forward/backward passes.
//!
//! Every layer caches whatever it needs during `forward` to compute exact
//! gradients in `backward` (reverse-mode, hand-derived). Gradient
//! correctness is validated against central finite differences in the
//! tests at the bottom of this module — the single most important test in
//! the crate, since every downstream model depends on it.

use crate::tensor::Tensor;
use rand::Rng;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wrap an initial value with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Reset the gradient to zero (called by the trainer between steps).
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// A differentiable layer.
pub trait Layer: Send {
    /// Compute the output for `input`. `train` toggles train-time behaviour
    /// (dropout masks). Implementations cache activations for `backward`.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Given ∂L/∂output, accumulate parameter gradients and return
    /// ∂L/∂input. Must be called after a matching `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to this layer's parameters (empty for stateless
    /// layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Parameter count (for model summaries / paradata).
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }
}

/// Fully connected layer: `y = xW + b`, `x: [batch, in]`, `W: [in, out]`.
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// He-initialized dense layer.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Dense {
            weight: Param::new(Tensor::randn(&[in_features, out_features], in_features, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Construct from explicit weights (tests, serialization).
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.ndim(), 2);
        assert_eq!(bias.ndim(), 1);
        // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
        assert_eq!(weight.shape()[1], bias.len());
        Dense { weight: Param::new(weight), bias: Param::new(bias), cached_input: None }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
        self.weight.value.shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
        self.weight.value.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.matmul(&self.weight.value).add_row_bias(&self.bias.value);
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // itrust-lint: allow(panic-reachable) — Layer contract: backward follows a forward in the same training step
        let x = self.cached_input.as_ref().expect("backward before forward");
        // dW += x^T g ; db += Σ_rows g ; dx = g W^T
        let dw = x.transpose2().matmul(grad_out);
        self.weight.grad.axpy(1.0, &dw);
        self.bias.grad.axpy(1.0, &grad_out.sum_rows());
        grad_out.matmul(&self.weight.value.transpose2())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // itrust-lint: allow(panic-reachable) — Layer contract: backward follows a forward in the same training step
        let mask = self.mask.as_ref().expect("backward before forward");
        let data = grad_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape(), data)
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Logistic sigmoid (used by the YoloLite objectness head).
#[derive(Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// New sigmoid.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // itrust-lint: allow(panic-reachable) — Layer contract: backward follows a forward in the same training step
        let y = self.cached_output.as_ref().expect("backward before forward");
        grad_out.zip(y, |g, y| g * y * (1.0 - y))
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

/// Hyperbolic tangent.
#[derive(Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// New tanh.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(|v| v.tanh());
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // itrust-lint: allow(panic-reachable) — Layer contract: backward follows a forward in the same training step
        let y = self.cached_output.as_ref().expect("backward before forward");
        grad_out.zip(y, |g, y| g * (1.0 - y * y))
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

/// Reference direct convolution — the pre-blocked implementation, retained
/// as the oracle for the serial-equivalence and property tests. Accumulates
/// over `(ic, ky, kx)` ascending starting from the bias, skipping
/// out-of-bounds (padding) taps.
pub fn conv2d_forward_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    kernel: usize,
    padding: usize,
) -> Tensor {
    // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
    let [n, in_c, h, w] = [input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]];
    let out_c = weight.shape()[0];
    let k = kernel;
    let p = padding as isize;
    let (oh, ow) = (h + 2 * padding + 1 - k, w + 2 * padding + 1 - k);
    let mut out = Tensor::zeros(&[n, out_c, oh, ow]);
    for b in 0..n {
        for oc in 0..out_c {
            let bias_v = bias.data()[oc];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias_v;
                    for ic in 0..in_c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - p;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at4(b, ic, iy as usize, ix as usize)
                                    * weight.at4(oc, ic, ky, kx);
                            }
                        }
                    }
                    *out.at4_mut(b, oc, oy, ox) = acc;
                }
            }
        }
    }
    out
}

/// Reference direct backward pass; returns `(grad_in, grad_weight,
/// grad_bias)` as fresh tensors (the `Layer` impl accumulates, so compare
/// against grads that started from zero).
pub fn conv2d_backward_naive(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    kernel: usize,
    padding: usize,
) -> (Tensor, Tensor, Tensor) {
    // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
    let [n, in_c, h, w] = [input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]];
    let out_c = weight.shape()[0];
    let k = kernel;
    let p = padding as isize;
    let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
    let mut grad_in = Tensor::zeros(input.shape());
    let mut grad_w = Tensor::zeros(weight.shape());
    let mut grad_b = Tensor::zeros(&[out_c]);
    for b in 0..n {
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.at4(b, oc, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    grad_b.data_mut()[oc] += g;
                    for ic in 0..in_c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - p;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let x = input.at4(b, ic, iy as usize, ix as usize);
                                *grad_w.at4_mut(oc, ic, ky, kx) += g * x;
                                *grad_in.at4_mut(b, ic, iy as usize, ix as usize) +=
                                    g * weight.at4(oc, ic, ky, kx);
                            }
                        }
                    }
                }
            }
        }
    }
    (grad_in, grad_w, grad_b)
}

/// Transposed im2col for one batch item: a `[in_c·k·k, oh·ow]` row-major
/// matrix whose row `kk = (ic·k + ky)·k + kx` holds the input tap for every
/// output position (zero where the tap falls in the padding). Keeping `kk`
/// as the row index makes each output row a dot of a weight row with
/// contiguous patch rows, and makes the `kk`-ascending accumulation order
/// explicit — that order is what lets the blocked forward match the naive
/// one bit-for-bit.
/// The matrix is written into `patch`, a scratch buffer recycled across
/// forward calls: it is cleared and re-zeroed to the exact length first, so
/// the contents are bit-identical to a freshly allocated buffer.
fn im2col_t_into(
    input: &Tensor,
    b: usize,
    kernel: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    patch: &mut Vec<f32>,
) {
    // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
    let [in_c, h, w] = [input.shape()[1], input.shape()[2], input.shape()[3]];
    let p = padding as isize;
    let ohw = oh * ow;
    let data = input.data();
    patch.clear();
    patch.resize(in_c * kernel * kernel * ohw, 0.0);
    let mut kk = 0;
    for ic in 0..in_c {
        for ky in 0..kernel {
            for kx in 0..kernel {
                let dst = &mut patch[kk * ohw..(kk + 1) * ohw];
                // ox bounds keeping ix = ox + kx - p inside [0, w).
                let ox_lo = (p - kx as isize).max(0) as usize;
                let ox_hi = (w as isize + p - kx as isize).clamp(0, ow as isize) as usize;
                for oy in 0..oh {
                    let iy = oy as isize + ky as isize - p;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src = ((b * in_c + ic) * h + iy as usize) * w;
                    for ox in ox_lo..ox_hi {
                        let ix = (ox as isize + kx as isize - p) as usize;
                        dst[oy * ow + ox] = data[src + ix];
                    }
                }
                kk += 1;
            }
        }
    }
}

/// Forward-pass state kept for `backward`.
struct ConvCache {
    input_shape: Vec<usize>,
    /// Per-item transposed im2col matrices (see [`im2col_t`]).
    patches: Vec<Vec<f32>>,
    oh: usize,
    ow: usize,
}

/// 2-D convolution over `[N, C, H, W]` inputs, square kernel, stride 1,
/// symmetric zero padding. Blocked im2col implementation parallelized over
/// `itrust_par`: each batch item's patch matrix is built independently, and
/// each `(item, out-channel)` output row is a dot of a weight row with the
/// patch rows. Accumulation runs `kk`-ascending from the bias, so forward
/// outputs equal the retained [`conv2d_forward_naive`] under `f32` equality
/// and are bit-identical for every thread count (padding taps contribute
/// exact `±0.0` adds, which cannot change a sum). Backward computes per-item
/// gradient partials in parallel and merges them serially in batch order —
/// bit-stable across thread counts, within rounding of the naive reference
/// (per-item merge reassociates the cross-batch sum).
pub struct Conv2d {
    /// Weights `[out_c, in_c, k, k]`.
    weight: Param,
    /// Bias `[out_c]`.
    bias: Param,
    kernel: usize,
    padding: usize,
    cache: Option<ConvCache>,
    /// Retired patch buffers, recycled by the next forward to avoid
    /// re-allocating `[kk_total, oh·ow]` matrices every call.
    patch_pool: Vec<Vec<f32>>,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(Tensor::randn(
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            kernel,
            padding,
            cache: None,
            patch_pool: Vec::new(),
        }
    }

    /// Output spatial size for an input of `h × w`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 2 * self.padding + 1 - self.kernel, w + 2 * self.padding + 1 - self.kernel)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 4, "Conv2d expects [N,C,H,W]");
        // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
        let [n, in_c, h, w] = [input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]];
        let out_c = self.weight.value.shape()[0];
        assert_eq!(self.weight.value.shape()[1], in_c, "channel mismatch");
        let (oh, ow) = self.out_size(h, w);
        let ohw = oh * ow;
        let kk_total = in_c * self.kernel * self.kernel;
        let (kernel, padding) = (self.kernel, self.padding);
        // Recycle the previous forward's patch buffers: each worker grabs
        // any retired buffer (the pool is value-agnostic — buffers are
        // re-zeroed to exact length, so outputs are bit-identical whichever
        // buffer an item gets).
        if let Some(cache) = self.cache.take() {
            let mut retired = cache.patches;
            self.patch_pool.append(&mut retired);
        }
        let pool = std::sync::Mutex::new(std::mem::take(&mut self.patch_pool));
        let patches: Vec<Vec<f32>> = itrust_par::par_map_indices(n, |b| {
            // itrust-lint: allow(panic-reachable) — a poisoned pool means a worker already panicked; re-panicking just propagates it
            let mut buf = pool.lock().expect("patch pool poisoned").pop().unwrap_or_default();
            im2col_t_into(input, b, kernel, padding, oh, ow, &mut buf);
            buf
        });
        // itrust-lint: allow(panic-reachable) — a poisoned pool means a worker already panicked; re-panicking just propagates it
        self.patch_pool = pool.into_inner().expect("patch pool poisoned");
        let wdata = self.weight.value.data();
        let bdata = self.bias.value.data();
        let rows: Vec<Vec<f32>> = itrust_par::par_map_indices(n * out_c, |i| {
            let (b, oc) = (i / out_c, i % out_c);
            let patch = &patches[b];
            let mut row = vec![bdata[oc]; ohw];
            for (kk, &wv) in wdata[oc * kk_total..(oc + 1) * kk_total].iter().enumerate() {
                // A zero weight contributes exact ±0.0 to every position —
                // skipping it cannot change any sum.
                if wv == 0.0 {
                    continue;
                }
                for (o, &x) in row.iter_mut().zip(&patch[kk * ohw..(kk + 1) * ohw]) {
                    *o += wv * x;
                }
            }
            row
        });
        let mut out = Vec::with_capacity(n * out_c * ohw);
        for r in &rows {
            out.extend_from_slice(r);
        }
        self.cache = Some(ConvCache { input_shape: input.shape().to_vec(), patches, oh, ow });
        Tensor::from_vec(&[n, out_c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // itrust-lint: allow(panic-reachable) — Layer contract: backward follows a forward in the same training step
        let cache = self.cache.as_ref().expect("backward before forward");
        let [n, in_c, h, w] = [
            // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
            cache.input_shape[0],
            cache.input_shape[1],
            cache.input_shape[2],
            cache.input_shape[3],
        ];
        let out_c = self.weight.value.shape()[0];
        let (oh, ow) = (cache.oh, cache.ow);
        assert_eq!(grad_out.shape(), &[n, out_c, oh, ow], "grad_out shape mismatch");
        let ohw = oh * ow;
        let kk_total = in_c * self.kernel * self.kernel;
        let (kernel, padding) = (self.kernel, self.padding);
        let go = grad_out.data();
        let wdata = self.weight.value.data();
        // Per-item partials (dW, db, dx) computed independently; each is a
        // pure function of that item's patch matrix and gradient slice.
        let parts: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = itrust_par::par_map_indices(n, |b| {
            let patch = &cache.patches[b];
            let mut dw = vec![0.0f32; out_c * kk_total];
            let mut db = vec![0.0f32; out_c];
            let mut dpatch = vec![0.0f32; kk_total * ohw];
            for oc in 0..out_c {
                let g = &go[(b * out_c + oc) * ohw..(b * out_c + oc + 1) * ohw];
                let mut s = 0.0f32;
                for &gv in g {
                    s += gv;
                }
                db[oc] = s;
                for kk in 0..kk_total {
                    let prow = &patch[kk * ohw..(kk + 1) * ohw];
                    let mut acc = 0.0f32;
                    for (&gv, &pv) in g.iter().zip(prow) {
                        acc += gv * pv;
                    }
                    dw[oc * kk_total + kk] = acc;
                    let wv = wdata[oc * kk_total + kk];
                    if wv == 0.0 {
                        continue;
                    }
                    for (d, &gv) in dpatch[kk * ohw..(kk + 1) * ohw].iter_mut().zip(g) {
                        *d += wv * gv;
                    }
                }
            }
            // col2im: scatter ∂L/∂patch back onto the overlapping input taps.
            let mut dx = vec![0.0f32; in_c * h * w];
            let p = padding as isize;
            let mut kk = 0;
            for ic in 0..in_c {
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let src = &dpatch[kk * ohw..(kk + 1) * ohw];
                        let ox_lo = (p - kx as isize).max(0) as usize;
                        let ox_hi = (w as isize + p - kx as isize).clamp(0, ow as isize) as usize;
                        for oy in 0..oh {
                            let iy = oy as isize + ky as isize - p;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst = (ic * h + iy as usize) * w;
                            for ox in ox_lo..ox_hi {
                                let ix = (ox as isize + kx as isize - p) as usize;
                                dx[dst + ix] += src[oy * ow + ox];
                            }
                        }
                        kk += 1;
                    }
                }
            }
            (dw, db, dx)
        });
        // Serial merge in batch order: f32 addition is non-associative, so
        // the merge order must be fixed for thread-count invariance.
        let wg = self.weight.grad.data_mut();
        for (dw, _, _) in &parts {
            for (a, &v) in wg.iter_mut().zip(dw) {
                *a += v;
            }
        }
        let bg = self.bias.grad.data_mut();
        for (_, db, _) in &parts {
            for (a, &v) in bg.iter_mut().zip(db) {
                *a += v;
            }
        }
        let mut gi = Vec::with_capacity(n * in_c * h * w);
        for (_, _, dx) in &parts {
            gi.extend_from_slice(dx);
        }
        Tensor::from_vec(&cache.input_shape, gi)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

/// 2×2 max pooling with stride 2 over `[N, C, H, W]`. Odd trailing
/// rows/columns are dropped (floor semantics).
#[derive(Default)]
pub struct MaxPool2d {
    /// Flat input index of each selected maximum, per output element.
    argmax: Option<Vec<usize>>,
    input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// New 2×2/stride-2 max pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 4);
        // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
        let [n, c, h, w] = [input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]];
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let mut oi = 0;
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let v = input.at4(b, ch, iy, ix);
                                if v > best {
                                    best = v;
                                    best_idx = ((b * c + ch) * h + iy) * w + ix;
                                }
                            }
                        }
                        *out.at4_mut(b, ch, oy, ox) = best;
                        argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.input_shape = input.shape().to_vec();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // itrust-lint: allow(panic-reachable) — Layer contract: backward follows a forward in the same training step
        let argmax = self.argmax.as_ref().expect("backward before forward");
        let mut grad_in = Tensor::zeros(&self.input_shape);
        for (g, &idx) in grad_out.data().iter().zip(argmax) {
            // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
            grad_in.data_mut()[idx] += g;
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Flatten `[N, C, H, W] → [N, C·H·W]`.
#[derive(Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.input_shape = input.shape().to_vec();
        // itrust-lint: allow(panic-reachable) — kernel loops run over dims the shape contract at entry already validated
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.input_shape)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// Inverted dropout: active only when `train == true`; scales kept units by
/// `1/(1-rate)` so evaluation needs no rescaling.
pub struct Dropout {
    rate: f32,
    mask: Option<Vec<f32>>,
    rng: rand::rngs::StdRng,
}

impl Dropout {
    /// `rate` in `[0, 1)`: fraction of units dropped at train time.
    pub fn new(rate: f32, seed: u64) -> Self {
        use rand::SeedableRng;
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
        Dropout { rate, mask: None, rng: rand::rngs::StdRng::seed_from_u64(seed) }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.rate == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.rate;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| if self.rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let data = input.data().iter().zip(&mask).map(|(&v, &m)| v * m).collect();
        self.mask = Some(mask);
        Tensor::from_vec(input.shape(), data)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                let data = grad_out.data().iter().zip(mask).map(|(&g, &m)| g * m).collect();
                Tensor::from_vec(grad_out.shape(), data)
            }
        }
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_known_values() {
        let w = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let mut layer = Dense::from_parts(w, b);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[4.5, 5.5]);
        assert_eq!(layer.in_features(), 2);
        assert_eq!(layer.out_features(), 2);
    }

    #[test]
    fn relu_clamps_and_gates_gradient() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = relu.backward(&Tensor::full(&[1, 4], 1.0));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[1, 3], vec![-10.0, 0.0, 10.0]);
        let y = s.forward(&x, false);
        assert!(y.data()[0] < 0.001);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 0.999);
        let g = s.backward(&Tensor::full(&[1, 3], 1.0));
        // σ'(0) = 0.25
        assert!((g.data()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn maxpool_selects_max_and_routes_gradient() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let mut pool = MaxPool2d::new();
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[5.0]);
        let g = pool.backward(&Tensor::full(&[1, 1, 1, 1], 7.0));
        assert_eq!(g.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let mut pool = MaxPool2d::new();
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn flatten_round_trip() {
        let x = Tensor::from_vec(&[2, 1, 2, 2], (0..8).map(|v| v as f32).collect());
        let mut f = Flatten::new();
        let y = f.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn conv_recycled_patch_buffers_are_byte_identical() {
        // The second and later forward calls reuse retired patch buffers;
        // outputs must be bit-identical to the first (fresh-allocation)
        // call and to the naive reference, whatever buffer each item gets.
        let mut rng = StdRng::seed_from_u64(11);
        let mut conv = Conv2d::new(3, 4, 3, 1, &mut rng);
        let x = Tensor::randn(&[4, 3, 9, 9], 27, &mut rng);
        let first = conv.forward(&x, true);
        let naive = conv2d_forward_naive(&x, &conv.weight.value, &conv.bias.value, 3, 1);
        assert_eq!(first.data(), naive.data(), "blocked forward must match naive");
        for round in 0..3 {
            let again = conv.forward(&x, true);
            assert_eq!(
                first.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                again.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "recycled-buffer forward diverged on round {round}"
            );
        }
        // A different input shape forces re-zeroed buffers of a new length.
        let y = Tensor::randn(&[2, 3, 5, 5], 27, &mut rng);
        let small = conv.forward(&y, true);
        let small_naive = conv2d_forward_naive(&y, &conv.weight.value, &conv.bias.value, 3, 1);
        assert_eq!(small.data(), small_naive.data());
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng);
        // Set kernel to the delta function, bias 0.
        {
            let params = conv.params_mut();
            let [w, b] = <[_; 2]>::try_from(params).ok().unwrap();
            w.value.data_mut().fill(0.0);
            *w.value.at4_mut(0, 0, 1, 1) = 1.0;
            b.value.data_mut().fill(0.0);
        }
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), x.shape());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_known_sum_kernel() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 2, 0, &mut rng);
        {
            let params = conv.params_mut();
            let [w, b] = <[_; 2]>::try_from(params).ok().unwrap();
            w.value.data_mut().fill(1.0);
            b.value.data_mut().fill(0.5);
        }
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[10.5]);
    }

    #[test]
    fn dropout_eval_is_identity_train_scales() {
        let x = Tensor::full(&[1, 1000], 1.0);
        let mut d = Dropout::new(0.5, 42);
        let eval = d.forward(&x, false);
        assert_eq!(eval.data(), x.data());
        let train = d.forward(&x, true);
        // Kept units are scaled to 2.0; expectation of the mean stays ≈ 1.
        let mean = train.mean();
        assert!((mean - 1.0).abs() < 0.1, "dropout mean {mean}");
        let kept = train.data().iter().filter(|&&v| v != 0.0).count();
        assert!((400..600).contains(&kept));
    }

    /// Central-difference gradient check for a Dense layer, the backbone
    /// correctness test for the whole training stack.
    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng);
        // Scalar loss: sum of outputs (so dL/dy = 1 everywhere).
        let loss = |layer: &mut Dense, x: &Tensor| layer.forward(x, false).sum();

        let _ = layer.forward(&x, false);
        let ones = Tensor::full(&[4, 2], 1.0);
        let grad_in = layer.backward(&ones);

        let eps = 1e-3;
        // Check weight gradients.
        for idx in 0..6 {
            let analytic = layer.params_mut()[0].grad.data()[idx];
            layer.params_mut()[0].value.data_mut()[idx] += eps;
            let up = loss(&mut layer, &x);
            layer.params_mut()[0].value.data_mut()[idx] -= 2.0 * eps;
            let down = loss(&mut layer, &x);
            layer.params_mut()[0].value.data_mut()[idx] += eps;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "weight[{idx}] analytic {analytic} vs numeric {numeric}"
            );
        }
        // Check input gradients.
        let mut x_pert = x.clone();
        for idx in 0..x.len() {
            x_pert.data_mut()[idx] += eps;
            let up = loss(&mut layer, &x_pert);
            x_pert.data_mut()[idx] -= 2.0 * eps;
            let down = loss(&mut layer, &x_pert);
            x_pert.data_mut()[idx] += eps;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grad_in.data()[idx];
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "input[{idx}] analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    /// Finite-difference check for Conv2d weights — exercises padding.
    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut conv = Conv2d::new(2, 2, 3, 1, &mut rng);
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let loss = |conv: &mut Conv2d, x: &Tensor| conv.forward(x, false).sum();

        let out = conv.forward(&x, false);
        let ones = Tensor::full(out.shape(), 1.0);
        let grad_in = conv.backward(&ones);

        let eps = 1e-2;
        let n_weights = conv.params_mut()[0].value.len();
        for idx in (0..n_weights).step_by(7) {
            let analytic = conv.params_mut()[0].grad.data()[idx];
            conv.params_mut()[0].value.data_mut()[idx] += eps;
            let up = loss(&mut conv, &x);
            conv.params_mut()[0].value.data_mut()[idx] -= 2.0 * eps;
            let down = loss(&mut conv, &x);
            conv.params_mut()[0].value.data_mut()[idx] += eps;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 0.05,
                "conv weight[{idx}] analytic {analytic} vs numeric {numeric}"
            );
        }
        let mut x_pert = x.clone();
        for idx in (0..x.len()).step_by(5) {
            x_pert.data_mut()[idx] += eps;
            let up = loss(&mut conv, &x_pert);
            x_pert.data_mut()[idx] -= 2.0 * eps;
            let down = loss(&mut conv, &x_pert);
            x_pert.data_mut()[idx] += eps;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grad_in.data()[idx];
            assert!(
                (analytic - numeric).abs() < 0.05,
                "conv input[{idx}] analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    /// The blocked forward must equal the retained naive reference under
    /// `f32` equality — the accumulation order is identical by construction.
    #[test]
    fn conv_blocked_forward_matches_naive_exactly() {
        let mut rng = StdRng::seed_from_u64(77);
        for &(in_c, out_c, k, pad, h, w, n) in
            &[(1, 1, 1, 0, 3, 3, 1), (2, 3, 3, 1, 5, 4, 2), (3, 2, 2, 0, 4, 6, 3), (1, 4, 5, 2, 7, 7, 2)]
        {
            let mut conv = Conv2d::new(in_c, out_c, k, pad, &mut rng);
            let x = Tensor::rand_uniform(&[n, in_c, h, w], -1.0, 1.0, &mut rng);
            let got = conv.forward(&x, false);
            let (wt, bt) = {
                let params = conv.params_mut();
                (params[0].value.clone(), params[1].value.clone())
            };
            let want = conv2d_forward_naive(&x, &wt, &bt, k, pad);
            assert_eq!(got.shape(), want.shape());
            for (i, (a, b)) in got.data().iter().zip(want.data()).enumerate() {
                assert!(a == b, "shape {in_c}x{out_c} k{k} p{pad}: elem {i}: {a} != {b}");
            }
        }
    }

    /// Backward merges per-item partials, which reassociates the cross-batch
    /// sum — equal to the naive reference within rounding.
    #[test]
    fn conv_blocked_backward_matches_naive_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(78);
        let (in_c, out_c, k, pad) = (2, 3, 3, 1);
        let mut conv = Conv2d::new(in_c, out_c, k, pad, &mut rng);
        let x = Tensor::rand_uniform(&[3, in_c, 5, 5], -1.0, 1.0, &mut rng);
        let y = conv.forward(&x, false);
        let g = Tensor::rand_uniform(y.shape(), -1.0, 1.0, &mut rng);
        let grad_in = conv.backward(&g);
        let weight = conv.params_mut()[0].value.clone();
        let (want_in, want_w, want_b) = conv2d_backward_naive(&x, &weight, &g, k, pad);
        let close = |a: &[f32], b: &[f32], what: &str| {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert!((x - y).abs() < 1e-4, "{what}[{i}]: {x} vs {y}");
            }
        };
        close(grad_in.data(), want_in.data(), "grad_in");
        close(conv.params_mut()[0].grad.data(), want_w.data(), "grad_w");
        close(conv.params_mut()[1].grad.data(), want_b.data(), "grad_b");
    }

    /// Forward and backward outputs must be bit-identical for every thread
    /// count — the substrate's core guarantee on this hot path.
    #[test]
    fn conv_forward_backward_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            itrust_par::with_threads(threads, || {
                let mut rng = StdRng::seed_from_u64(79);
                let mut conv = Conv2d::new(2, 4, 3, 1, &mut rng);
                let x = Tensor::rand_uniform(&[3, 2, 6, 6], -1.0, 1.0, &mut rng);
                let y = conv.forward(&x, false);
                let g = Tensor::rand_uniform(y.shape(), -1.0, 1.0, &mut rng);
                let gi = conv.backward(&g);
                let (wg, bg) = {
                    let params = conv.params_mut();
                    (params[0].grad.clone(), params[1].grad.clone())
                };
                let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
                (bits(&y), bits(&gi), bits(&wg), bits(&bg))
            })
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn param_count_reports_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(10, 5, &mut rng);
        assert_eq!(d.param_count(), 55);
        let mut c = Conv2d::new(3, 8, 3, 1, &mut rng);
        assert_eq!(c.param_count(), 8 * 3 * 9 + 8);
    }
}
