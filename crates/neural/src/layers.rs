//! Neural network layers with explicit forward/backward passes.
//!
//! Every layer caches whatever it needs during `forward` to compute exact
//! gradients in `backward` (reverse-mode, hand-derived). Gradient
//! correctness is validated against central finite differences in the
//! tests at the bottom of this module — the single most important test in
//! the crate, since every downstream model depends on it.

use crate::tensor::Tensor;
use rand::Rng;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wrap an initial value with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Reset the gradient to zero (called by the trainer between steps).
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// A differentiable layer.
pub trait Layer: Send {
    /// Compute the output for `input`. `train` toggles train-time behaviour
    /// (dropout masks). Implementations cache activations for `backward`.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Given ∂L/∂output, accumulate parameter gradients and return
    /// ∂L/∂input. Must be called after a matching `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to this layer's parameters (empty for stateless
    /// layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Parameter count (for model summaries / paradata).
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }
}

/// Fully connected layer: `y = xW + b`, `x: [batch, in]`, `W: [in, out]`.
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// He-initialized dense layer.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Dense {
            weight: Param::new(Tensor::randn(&[in_features, out_features], in_features, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Construct from explicit weights (tests, serialization).
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.ndim(), 2);
        assert_eq!(bias.ndim(), 1);
        assert_eq!(weight.shape()[1], bias.len());
        Dense { weight: Param::new(weight), bias: Param::new(bias), cached_input: None }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.matmul(&self.weight.value).add_row_bias(&self.bias.value);
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        // dW += x^T g ; db += Σ_rows g ; dx = g W^T
        let dw = x.transpose2().matmul(grad_out);
        self.weight.grad.axpy(1.0, &dw);
        self.bias.grad.axpy(1.0, &grad_out.sum_rows());
        grad_out.matmul(&self.weight.value.transpose2())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward");
        let data = grad_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape(), data)
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Logistic sigmoid (used by the YoloLite objectness head).
#[derive(Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// New sigmoid.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("backward before forward");
        grad_out.zip(y, |g, y| g * y * (1.0 - y))
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

/// Hyperbolic tangent.
#[derive(Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// New tanh.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(|v| v.tanh());
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("backward before forward");
        grad_out.zip(y, |g, y| g * (1.0 - y * y))
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

/// 2-D convolution over `[N, C, H, W]` inputs, square kernel, stride 1,
/// symmetric zero padding. Direct (non-im2col) implementation — at the
/// tens-of-units scale of this workspace, cache behaviour is fine and the
/// code stays auditable.
pub struct Conv2d {
    /// Weights `[out_c, in_c, k, k]`.
    weight: Param,
    /// Bias `[out_c]`.
    bias: Param,
    kernel: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(Tensor::randn(
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            kernel,
            padding,
            cached_input: None,
        }
    }

    /// Output spatial size for an input of `h × w`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 2 * self.padding + 1 - self.kernel, w + 2 * self.padding + 1 - self.kernel)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 4, "Conv2d expects [N,C,H,W]");
        let [n, in_c, h, w] = [input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]];
        let out_c = self.weight.value.shape()[0];
        assert_eq!(self.weight.value.shape()[1], in_c, "channel mismatch");
        let k = self.kernel;
        let p = self.padding as isize;
        let (oh, ow) = self.out_size(h, w);
        let mut out = Tensor::zeros(&[n, out_c, oh, ow]);
        for b in 0..n {
            for oc in 0..out_c {
                let bias = self.bias.value.data()[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for ic in 0..in_c {
                            for ky in 0..k {
                                let iy = oy as isize + ky as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = ox as isize + kx as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at4(b, ic, iy as usize, ix as usize)
                                        * self.weight.value.at4(oc, ic, ky, kx);
                                }
                            }
                        }
                        *out.at4_mut(b, oc, oy, ox) = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let [n, in_c, h, w] = [input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]];
        let out_c = self.weight.value.shape()[0];
        let k = self.kernel;
        let p = self.padding as isize;
        let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
        let mut grad_in = Tensor::zeros(input.shape());
        for b in 0..n {
            for oc in 0..out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.at4(b, oc, oy, ox);
                        if g == 0.0 {
                            continue;
                        }
                        self.bias.grad.data_mut()[oc] += g;
                        for ic in 0..in_c {
                            for ky in 0..k {
                                let iy = oy as isize + ky as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = ox as isize + kx as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let x = input.at4(b, ic, iy as usize, ix as usize);
                                    *self.weight.grad.at4_mut(oc, ic, ky, kx) += g * x;
                                    *grad_in.at4_mut(b, ic, iy as usize, ix as usize) +=
                                        g * self.weight.value.at4(oc, ic, ky, kx);
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

/// 2×2 max pooling with stride 2 over `[N, C, H, W]`. Odd trailing
/// rows/columns are dropped (floor semantics).
#[derive(Default)]
pub struct MaxPool2d {
    /// Flat input index of each selected maximum, per output element.
    argmax: Option<Vec<usize>>,
    input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// New 2×2/stride-2 max pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 4);
        let [n, c, h, w] = [input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]];
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let mut oi = 0;
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let v = input.at4(b, ch, iy, ix);
                                if v > best {
                                    best = v;
                                    best_idx = ((b * c + ch) * h + iy) * w + ix;
                                }
                            }
                        }
                        *out.at4_mut(b, ch, oy, ox) = best;
                        argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.input_shape = input.shape().to_vec();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward before forward");
        let mut grad_in = Tensor::zeros(&self.input_shape);
        for (g, &idx) in grad_out.data().iter().zip(argmax) {
            grad_in.data_mut()[idx] += g;
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Flatten `[N, C, H, W] → [N, C·H·W]`.
#[derive(Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.input_shape = input.shape().to_vec();
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.input_shape)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// Inverted dropout: active only when `train == true`; scales kept units by
/// `1/(1-rate)` so evaluation needs no rescaling.
pub struct Dropout {
    rate: f32,
    mask: Option<Vec<f32>>,
    rng: rand::rngs::StdRng,
}

impl Dropout {
    /// `rate` in `[0, 1)`: fraction of units dropped at train time.
    pub fn new(rate: f32, seed: u64) -> Self {
        use rand::SeedableRng;
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
        Dropout { rate, mask: None, rng: rand::rngs::StdRng::seed_from_u64(seed) }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.rate == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.rate;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| if self.rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let data = input.data().iter().zip(&mask).map(|(&v, &m)| v * m).collect();
        self.mask = Some(mask);
        Tensor::from_vec(input.shape(), data)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                let data = grad_out.data().iter().zip(mask).map(|(&g, &m)| g * m).collect();
                Tensor::from_vec(grad_out.shape(), data)
            }
        }
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_known_values() {
        let w = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let mut layer = Dense::from_parts(w, b);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[4.5, 5.5]);
        assert_eq!(layer.in_features(), 2);
        assert_eq!(layer.out_features(), 2);
    }

    #[test]
    fn relu_clamps_and_gates_gradient() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = relu.backward(&Tensor::full(&[1, 4], 1.0));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[1, 3], vec![-10.0, 0.0, 10.0]);
        let y = s.forward(&x, false);
        assert!(y.data()[0] < 0.001);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 0.999);
        let g = s.backward(&Tensor::full(&[1, 3], 1.0));
        // σ'(0) = 0.25
        assert!((g.data()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn maxpool_selects_max_and_routes_gradient() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let mut pool = MaxPool2d::new();
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[5.0]);
        let g = pool.backward(&Tensor::full(&[1, 1, 1, 1], 7.0));
        assert_eq!(g.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let mut pool = MaxPool2d::new();
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn flatten_round_trip() {
        let x = Tensor::from_vec(&[2, 1, 2, 2], (0..8).map(|v| v as f32).collect());
        let mut f = Flatten::new();
        let y = f.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng);
        // Set kernel to the delta function, bias 0.
        {
            let params = conv.params_mut();
            let [w, b] = <[_; 2]>::try_from(params).ok().unwrap();
            w.value.data_mut().fill(0.0);
            *w.value.at4_mut(0, 0, 1, 1) = 1.0;
            b.value.data_mut().fill(0.0);
        }
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), x.shape());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_known_sum_kernel() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 2, 0, &mut rng);
        {
            let params = conv.params_mut();
            let [w, b] = <[_; 2]>::try_from(params).ok().unwrap();
            w.value.data_mut().fill(1.0);
            b.value.data_mut().fill(0.5);
        }
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[10.5]);
    }

    #[test]
    fn dropout_eval_is_identity_train_scales() {
        let x = Tensor::full(&[1, 1000], 1.0);
        let mut d = Dropout::new(0.5, 42);
        let eval = d.forward(&x, false);
        assert_eq!(eval.data(), x.data());
        let train = d.forward(&x, true);
        // Kept units are scaled to 2.0; expectation of the mean stays ≈ 1.
        let mean = train.mean();
        assert!((mean - 1.0).abs() < 0.1, "dropout mean {mean}");
        let kept = train.data().iter().filter(|&&v| v != 0.0).count();
        assert!((400..600).contains(&kept));
    }

    /// Central-difference gradient check for a Dense layer, the backbone
    /// correctness test for the whole training stack.
    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng);
        // Scalar loss: sum of outputs (so dL/dy = 1 everywhere).
        let loss = |layer: &mut Dense, x: &Tensor| layer.forward(x, false).sum();

        let _ = layer.forward(&x, false);
        let ones = Tensor::full(&[4, 2], 1.0);
        let grad_in = layer.backward(&ones);

        let eps = 1e-3;
        // Check weight gradients.
        for idx in 0..6 {
            let analytic = layer.params_mut()[0].grad.data()[idx];
            layer.params_mut()[0].value.data_mut()[idx] += eps;
            let up = loss(&mut layer, &x);
            layer.params_mut()[0].value.data_mut()[idx] -= 2.0 * eps;
            let down = loss(&mut layer, &x);
            layer.params_mut()[0].value.data_mut()[idx] += eps;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "weight[{idx}] analytic {analytic} vs numeric {numeric}"
            );
        }
        // Check input gradients.
        let mut x_pert = x.clone();
        for idx in 0..x.len() {
            x_pert.data_mut()[idx] += eps;
            let up = loss(&mut layer, &x_pert);
            x_pert.data_mut()[idx] -= 2.0 * eps;
            let down = loss(&mut layer, &x_pert);
            x_pert.data_mut()[idx] += eps;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grad_in.data()[idx];
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "input[{idx}] analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    /// Finite-difference check for Conv2d weights — exercises padding.
    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut conv = Conv2d::new(2, 2, 3, 1, &mut rng);
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let loss = |conv: &mut Conv2d, x: &Tensor| conv.forward(x, false).sum();

        let out = conv.forward(&x, false);
        let ones = Tensor::full(out.shape(), 1.0);
        let grad_in = conv.backward(&ones);

        let eps = 1e-2;
        let n_weights = conv.params_mut()[0].value.len();
        for idx in (0..n_weights).step_by(7) {
            let analytic = conv.params_mut()[0].grad.data()[idx];
            conv.params_mut()[0].value.data_mut()[idx] += eps;
            let up = loss(&mut conv, &x);
            conv.params_mut()[0].value.data_mut()[idx] -= 2.0 * eps;
            let down = loss(&mut conv, &x);
            conv.params_mut()[0].value.data_mut()[idx] += eps;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 0.05,
                "conv weight[{idx}] analytic {analytic} vs numeric {numeric}"
            );
        }
        let mut x_pert = x.clone();
        for idx in (0..x.len()).step_by(5) {
            x_pert.data_mut()[idx] += eps;
            let up = loss(&mut conv, &x_pert);
            x_pert.data_mut()[idx] -= 2.0 * eps;
            let down = loss(&mut conv, &x_pert);
            x_pert.data_mut()[idx] += eps;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grad_in.data()[idx];
            assert!(
                (analytic - numeric).abs() < 0.05,
                "conv input[{idx}] analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn param_count_reports_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(10, 5, &mut rng);
        assert_eq!(d.param_count(), 55);
        let mut c = Conv2d::new(3, 8, 3, 1, &mut rng);
        assert_eq!(c.param_count(), 8 * 3 * 9 + 8);
    }
}
