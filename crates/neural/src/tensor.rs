//! Row-major `f32` tensors with the operations the layer zoo needs.
//!
//! This is a deliberately small tensor: contiguous storage, shapes up to
//! four dimensions (`[N, C, H, W]` for image batches), no views or strides.
//! Hot loops (matmul, conv) are written so the inner loop is a contiguous
//! slice traversal, which the compiler auto-vectorizes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}(", self.shape)?;
        let preview: Vec<String> =
            self.data.iter().take(8).map(|v| format!("{v:.4}")).collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

impl Tensor {
    /// Zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; n] }
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![value; n] }
    }

    /// Build from raw data; panics if `data.len()` does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "shape {shape:?} needs {n} elements, got {}", data.len());
        Tensor { shape: shape.to_vec(), data }
    }

    /// He-style Gaussian initialization: N(0, sqrt(2/fan_in)).
    pub fn randn<R: Rng>(shape: &[usize], fan_in: usize, rng: &mut R) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| gaussian(rng) * std).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// Uniform random in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// The shape slice.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape {:?} → {shape:?} changes element count", self.shape);
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// 2-D element accessor (row, col).
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        self.data[r * self.shape[1] + c]
    }

    /// 2-D mutable element accessor.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 2);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        &mut self.data[r * self.shape[1] + c]
    }

    /// 4-D element accessor (n, c, h, w).
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 4);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// 4-D mutable element accessor.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 4);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        &mut self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// One row of a 2-D tensor as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Matrix multiply: `[m,k] × [k,n] → [m,n]`.
    ///
    /// ikj loop order keeps the inner loop contiguous over both the output
    /// row and the right-hand row, which auto-vectorizes well.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.ndim(), 2, "matmul rhs must be 2-D");
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor { shape: vec![m, n], data: out }
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.ndim(), 2);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// Elementwise addition; shapes must match.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }

    /// Elementwise combine with an arbitrary function.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "elementwise op shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// In-place scaled add: `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape);
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by a scalar (in place).
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Add `bias` (shape `[n]`) to every row of a `[m,n]` tensor.
    pub fn add_row_bias(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(bias.ndim(), 1);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let (m, n) = (self.shape[0], self.shape[1]);
        assert_eq!(bias.len(), n);
        let mut out = self.data.clone();
        for i in 0..m {
            for (o, &b) in out[i * n..(i + 1) * n].iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sums of a `[m,n]` tensor → shape `[n]` (bias gradients).
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(&self.data[i * n..(i + 1) * n]) {
                *o += v;
            }
        }
        Tensor { shape: vec![n], data: out }
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        (0..self.shape[0])
            .map(|r| {
                let row = self.row(r);
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (i, &v) in row.iter().enumerate() {
                    // Strict '>' keeps the first index on ties.
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Extract rows `[start, end)` of a 2-D tensor (a batch slice).
    pub fn rows(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.ndim(), 2);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let n = self.shape[1];
        Tensor {
            shape: vec![end - start, n],
            data: self.data[start * n..end * n].to_vec(),
        }
    }

    /// Extract items `[start, end)` along the batch axis of a 4-D tensor.
    pub fn batch_slice(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.ndim(), 4);
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let per = self.shape[1] * self.shape[2] * self.shape[3];
        Tensor {
            shape: vec![end - start, self.shape[1], self.shape[2], self.shape[3]],
            data: self.data[start * per..end * per].to_vec(),
        }
    }

    /// Stack 4-D single-item tensors (`[1,C,H,W]` each) into one batch.
    pub fn stack_batch(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty());
        // itrust-lint: allow(panic-reachable) — flat offsets are products of the tensor's own dims, checked at construction
        let first = &items[0];
        assert_eq!(first.ndim(), 4);
        assert_eq!(first.shape[0], 1);
        let per = first.len();
        let mut data = Vec::with_capacity(per * items.len());
        for t in items {
            assert_eq!(t.shape, first.shape, "stack_batch requires identical shapes");
            data.extend_from_slice(&t.data);
        }
        Tensor {
            shape: vec![items.len(), first.shape[1], first.shape[2], first.shape[3]],
            data,
        }
    }

    /// Frobenius / L2 norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True when every element is finite (NaN/Inf detector for training
    /// sanity checks).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
pub fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_checks_length() {
        Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_result() {
        // [[1,2],[3,4]] × [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut eye = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            *eye.at2_mut(i, i) = 1.0;
        }
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(&[1, 3], vec![1.0, 0.0, 2.0]);
        let b = Tensor::from_vec(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.data(), &[11.0, 14.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at2(0, 1), 4.0);
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn transpose_matmul_identity_property() {
        // (AB)^T == B^T A^T
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform(&[4, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[5, 3], -1.0, 1.0, &mut rng);
        let lhs = a.matmul(&b).transpose2();
        let rhs = b.transpose2().matmul(&a.transpose2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.map(|v| v * v).data(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn bias_and_row_sums() {
        let x = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3], vec![10.0, 20.0, 30.0]);
        let y = x.add_row_bias(&b);
        assert_eq!(y.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        assert_eq!(x.sum_rows().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn reductions() {
        let x = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.mean(), 2.5);
        assert!((x.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_ties_take_first() {
        let x = Tensor::from_vec(&[3, 3], vec![
            0.1, 0.9, 0.0,
            0.5, 0.5, 0.5,
            0.0, 0.0, 1.0,
        ]);
        assert_eq!(x.argmax_rows(), vec![1, 0, 2]);
    }

    #[test]
    fn row_and_batch_slicing() {
        let x = Tensor::from_vec(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(x.row(1), &[3.0, 4.0]);
        let mid = x.rows(1, 3);
        assert_eq!(mid.shape(), &[2, 2]);
        assert_eq!(mid.data(), &[3.0, 4.0, 5.0, 6.0]);

        let img = Tensor::from_vec(&[2, 1, 2, 2], (0..8).map(|v| v as f32).collect());
        let second = img.batch_slice(1, 2);
        assert_eq!(second.shape(), &[1, 1, 2, 2]);
        assert_eq!(second.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn stack_batch_concatenates() {
        let a = Tensor::from_vec(&[1, 1, 1, 2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[1, 1, 1, 2], vec![3.0, 4.0]);
        let s = Tensor::stack_batch(&[a, b]);
        assert_eq!(s.shape(), &[2, 1, 1, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn at4_indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 42.0;
        assert_eq!(t.at4(1, 2, 3, 4), 42.0);
        assert_eq!(t.data()[t.len() - 1], 42.0);
    }

    #[test]
    fn randn_has_roughly_expected_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::randn(&[10_000], 2, &mut rng);
        // std should be ≈ sqrt(2/2) = 1.0
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 1.0).abs() < 0.05, "std {}", var.sqrt());
        assert!(t.all_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros(&[3]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }
}
