//! Dataset utilities: labeled feature matrices, splits, shuffling, batching.

use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A supervised dataset: features `[n, d]` plus one class label per row.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, one example per row.
    pub x: Tensor,
    /// Class index per example.
    pub y: Vec<usize>,
}

impl Dataset {
    /// Build from a feature tensor and labels; panics on length mismatch.
    pub fn new(x: Tensor, y: Vec<usize>) -> Self {
        assert_eq!(x.ndim(), 2, "Dataset features must be 2-D");
        // itrust-lint: allow(panic-reachable) — column loops are bounded by the feature width asserted at load
        assert_eq!(x.shape()[0], y.len(), "one label per row");
        Dataset { x, y }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        // itrust-lint: allow(panic-reachable) — column loops are bounded by the feature width asserted at load
        self.x.shape()[1]
    }

    /// Number of distinct classes (max label + 1).
    pub fn n_classes(&self) -> usize {
        self.y.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Select a subset by example indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let d = self.dim();
        let mut data = Vec::with_capacity(indices.len() * d);
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.x.row(i));
            // itrust-lint: allow(panic-reachable) — column loops are bounded by the feature width asserted at load
            y.push(self.y[i]);
        }
        Dataset { x: Tensor::from_vec(&[indices.len(), d], data), y }
    }

    /// Shuffle examples in place.
    pub fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        *self = self.subset(&idx);
    }

    /// Split into `(train, test)` with `train_fraction` of examples in the
    /// first part. Does not shuffle — call [`Dataset::shuffle`] first.
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let cut = (self.len() as f64 * train_fraction).round() as usize;
        let idx: Vec<usize> = (0..self.len()).collect();
        // itrust-lint: allow(panic-reachable) — column loops are bounded by the feature width asserted at load
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Stratified labeled/unlabeled split for semi-supervised experiments:
    /// keeps `labeled_fraction` of each class labeled, returns
    /// `(labeled, unlabeled)`; at least one example per present class stays
    /// labeled.
    pub fn split_labeled<R: Rng>(&self, labeled_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        let k = self.n_classes();
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &c) in self.y.iter().enumerate() {
            // itrust-lint: allow(panic-reachable) — column loops are bounded by the feature width asserted at load
            by_class[c].push(i);
        }
        let mut labeled = Vec::new();
        let mut unlabeled = Vec::new();
        for members in by_class.iter_mut() {
            if members.is_empty() {
                continue;
            }
            members.shuffle(rng);
            let keep = ((members.len() as f64 * labeled_fraction).round() as usize)
                .clamp(1, members.len());
            labeled.extend_from_slice(&members[..keep]);
            unlabeled.extend_from_slice(&members[keep..]);
        }
        (self.subset(&labeled), self.subset(&unlabeled))
    }

    /// Iterate over `(x_batch, y_batch)` minibatches of at most
    /// `batch_size` rows.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Tensor, Vec<usize>)> + '_ {
        assert!(batch_size > 0);
        let n = self.len();
        (0..n).step_by(batch_size).map(move |start| {
            let end = (start + batch_size).min(n);
            // itrust-lint: allow(panic-reachable) — column loops are bounded by the feature width asserted at load
            (self.x.rows(start, end), self.y[start..end].to_vec())
        })
    }

    /// Per-class example counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &c in &self.y {
            // itrust-lint: allow(panic-reachable) — column loops are bounded by the feature width asserted at load
            counts[c] += 1;
        }
        counts
    }
}

/// One-hot encode labels into a `[n, classes]` tensor.
pub fn one_hot(labels: &[usize], classes: usize) -> Tensor {
    let mut t = Tensor::zeros(&[labels.len(), classes]);
    for (r, &c) in labels.iter().enumerate() {
        assert!(c < classes);
        *t.at2_mut(r, c) = 1.0;
    }
    t
}

/// Standardize columns to zero mean / unit variance; returns the transformed
/// tensor plus `(means, stds)` for applying the same transform to new data.
pub fn standardize(x: &Tensor) -> (Tensor, Vec<f32>, Vec<f32>) {
    assert_eq!(x.ndim(), 2);
    // itrust-lint: allow(panic-reachable) — column loops are bounded by the feature width asserted at load
    let (n, d) = (x.shape()[0], x.shape()[1]);
    let mut means = vec![0.0f32; d];
    let mut stds = vec![0.0f32; d];
    for r in 0..n {
        for (m, &v) in means.iter_mut().zip(x.row(r)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n.max(1) as f32;
    }
    for r in 0..n {
        for c in 0..d {
            let diff = x.at2(r, c) - means[c];
            stds[c] += diff * diff;
        }
    }
    for s in &mut stds {
        *s = (*s / n.max(1) as f32).sqrt().max(1e-8);
    }
    let mut out = x.clone();
    for r in 0..n {
        for c in 0..d {
            *out.at2_mut(r, c) = (x.at2(r, c) - means[c]) / stds[c];
        }
    }
    (out, means, stds)
}

/// Apply a previously fitted standardization to new data.
pub fn apply_standardize(x: &Tensor, means: &[f32], stds: &[f32]) -> Tensor {
    // itrust-lint: allow(panic-reachable) — column loops are bounded by the feature width asserted at load
    let (n, d) = (x.shape()[0], x.shape()[1]);
    assert_eq!(d, means.len());
    let mut out = x.clone();
    for r in 0..n {
        for c in 0..d {
            *out.at2_mut(r, c) = (x.at2(r, c) - means[c]) / stds[c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let data: Vec<f32> = (0..n * 2).map(|v| v as f32).collect();
        let y: Vec<usize> = (0..n).map(|i| i % 3).collect();
        Dataset::new(Tensor::from_vec(&[n, 2], data), y)
    }

    #[test]
    fn basic_accessors() {
        let ds = toy(9);
        assert_eq!(ds.len(), 9);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.class_counts(), vec![3, 3, 3]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn subset_selects_rows() {
        let ds = toy(5);
        let s = ds.subset(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x.row(0), &[8.0, 9.0]);
        assert_eq!(s.x.row(1), &[0.0, 1.0]);
        assert_eq!(s.y, vec![1, 0]);
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let mut ds = toy(30);
        let mut rng = StdRng::seed_from_u64(3);
        ds.shuffle(&mut rng);
        assert_eq!(ds.len(), 30);
        // Label must still match the feature row it was paired with:
        // in toy(), row i has features [2i, 2i+1] and label i % 3.
        for r in 0..30 {
            let i = (ds.x.row(r)[0] / 2.0) as usize;
            assert_eq!(ds.y[r], i % 3);
        }
    }

    #[test]
    fn split_fractions() {
        let ds = toy(10);
        let (train, test) = ds.split(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
    }

    #[test]
    fn split_labeled_is_stratified_and_nonempty() {
        let ds = toy(300);
        let mut rng = StdRng::seed_from_u64(5);
        let (labeled, unlabeled) = ds.split_labeled(0.1, &mut rng);
        assert_eq!(labeled.len() + unlabeled.len(), 300);
        // Each class keeps ≈10 labeled examples.
        for &c in &labeled.class_counts() {
            assert!((8..=12).contains(&c), "class count {c}");
        }
        // Extreme fraction still leaves ≥1 per class.
        let (tiny, _) = ds.split_labeled(0.0001, &mut rng);
        assert!(tiny.class_counts().iter().all(|&c| c >= 1));
    }

    #[test]
    fn batches_cover_all_rows() {
        let ds = toy(10);
        let sizes: Vec<usize> = ds.batches(4).map(|(x, y)| {
            assert_eq!(x.shape()[0], y.len());
            y.len()
        }).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn one_hot_encodes() {
        let t = one_hot(&[0, 2, 1], 3);
        assert_eq!(t.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(t.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(t.row(2), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let x = Tensor::from_vec(&[4, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let (z, means, stds) = standardize(&x);
        assert!((means[0] - 2.5).abs() < 1e-6);
        let mean_z: f32 = z.data().iter().sum::<f32>() / 4.0;
        assert!(mean_z.abs() < 1e-6);
        let var_z: f32 = z.data().iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((var_z - 1.0).abs() < 1e-5);
        // Applying the fitted transform to the same data reproduces z.
        let z2 = apply_standardize(&x, &means, &stds);
        assert_eq!(z.data(), z2.data());
    }

    #[test]
    fn standardize_constant_column_is_safe() {
        let x = Tensor::from_vec(&[3, 1], vec![7.0, 7.0, 7.0]);
        let (z, _, _) = standardize(&x);
        assert!(z.all_finite());
        assert!(z.data().iter().all(|&v| v == 0.0));
    }
}
