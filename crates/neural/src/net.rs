//! Sequential network container and training loop helpers.

use crate::layers::{Layer, Param};
use crate::loss::{softmax_cross_entropy, LossOutput};
use crate::optim::Optimizer;
use crate::tensor::Tensor;

/// A feed-forward stack of layers executed in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequential {
    /// Empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.param_count()).sum()
    }

    /// One-line architecture summary, e.g. `Conv2d→ReLU→MaxPool2d→…`.
    pub fn summary(&self) -> String {
        self.layers.iter().map(|l| l.name()).collect::<Vec<_>>().join("→")
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backward pass (after a matching `forward`), accumulating parameter
    /// gradients. Returns ∂L/∂input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Collect all parameters in layer order (stable across calls, which is
    /// what optimizer state keying relies on).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// One supervised training step on a classification batch:
    /// forward → softmax CE → backward → optimizer step. Returns the loss.
    pub fn train_step_ce(
        &mut self,
        x: &Tensor,
        targets: &[usize],
        optim: &mut dyn Optimizer,
    ) -> f32 {
        self.zero_grad();
        let logits = self.forward(x, true);
        let LossOutput { loss, grad } = softmax_cross_entropy(&logits, targets);
        self.backward(&grad);
        optim.step(&mut self.params_mut());
        loss
    }

    /// One training step against an arbitrary pre-computed loss gradient
    /// (used by detection heads with custom losses).
    pub fn train_step_custom(
        &mut self,
        x: &Tensor,
        loss: &dyn Fn(&Tensor) -> LossOutput,
        optim: &mut dyn Optimizer,
    ) -> f32 {
        self.zero_grad();
        let out = self.forward(x, true);
        let LossOutput { loss, grad } = loss(&out);
        self.backward(&grad);
        optim.step(&mut self.params_mut());
        loss
    }

    /// Predicted class per row for a classification head.
    pub fn predict_classes(&mut self, x: &Tensor) -> Vec<usize> {
        self.forward(x, false).argmax_rows()
    }

    /// Row-wise class probabilities.
    pub fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        let logits = self.forward(x, false);
        crate::loss::softmax(&logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, ReLU};
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// XOR is the classic non-linearly-separable sanity check: a network
    /// with one hidden layer must drive training loss to ~0.
    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Sequential::new()
            .push(Dense::new(2, 8, &mut rng))
            .push(ReLU::new())
            .push(Dense::new(8, 2, &mut rng));
        let x = Tensor::from_vec(&[4, 2], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let y = [0usize, 1, 1, 0];
        let mut opt = Sgd::new(0.5, 0.9);
        let mut last = f32::MAX;
        for _ in 0..300 {
            last = net.train_step_ce(&x, &y, &mut opt);
        }
        assert!(last < 0.05, "XOR loss did not converge: {last}");
        assert_eq!(net.predict_classes(&x), vec![0, 1, 1, 0]);
    }

    #[test]
    fn summary_and_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new()
            .push(Dense::new(4, 3, &mut rng))
            .push(ReLU::new())
            .push(Dense::new(3, 2, &mut rng));
        assert_eq!(net.summary(), "Dense→ReLU→Dense");
        assert_eq!(net.depth(), 3);
        assert_eq!(net.param_count(), 4 * 3 + 3 + 3 * 2 + 2);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new().push(Dense::new(2, 2, &mut rng));
        let x = Tensor::from_vec(&[1, 2], vec![1.0, -1.0]);
        net.forward(&x, true);
        net.backward(&Tensor::full(&[1, 2], 1.0));
        assert!(net.params_mut()[0].grad.norm() > 0.0);
        net.zero_grad();
        assert_eq!(net.params_mut()[0].grad.norm(), 0.0);
    }

    #[test]
    fn predict_proba_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Sequential::new().push(Dense::new(3, 4, &mut rng));
        let x = Tensor::rand_uniform(&[5, 3], -1.0, 1.0, &mut rng);
        let p = net.predict_proba(&x);
        assert_eq!(p.shape(), &[5, 4]);
        for r in 0..5 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn training_reduces_loss_on_linear_task() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Sequential::new().push(Dense::new(2, 2, &mut rng));
        // Linearly separable: class = x0 > x1.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            let a = (i % 10) as f32 / 10.0;
            let b = (i / 10) as f32 / 10.0;
            xs.extend_from_slice(&[a, b]);
            ys.push(usize::from(a > b));
        }
        let x = Tensor::from_vec(&[100, 2], xs);
        let mut opt = Sgd::new(0.5, 0.0);
        let first = net.train_step_ce(&x, &ys, &mut opt);
        let mut last = first;
        for _ in 0..500 {
            last = net.train_step_ce(&x, &ys, &mut opt);
        }
        assert!(last < first * 0.5, "loss {first} → {last}");
        let preds = net.predict_classes(&x);
        let acc = preds.iter().zip(&ys).filter(|(p, y)| p == y).count() as f32 / 100.0;
        // The 10 on-diagonal points sit exactly on the decision boundary, so
        // demand high-but-not-perfect accuracy.
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
