//! Loss functions with fused backward passes.
//!
//! Softmax + cross-entropy is fused ([`softmax_cross_entropy`]) for the
//! usual numerical-stability reason: the combined gradient `p − y` avoids
//! the catastrophic cancellation of a separate softmax backward.

use crate::tensor::Tensor;

/// Loss value plus gradient with respect to the pre-loss activations.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// ∂L/∂logits, shape identical to the logits, already divided by the
    /// batch size (so optimizers see per-example-mean gradients).
    pub grad: Tensor,
}

/// Row-wise numerically-stable softmax of `[batch, classes]` logits.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2);
    // itrust-lint: allow(panic-reachable) — class indices are validated against the logit width by the caller contract
    let (m, n) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[m, n]);
    for r in 0..m {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (c, &v) in row.iter().enumerate().take(n) {
            let e = (v - max).exp();
            *out.at2_mut(r, c) = e;
            denom += e;
        }
        for c in 0..n {
            *out.at2_mut(r, c) /= denom;
        }
    }
    out
}

/// Mean cross-entropy over the batch, fused with softmax.
///
/// `targets[i]` is the class index of row `i`. Returns the loss and the
/// gradient `(softmax(logits) − onehot(targets)) / batch`.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> LossOutput {
    assert_eq!(logits.ndim(), 2);
    // itrust-lint: allow(panic-reachable) — class indices are validated against the logit width by the caller contract
    let (m, n) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(targets.len(), m, "one target per row");
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let inv_batch = 1.0 / m as f32;
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < n, "target {t} out of range for {n} classes");
        let p = probs.at2(r, t).max(1e-12);
        loss -= p.ln();
        *grad.at2_mut(r, t) -= 1.0;
    }
    grad.scale(inv_batch);
    LossOutput { loss: loss * inv_batch, grad }
}

/// Mean squared error: `mean((pred − target)^2)` with gradient
/// `2(pred − target)/len`.
pub fn mse(pred: &Tensor, target: &Tensor) -> LossOutput {
    assert_eq!(pred.shape(), target.shape());
    let n = pred.len().max(1) as f32;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let mut grad = diff;
    grad.scale(2.0 / n);
    LossOutput { loss, grad }
}

/// Binary cross-entropy over probabilities already in `(0,1)` (post-sigmoid),
/// with per-element weighting — used by the YoloLite objectness loss where
/// positive cells are rare and up-weighted.
pub fn weighted_bce(pred: &Tensor, target: &Tensor, weight: &Tensor) -> LossOutput {
    assert_eq!(pred.shape(), target.shape());
    assert_eq!(pred.shape(), weight.shape());
    let n = pred.len().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(pred.shape());
    for i in 0..pred.len() {
        // itrust-lint: allow(panic-reachable) — class indices are validated against the logit width by the caller contract
        let p = pred.data()[i].clamp(1e-6, 1.0 - 1e-6);
        let y = target.data()[i];
        let w = weight.data()[i];
        loss -= w * (y * p.ln() + (1.0 - y) * (1.0 - p).ln());
        grad.data_mut()[i] = w * (p - y) / (p * (1.0 - p)) / n;
    }
    LossOutput { loss: loss / n, grad }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone: bigger logit → bigger probability.
        assert!(p.at2(0, 2) > p.at2(0, 1));
        assert!(p.at2(0, 1) > p.at2(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]));
        let b = softmax(&Tensor::from_vec(&[1, 3], vec![1001.0, 1002.0, 1003.0]));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(b.all_finite());
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(&[1, 3], vec![100.0, 0.0, 0.0]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn cross_entropy_of_uniform_is_ln_classes() {
        let logits = Tensor::zeros(&[4, 5]);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((out.loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_p_minus_y_over_batch() {
        let logits = Tensor::zeros(&[2, 2]); // softmax = 0.5 everywhere
        let out = softmax_cross_entropy(&logits, &[0, 1]);
        // grad = (0.5 - y)/2
        assert!((out.grad.at2(0, 0) - (-0.25)).abs() < 1e-6);
        assert!((out.grad.at2(0, 1) - 0.25).abs() < 1e-6);
        assert!((out.grad.at2(1, 0) - 0.25).abs() < 1e-6);
        assert!((out.grad.at2(1, 1) - (-0.25)).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.3, -0.2, 0.9, 1.5, 0.1, -0.7]);
        let targets = [2usize, 0];
        let out = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut up = logits.clone();
            up.data_mut()[idx] += eps;
            let mut down = logits.clone();
            down.data_mut()[idx] -= eps;
            let numeric = (softmax_cross_entropy(&up, &targets).loss
                - softmax_cross_entropy(&down, &targets).loss)
                / (2.0 * eps);
            assert!(
                (out.grad.data()[idx] - numeric).abs() < 1e-3,
                "logit[{idx}]: analytic {} vs numeric {numeric}",
                out.grad.data()[idx]
            );
        }
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = Tensor::from_vec(&[2], vec![1.0, 3.0]);
        let target = Tensor::from_vec(&[2], vec![0.0, 0.0]);
        let out = mse(&pred, &target);
        assert!((out.loss - 5.0).abs() < 1e-6); // (1 + 9)/2
        assert_eq!(out.grad.data(), &[1.0, 3.0]); // 2*diff/2
    }

    #[test]
    fn weighted_bce_prefers_correct() {
        let target = Tensor::from_vec(&[2], vec![1.0, 0.0]);
        let w = Tensor::full(&[2], 1.0);
        let good = weighted_bce(&Tensor::from_vec(&[2], vec![0.99, 0.01]), &target, &w);
        let bad = weighted_bce(&Tensor::from_vec(&[2], vec![0.01, 0.99]), &target, &w);
        assert!(good.loss < bad.loss);
    }

    #[test]
    fn weighted_bce_weighting_scales_loss_and_grad() {
        let pred = Tensor::from_vec(&[1], vec![0.3]);
        let target = Tensor::from_vec(&[1], vec![1.0]);
        let w1 = weighted_bce(&pred, &target, &Tensor::full(&[1], 1.0));
        let w5 = weighted_bce(&pred, &target, &Tensor::full(&[1], 5.0));
        assert!((w5.loss - 5.0 * w1.loss).abs() < 1e-5);
        assert!((w5.grad.data()[0] - 5.0 * w1.grad.data()[0]).abs() < 1e-5);
    }
}
