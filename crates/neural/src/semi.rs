//! Semi-supervised meta-learners: self-training and co-training.
//!
//! Section 2 of the paper singles these out ("training samples can be grown
//! iteratively exploiting unlabeled data based on decisions from an initial
//! model (self-training) or using decisions from various initial models
//! (co-training)"), citing Zhang & Abdul-Mageed's self-training work. The D2
//! experiment measures how much of the fully-supervised accuracy gap these
//! recover as the labeled fraction shrinks.

use crate::classical::Classifier;
use crate::data::Dataset;
use crate::tensor::Tensor;

/// Progress of one self-training round, for experiment logging.
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// Round index (0 = initial supervised fit).
    pub round: usize,
    /// Size of the (pseudo-)labeled pool after the round.
    pub labeled_size: usize,
    /// Examples pseudo-labeled this round.
    pub newly_labeled: usize,
    /// Unlabeled examples remaining.
    pub remaining_unlabeled: usize,
}

/// Classic self-training: fit on labeled data, pseudo-label the unlabeled
/// pool where the model is confident, refit, repeat.
pub struct SelfTraining<C: Classifier> {
    base: C,
    /// Confidence threshold τ for accepting a pseudo-label.
    confidence: f32,
    /// Maximum pseudo-labels added per round (0 = unlimited).
    max_per_round: usize,
    /// Maximum rounds.
    max_rounds: usize,
    history: Vec<RoundStats>,
}

impl<C: Classifier> SelfTraining<C> {
    /// Wrap `base` with threshold `confidence` ∈ (0.5, 1.0].
    pub fn new(base: C, confidence: f32, max_rounds: usize) -> Self {
        assert!(
            confidence > 0.0 && confidence <= 1.0,
            "confidence must be in (0,1]"
        );
        assert!(max_rounds >= 1);
        SelfTraining { base, confidence, max_per_round: 0, max_rounds, history: Vec::new() }
    }

    /// Cap the number of pseudo-labels accepted per round (curriculum-style
    /// slow growth).
    pub fn with_max_per_round(mut self, cap: usize) -> Self {
        self.max_per_round = cap;
        self
    }

    /// Per-round statistics of the last `fit_semi` call.
    pub fn history(&self) -> &[RoundStats] {
        &self.history
    }

    /// The fitted underlying classifier.
    pub fn model(&self) -> &C {
        &self.base
    }

    /// Fit using `labeled` plus an `unlabeled` feature pool.
    pub fn fit_semi(&mut self, labeled: &Dataset, unlabeled: &Tensor) {
        self.history.clear();
        let d = labeled.dim();
        // itrust-lint: allow(panic-reachable) — pseudo-label indices come from argmax over the model's own output width
        assert_eq!(unlabeled.shape()[1], d, "feature dims must agree");
        let mut pool_x = labeled.x.clone();
        let mut pool_y = labeled.y.clone();
        let mut remaining: Vec<usize> = (0..unlabeled.shape()[0]).collect();
        self.base.fit(&Dataset::new(pool_x.clone(), pool_y.clone()));
        self.history.push(RoundStats {
            round: 0,
            labeled_size: pool_y.len(),
            newly_labeled: 0,
            remaining_unlabeled: remaining.len(),
        });
        for round in 1..=self.max_rounds {
            if remaining.is_empty() {
                break;
            }
            // Score the remaining pool.
            let mut cand_data = Vec::with_capacity(remaining.len() * d);
            for &i in &remaining {
                let start = i * d;
                cand_data.extend_from_slice(&unlabeled.data()[start..start + d]);
            }
            let cand = Tensor::from_vec(&[remaining.len(), d], cand_data);
            let probs = self.base.predict_proba(&cand);
            // Collect confident predictions, most confident first.
            let mut accepted: Vec<(usize, usize, f32)> = Vec::new(); // (pool pos, class, conf)
            for (pos, _) in remaining.iter().enumerate() {
                let row = probs.row(pos);
                let (class, &conf) = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    // itrust-lint: allow(panic-reachable) — probability rows always have n_classes ≥ 2 entries
                    .unwrap();
                if conf >= self.confidence {
                    accepted.push((pos, class, conf));
                }
            }
            accepted.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            if self.max_per_round > 0 {
                accepted.truncate(self.max_per_round);
            }
            if accepted.is_empty() {
                break;
            }
            // Move accepted examples into the labeled pool.
            let mut taken: Vec<usize> = accepted.iter().map(|&(pos, _, _)| pos).collect();
            let mut new_x = pool_x.data().to_vec();
            for &(pos, class, _) in &accepted {
                let i = remaining[pos];
                new_x.extend_from_slice(&unlabeled.data()[i * d..(i + 1) * d]);
                pool_y.push(class);
            }
            pool_x = Tensor::from_vec(&[pool_y.len(), d], new_x);
            // Remove from the pool (descending positions keep indices valid).
            taken.sort_unstable_by(|a, b| b.cmp(a));
            for pos in taken {
                remaining.swap_remove(pos);
            }
            self.base.fit(&Dataset::new(pool_x.clone(), pool_y.clone()));
            self.history.push(RoundStats {
                round,
                labeled_size: pool_y.len(),
                newly_labeled: accepted.len(),
                remaining_unlabeled: remaining.len(),
            });
        }
    }
}

impl<C: Classifier> Classifier for SelfTraining<C> {
    fn fit(&mut self, data: &Dataset) {
        self.base.fit(data);
    }

    fn predict_proba(&self, x: &Tensor) -> Tensor {
        self.base.predict_proba(x)
    }

    fn n_classes(&self) -> usize {
        self.base.n_classes()
    }
}

/// Co-training: two classifiers over disjoint feature *views* label data for
/// each other (Blum & Mitchell).
pub struct CoTraining<A: Classifier, B: Classifier> {
    view_a: Vec<usize>,
    view_b: Vec<usize>,
    model_a: A,
    model_b: B,
    confidence: f32,
    max_rounds: usize,
}

impl<A: Classifier, B: Classifier> CoTraining<A, B> {
    /// `view_a`/`view_b` are disjoint feature-index subsets.
    pub fn new(
        model_a: A,
        model_b: B,
        view_a: Vec<usize>,
        view_b: Vec<usize>,
        confidence: f32,
        max_rounds: usize,
    ) -> Self {
        assert!(!view_a.is_empty() && !view_b.is_empty());
        assert!(view_a.iter().all(|i| !view_b.contains(i)), "views must be disjoint");
        assert!(confidence > 0.0 && confidence <= 1.0);
        CoTraining { view_a, view_b, model_a, model_b, confidence, max_rounds }
    }

    fn project(x: &Tensor, view: &[usize]) -> Tensor {
        // itrust-lint: allow(panic-reachable) — pseudo-label indices come from argmax over the model's own output width
        let n = x.shape()[0];
        let mut data = Vec::with_capacity(n * view.len());
        for r in 0..n {
            let row = x.row(r);
            for &j in view {
                data.push(row[j]);
            }
        }
        Tensor::from_vec(&[n, view.len()], data)
    }

    /// Fit both views from `labeled` plus the `unlabeled` pool.
    pub fn fit_semi(&mut self, labeled: &Dataset, unlabeled: &Tensor) {
        let mut pool_x = labeled.x.clone();
        let mut pool_y = labeled.y.clone();
        let d = labeled.dim();
        // itrust-lint: allow(panic-reachable) — pseudo-label indices come from argmax over the model's own output width
        let mut remaining: Vec<usize> = (0..unlabeled.shape()[0]).collect();
        for _ in 0..self.max_rounds {
            let ds = Dataset::new(pool_x.clone(), pool_y.clone());
            self.model_a.fit(&Dataset::new(Self::project(&ds.x, &self.view_a), ds.y.clone()));
            self.model_b.fit(&Dataset::new(Self::project(&ds.x, &self.view_b), ds.y.clone()));
            if remaining.is_empty() {
                break;
            }
            let mut cand_data = Vec::with_capacity(remaining.len() * d);
            for &i in &remaining {
                cand_data.extend_from_slice(&unlabeled.data()[i * d..(i + 1) * d]);
            }
            let cand = Tensor::from_vec(&[remaining.len(), d], cand_data);
            let pa = self.model_a.predict_proba(&Self::project(&cand, &self.view_a));
            let pb = self.model_b.predict_proba(&Self::project(&cand, &self.view_b));
            // Either model's confident prediction labels the example for both.
            let mut accepted: Vec<(usize, usize)> = Vec::new();
            for pos in 0..remaining.len() {
                let best = |probs: &Tensor| {
                    let row = probs.row(pos);
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(c, &p)| (c, p))
                        // itrust-lint: allow(panic-reachable) — probability rows always have n_classes ≥ 2 entries
                        .unwrap()
                };
                let (ca, fa) = best(&pa);
                let (cb, fb) = best(&pb);
                if fa >= self.confidence {
                    accepted.push((pos, ca));
                } else if fb >= self.confidence {
                    accepted.push((pos, cb));
                }
            }
            if accepted.is_empty() {
                break;
            }
            let mut new_x = pool_x.data().to_vec();
            let mut taken: Vec<usize> = Vec::with_capacity(accepted.len());
            for &(pos, class) in &accepted {
                let i = remaining[pos];
                new_x.extend_from_slice(&unlabeled.data()[i * d..(i + 1) * d]);
                pool_y.push(class);
                taken.push(pos);
            }
            pool_x = Tensor::from_vec(&[pool_y.len(), d], new_x);
            taken.sort_unstable_by(|a, b| b.cmp(a));
            for pos in taken {
                remaining.swap_remove(pos);
            }
        }
        // Final fit on the grown pool.
        let ds = Dataset::new(pool_x, pool_y);
        self.model_a.fit(&Dataset::new(Self::project(&ds.x, &self.view_a), ds.y.clone()));
        self.model_b.fit(&Dataset::new(Self::project(&ds.x, &self.view_b), ds.y));
    }

    /// Predict by averaging both views' probabilities.
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        let pa = self.model_a.predict_proba(&Self::project(x, &self.view_a));
        let pb = self.model_b.predict_proba(&Self::project(x, &self.view_b));
        pa.add(&pb).argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::{GaussianNb, LogisticRegression};
    use crate::metrics::accuracy;
    use crate::tensor::gaussian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 4-D blobs where each 2-D half is independently separable (so both
    /// co-training views work).
    fn blobs4(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut y = Vec::new();
        for class in 0..2usize {
            let c = if class == 0 { -2.0f32 } else { 2.0 };
            for _ in 0..n_per_class {
                for _ in 0..4 {
                    data.push(c + 0.8 * gaussian(&mut rng));
                }
                y.push(class);
            }
        }
        Dataset::new(Tensor::from_vec(&[n_per_class * 2, 4], data), y)
    }

    #[test]
    fn self_training_uses_unlabeled_data() {
        let mut rng = StdRng::seed_from_u64(40);
        let full = blobs4(300, 41);
        let (labeled, unlabeled_ds) = full.split_labeled(0.02, &mut rng);
        let test = blobs4(200, 42);

        // Supervised-only baseline on the tiny labeled set.
        let mut base = LogisticRegression::new(0.5, 200, 1e-4);
        base.fit(&labeled);
        let acc_supervised = accuracy(&test.y, &base.predict(&test.x));

        // Self-training with the unlabeled pool.
        let mut st = SelfTraining::new(LogisticRegression::new(0.5, 200, 1e-4), 0.9, 10);
        st.fit_semi(&labeled, &unlabeled_ds.x);
        let acc_semi = accuracy(&test.y, &st.predict(&test.x));

        assert!(
            acc_semi >= acc_supervised - 0.02,
            "self-training must not be much worse: semi {acc_semi} vs sup {acc_supervised}"
        );
        // History grew the pool.
        let h = st.history();
        assert!(h.len() >= 2, "at least one pseudo-labeling round");
        assert!(h.last().unwrap().labeled_size > labeled.len());
    }

    #[test]
    fn self_training_threshold_gates_growth() {
        let mut rng = StdRng::seed_from_u64(43);
        let full = blobs4(100, 44);
        let (labeled, unlabeled_ds) = full.split_labeled(0.1, &mut rng);
        // Threshold 1.01 > any probability: nothing can be pseudo-labeled.
        let mut st = SelfTraining::new(GaussianNb::new(), 1.0, 5);
        st.fit_semi(&labeled, &unlabeled_ds.x);
        // GaussianNB can emit exact 1.0 on deep points, so growth may be > 0,
        // but with max_per_round = 1 it is at most max_rounds.
        let mut st_capped =
            SelfTraining::new(GaussianNb::new(), 0.99, 3).with_max_per_round(1);
        st_capped.fit_semi(&labeled, &unlabeled_ds.x);
        let grown = st_capped.history().last().unwrap().labeled_size - labeled.len();
        assert!(grown <= 3, "cap 1/round × 3 rounds, got {grown}");
    }

    #[test]
    fn self_training_history_is_monotone() {
        let mut rng = StdRng::seed_from_u64(45);
        let full = blobs4(150, 46);
        let (labeled, unlabeled_ds) = full.split_labeled(0.05, &mut rng);
        let mut st = SelfTraining::new(GaussianNb::new(), 0.8, 8);
        st.fit_semi(&labeled, &unlabeled_ds.x);
        let h = st.history();
        for w in h.windows(2) {
            assert!(w[1].labeled_size >= w[0].labeled_size);
            assert!(w[1].remaining_unlabeled <= w[0].remaining_unlabeled);
        }
        // Conservation: labeled + remaining == total.
        let total = labeled.len() + unlabeled_ds.len();
        for s in h {
            assert_eq!(s.labeled_size + s.remaining_unlabeled, total);
        }
    }

    #[test]
    fn co_training_two_views_agree_on_blobs() {
        let mut rng = StdRng::seed_from_u64(47);
        let full = blobs4(200, 48);
        let (labeled, unlabeled_ds) = full.split_labeled(0.05, &mut rng);
        let test = blobs4(100, 49);
        let mut ct = CoTraining::new(
            GaussianNb::new(),
            LogisticRegression::new(0.5, 150, 1e-4),
            vec![0, 1],
            vec![2, 3],
            0.95,
            5,
        );
        ct.fit_semi(&labeled, &unlabeled_ds.x);
        let acc = accuracy(&test.y, &ct.predict(&test.x));
        assert!(acc > 0.9, "co-training accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn co_training_rejects_overlapping_views() {
        CoTraining::new(GaussianNb::new(), GaussianNb::new(), vec![0, 1], vec![1, 2], 0.9, 3);
    }

    #[test]
    fn self_training_as_classifier_trait() {
        // SelfTraining itself implements Classifier, so it can nest.
        let data = blobs4(50, 50);
        let mut st = SelfTraining::new(GaussianNb::new(), 0.9, 3);
        st.fit(&data);
        let preds = st.predict(&data.x);
        assert!(accuracy(&data.y, &preds) > 0.95);
        assert_eq!(st.n_classes(), 2);
    }
}
