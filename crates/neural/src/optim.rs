//! First-order optimizers: SGD with momentum and Adam.
//!
//! Optimizer state (velocities, moments) is keyed by parameter *position* in
//! the slice passed to [`Optimizer::step`]; callers must pass parameters in a
//! stable order across steps ([`crate::net::Sequential::params_mut`] does).

use crate::layers::Param;
use crate::tensor::Tensor;

/// A stateful gradient-descent optimizer.
pub trait Optimizer: Send {
    /// Apply one update to every parameter, consuming its accumulated
    /// gradient (gradients are *not* zeroed here; the trainer does that).
    fn step(&mut self, params: &mut [&mut Param]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (schedules / warm restarts).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// `momentum = 0.0` gives plain SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() < params.len() {
            // itrust-lint: allow(panic-reachable) — parameter and state slots are allocated together and stay index-aligned
            for p in params[self.velocity.len()..].iter() {
                self.velocity.push(Tensor::zeros(p.value.shape()));
            }
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if self.momentum > 0.0 {
                // v = μv − lr·g ; θ += v
                v.scale(self.momentum);
                v.axpy(-self.lr, &p.grad);
                p.value.axpy(1.0, v);
            } else {
                p.value.axpy(-self.lr, &p.grad);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the canonical defaults β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0);
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        while self.m.len() < params.len() {
            // itrust-lint: allow(panic-reachable) — parameter and state slots are allocated together and stay index-aligned
            let shape = params[self.m.len()].value.shape().to_vec();
            self.m.push(Tensor::zeros(&shape));
            self.v.push(Tensor::zeros(&shape));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad.data();
            let md = m.data_mut();
            let vd = v.data_mut();
            let theta = p.value.data_mut();
            for i in 0..g.len() {
                md[i] = self.beta1 * md[i] + (1.0 - self.beta1) * g[i];
                vd[i] = self.beta2 * vd[i] + (1.0 - self.beta2) * g[i] * g[i];
                let m_hat = md[i] / bc1;
                let v_hat = vd[i] / bc2;
                theta[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(θ) = (θ − 3)² with each optimizer; both must converge.
    fn run(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = Param::new(Tensor::from_vec(&[1], vec![0.0]));
        for _ in 0..steps {
            let theta = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (theta - 3.0);
            let mut params = [&mut p];
            opt.step(&mut params);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let theta = run(&mut opt, 100);
        assert!((theta - 3.0).abs() < 1e-3, "θ = {theta}");
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut heavy = Sgd::new(0.01, 0.9);
        let after_plain = run(&mut plain, 50);
        let after_heavy = run(&mut heavy, 50);
        assert!(
            (after_heavy - 3.0).abs() < (after_plain - 3.0).abs(),
            "momentum {after_heavy} vs plain {after_plain}"
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let theta = run(&mut opt, 200);
        assert!((theta - 3.0).abs() < 1e-2, "θ = {theta}");
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step ≈ lr · sign(g).
        let mut opt = Adam::new(0.1);
        let mut p = Param::new(Tensor::from_vec(&[1], vec![0.0]));
        p.grad.data_mut()[0] = 123.0;
        let mut params = [&mut p];
        opt.step(&mut params);
        assert!((p.value.data()[0] + 0.1).abs() < 1e-4, "got {}", p.value.data()[0]);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1, 0.0);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn multiple_params_tracked_independently() {
        let mut opt = Adam::new(0.1);
        let mut a = Param::new(Tensor::from_vec(&[1], vec![0.0]));
        let mut b = Param::new(Tensor::from_vec(&[2], vec![0.0, 0.0]));
        for _ in 0..100 {
            a.grad.data_mut()[0] = 2.0 * (a.value.data()[0] - 1.0);
            let bv: Vec<f32> = b.value.data().iter().map(|&t| 2.0 * (t + 2.0)).collect();
            b.grad.data_mut().copy_from_slice(&bv);
            let mut params = [&mut a, &mut b];
            opt.step(&mut params);
        }
        assert!((a.value.data()[0] - 1.0).abs() < 0.05);
        assert!((b.value.data()[0] + 2.0).abs() < 0.05);
        assert!((b.value.data()[1] + 2.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_nonpositive_lr() {
        Sgd::new(0.0, 0.0);
    }
}
