//! k-means clustering (Lloyd's algorithm with k-means++ seeding) — the
//! unsupervised paradigm in the paper's Section 2 taxonomy, used downstream
//! for grouping undescribed records.

use crate::tensor::Tensor;
use rand::Rng;

/// Result of a k-means fit.
#[derive(Debug, Clone)]
pub struct KMeansFit {
    /// Cluster centroids, `[k, d]`.
    pub centroids: Tensor,
    /// Assignment of each input row to a centroid index.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
}

/// Lloyd's algorithm with k-means++ initialization.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    tol: f64,
}

impl KMeans {
    /// `k` clusters, up to `max_iter` Lloyd iterations, stopping early when
    /// inertia improves by less than `tol` (relative).
    pub fn new(k: usize, max_iter: usize, tol: f64) -> Self {
        assert!(k > 0 && max_iter > 0 && tol >= 0.0);
        KMeans { k, max_iter, tol }
    }

    /// Fit to `x` (`[n, d]`, n ≥ k).
    pub fn fit<R: Rng>(&self, x: &Tensor, rng: &mut R) -> KMeansFit {
        assert_eq!(x.ndim(), 2);
        // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert!(n >= self.k, "need at least k points");
        let mut centroids = self.kmeanspp_init(x, rng);
        let mut assignments = vec![0usize; n];
        let mut prev_inertia = f64::INFINITY;
        let mut iterations = 0;
        for it in 0..self.max_iter {
            iterations = it + 1;
            // Assign.
            let mut inertia = 0.0f64;
            for (i, slot) in assignments.iter_mut().enumerate() {
                let (best, dist) = nearest(x.row(i), &centroids, self.k, d);
                *slot = best;
                inertia += dist as f64;
            }
            // Update.
            let mut sums = vec![0.0f32; self.k * d];
            let mut counts = vec![0usize; self.k];
            for (i, &c) in assignments.iter().enumerate() {
                counts[c] += 1;
                for (s, &v) in sums[c * d..(c + 1) * d].iter_mut().zip(x.row(i)) {
                    *s += v;
                }
            }
            for c in 0..self.k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from its
                    // centroid (standard fix for dead centroids).
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da = sq_dist(x.row(a), &centroids[assignments[a] * d..], d);
                            let db = sq_dist(x.row(b), &centroids[assignments[b] * d..], d);
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        // itrust-lint: allow(panic-reachable) — fit() rejects empty datasets, so 0..n is never empty
                        .unwrap();
                    centroids[c * d..(c + 1) * d].copy_from_slice(x.row(far));
                } else {
                    for (j, s) in sums[c * d..(c + 1) * d].iter().enumerate() {
                        centroids[c * d + j] = s / counts[c] as f32;
                    }
                }
            }
            let converged = prev_inertia.is_finite()
                && (prev_inertia - inertia).abs() <= self.tol * prev_inertia.max(1e-12);
            prev_inertia = inertia;
            if converged {
                break;
            }
        }
        // Final assignment pass against the last centroids.
        let mut inertia = 0.0f64;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let (best, dist) = nearest(x.row(i), &centroids, self.k, d);
            *slot = best;
            inertia += dist as f64;
        }
        KMeansFit {
            centroids: Tensor::from_vec(&[self.k, d], centroids),
            assignments,
            inertia,
            iterations,
        }
    }

    fn kmeanspp_init<R: Rng>(&self, x: &Tensor, rng: &mut R) -> Vec<f32> {
        // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let mut centroids = Vec::with_capacity(self.k * d);
        let first = rng.gen_range(0..n);
        centroids.extend_from_slice(x.row(first));
        let mut dists: Vec<f32> = (0..n)
            .map(|i| sq_dist(x.row(i), &centroids[0..d], d))
            .collect();
        for _ in 1..self.k {
            let total: f32 = dists.iter().sum();
            let next = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &dist) in dists.iter().enumerate() {
                    if target < dist {
                        chosen = i;
                        break;
                    }
                    target -= dist;
                }
                chosen
            };
            let start = centroids.len();
            centroids.extend_from_slice(x.row(next));
            for (i, dv) in dists.iter_mut().enumerate() {
                let nd = sq_dist(x.row(i), &centroids[start..start + d], d);
                if nd < *dv {
                    *dv = nd;
                }
            }
        }
        centroids
    }

    /// Assign new points to the nearest fitted centroid.
    pub fn assign(fit: &KMeansFit, x: &Tensor) -> Vec<usize> {
        // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
        let d = fit.centroids.shape()[1];
        let k = fit.centroids.shape()[0];
        (0..x.shape()[0])
            .map(|i| nearest(x.row(i), fit.centroids.data(), k, d).0)
            .collect()
    }
}

fn sq_dist(a: &[f32], b: &[f32], d: usize) -> f32 {
    // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
    (0..d).map(|j| (a[j] - b[j]) * (a[j] - b[j])).sum()
}

fn nearest(point: &[f32], centroids: &[f32], k: usize, d: usize) -> (usize, f32) {
    let mut best = 0;
    let mut best_dist = f32::INFINITY;
    for c in 0..k {
        // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
        let dist = sq_dist(point, &centroids[c * d..(c + 1) * d], d);
        if dist < best_dist {
            best_dist = dist;
            best = c;
        }
    }
    (best, best_dist)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::three_blobs;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_three_blobs() {
        let data = three_blobs(100, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let fit = KMeans::new(3, 100, 1e-6).fit(&data.x, &mut rng);
        // Purity: each cluster should be dominated by one true class.
        let mut purity_num = 0usize;
        for cluster in 0..3 {
            let mut counts = [0usize; 3];
            for (i, &a) in fit.assignments.iter().enumerate() {
                if a == cluster {
                    counts[data.y[i]] += 1;
                }
            }
            purity_num += counts.iter().max().unwrap();
        }
        let purity = purity_num as f64 / data.len() as f64;
        assert!(purity > 0.95, "purity {purity}");
        assert!(fit.inertia.is_finite());
        assert!(fit.iterations >= 1);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = three_blobs(60, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let one = KMeans::new(1, 50, 1e-6).fit(&data.x, &mut rng).inertia;
        let three = KMeans::new(3, 50, 1e-6).fit(&data.x, &mut rng).inertia;
        let six = KMeans::new(6, 50, 1e-6).fit(&data.x, &mut rng).inertia;
        assert!(three < one);
        assert!(six < three);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let x = Tensor::from_vec(&[3, 2], vec![0.0, 0.0, 5.0, 5.0, 9.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(24);
        let fit = KMeans::new(3, 20, 1e-9).fit(&x, &mut rng);
        assert!(fit.inertia < 1e-9, "inertia {}", fit.inertia);
        // All three points get distinct clusters.
        let mut seen = fit.assignments.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn assign_maps_new_points_to_nearest() {
        let data = three_blobs(50, 25);
        let mut rng = StdRng::seed_from_u64(26);
        let fit = KMeans::new(3, 50, 1e-6).fit(&data.x, &mut rng);
        // A point at a blob center should map to the same cluster as the
        // blob members.
        let probe = Tensor::from_vec(&[1, 2], vec![-3.0, 0.0]);
        let assigned = KMeans::assign(&fit, &probe)[0];
        let mut votes = [0usize; 3];
        for (i, &a) in fit.assignments.iter().enumerate() {
            if data.y[i] == 0 {
                votes[a] += 1;
            }
        }
        let majority = votes.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        assert_eq!(assigned, majority);
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let x = Tensor::from_vec(&[6, 1], vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(27);
        let fit = KMeans::new(2, 20, 1e-9).fit(&x, &mut rng);
        assert!(fit.inertia < 1e-9);
        assert!(fit.centroids.all_finite());
    }
}
