//! Multiclass logistic regression (softmax regression) trained by
//! full-batch gradient descent with L2 regularization.

use super::Classifier;
use crate::data::Dataset;
use crate::loss::softmax;
use crate::tensor::Tensor;

/// Softmax regression: `P(c | x) = softmax(xW + b)`.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    lr: f32,
    epochs: usize,
    l2: f32,
    weight: Option<Tensor>,
    bias: Option<Tensor>,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new(0.5, 300, 1e-4)
    }
}

impl LogisticRegression {
    /// Configure learning rate, epoch count, and L2 penalty.
    pub fn new(lr: f32, epochs: usize, l2: f32) -> Self {
        assert!(lr > 0.0 && epochs > 0 && l2 >= 0.0);
        LogisticRegression { lr, epochs, l2, weight: None, bias: None }
    }

    fn logits(&self, x: &Tensor) -> Tensor {
        // itrust-lint: allow(panic-reachable) — documented precondition: predict before fit is caller error, not a recoverable state
        let w = self.weight.as_ref().expect("model not fitted");
        // itrust-lint: allow(panic-reachable) — bias is set together with weight in fit()
        let b = self.bias.as_ref().unwrap();
        x.matmul(w).add_row_bias(b)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let k = data.n_classes().max(2);
        let d = data.dim();
        let n = data.len();
        let mut w = Tensor::zeros(&[d, k]);
        let mut b = Tensor::zeros(&[k]);
        let inv_n = 1.0 / n as f32;
        for _ in 0..self.epochs {
            let logits = data.x.matmul(&w).add_row_bias(&b);
            let mut grad = softmax(&logits); // p
            for (r, &t) in data.y.iter().enumerate() {
                *grad.at2_mut(r, t) -= 1.0; // p - y
            }
            grad.scale(inv_n);
            let mut dw = data.x.transpose2().matmul(&grad);
            if self.l2 > 0.0 {
                dw.axpy(self.l2, &w);
            }
            let db = grad.sum_rows();
            w.axpy(-self.lr, &dw);
            b.axpy(-self.lr, &db);
        }
        self.weight = Some(w);
        self.bias = Some(b);
    }

    fn predict_proba(&self, x: &Tensor) -> Tensor {
        softmax(&self.logits(x))
    }

    fn n_classes(&self) -> usize {
        self.bias.as_ref().map_or(0, |b| b.len())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{blobs, three_blobs};
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn separates_blobs() {
        let data = blobs(100, 10);
        let mut lr = LogisticRegression::default();
        lr.fit(&data);
        assert_eq!(lr.n_classes(), 2);
        assert!(accuracy(&data.y, &lr.predict(&data.x)) > 0.97);
    }

    #[test]
    fn multiclass_blobs() {
        let data = three_blobs(80, 11);
        let mut lr = LogisticRegression::default();
        lr.fit(&data);
        assert!(accuracy(&data.y, &lr.predict(&data.x)) > 0.95);
    }

    #[test]
    fn probabilities_sum_to_one_and_reflect_margin() {
        let data = blobs(200, 12);
        let mut lr = LogisticRegression::default();
        lr.fit(&data);
        let deep0 = Tensor::from_vec(&[1, 2], vec![-3.0, -3.0]);
        let p = lr.predict_proba(&deep0);
        assert!(p.at2(0, 0) > 0.95, "deep in class 0: {}", p.at2(0, 0));
        let sum: f32 = p.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn l2_regularization_shrinks_weights() {
        let data = blobs(100, 13);
        let mut free = LogisticRegression::new(0.5, 300, 0.0);
        let mut ridge = LogisticRegression::new(0.5, 300, 0.5);
        free.fit(&data);
        ridge.fit(&data);
        let wf = free.weight.as_ref().unwrap().norm();
        let wr = ridge.weight.as_ref().unwrap().norm();
        assert!(wr < wf, "ridge {wr} vs free {wf}");
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        // All labels 0: model must still emit valid distributions.
        let x = Tensor::from_vec(&[3, 1], vec![1.0, 2.0, 3.0]);
        let data = Dataset::new(x.clone(), vec![0, 0, 0]);
        let mut lr = LogisticRegression::new(0.1, 50, 0.0);
        lr.fit(&data);
        let p = lr.predict_proba(&x);
        assert!(p.all_finite());
        assert_eq!(lr.predict(&x), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        let lr = LogisticRegression::default();
        lr.predict_proba(&Tensor::zeros(&[1, 2]));
    }
}
