//! CART-style decision tree classifier (Gini impurity, axis-aligned
//! splits) — the interpretable model option for archival appraisal rules,
//! where a human must be able to audit why a record was selected.

use super::Classifier;
use crate::data::Dataset;
use crate::tensor::Tensor;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class probability distribution at this leaf.
        probs: Vec<f32>,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Binary decision tree grown greedily on Gini impurity.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples_split: usize,
    root: Option<Node>,
    k: usize,
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new(8, 2)
    }
}

impl DecisionTree {
    /// Configure maximum depth and the minimum node size eligible for a
    /// further split.
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        assert!(max_depth >= 1 && min_samples_split >= 2);
        DecisionTree { max_depth, min_samples_split, root: None, k: 0 }
    }

    /// Depth of the fitted tree (0 = single leaf).
    pub fn depth(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(left).max(walk(right)),
            }
        }
        self.root.as_ref().map_or(0, walk)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => walk(left) + walk(right),
            }
        }
        self.root.as_ref().map_or(0, walk)
    }

    fn gini(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
    }

    fn leaf(indices: &[usize], data: &Dataset, k: usize) -> Node {
        let mut counts = vec![0usize; k];
        for &i in indices {
            // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
            counts[data.y[i]] += 1;
        }
        let total = indices.len().max(1) as f32;
        Node::Leaf { probs: counts.iter().map(|&c| c as f32 / total).collect() }
    }

    fn grow(&self, indices: &[usize], data: &Dataset, depth: usize, k: usize) -> Node {
        let mut counts = vec![0usize; k];
        for &i in indices {
            // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
            counts[data.y[i]] += 1;
        }
        let parent_gini = Self::gini(&counts, indices.len());
        if depth >= self.max_depth
            || indices.len() < self.min_samples_split
            || parent_gini == 0.0
        {
            return Self::leaf(indices, data, k);
        }
        let d = data.dim();
        let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, weighted gini)
        let mut sorted = indices.to_vec();
        for f in 0..d {
            sorted.sort_by(|&a, &b| {
                data.x.row(a)[f]
                    .partial_cmp(&data.x.row(b)[f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_counts = vec![0usize; k];
            let mut right_counts = counts.clone();
            for split in 1..sorted.len() {
                let moved = sorted[split - 1];
                left_counts[data.y[moved]] += 1;
                right_counts[data.y[moved]] -= 1;
                let lo = data.x.row(sorted[split - 1])[f];
                let hi = data.x.row(sorted[split])[f];
                if lo == hi {
                    continue; // cannot split between identical values
                }
                let threshold = (lo + hi) / 2.0;
                let nl = split;
                let nr = sorted.len() - split;
                let weighted = (nl as f64 * Self::gini(&left_counts, nl)
                    + nr as f64 * Self::gini(&right_counts, nr))
                    / sorted.len() as f64;
                if best.is_none_or(|(_, _, g)| weighted < g) {
                    best = Some((f, threshold, weighted));
                }
            }
        }
        // Split whenever a valid threshold exists, even at zero immediate
        // gain (CART semantics) — required for XOR-like targets where the
        // first useful gain only appears one level deeper.
        match best {
            Some((feature, threshold, _weighted)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.x.row(i)[feature] <= threshold);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return Self::leaf(indices, data, k);
                }
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.grow(&left_idx, data, depth + 1, k)),
                    right: Box::new(self.grow(&right_idx, data, depth + 1, k)),
                }
            }
            _ => Self::leaf(indices, data, k),
        }
    }

    fn probs_for<'a>(&'a self, row: &[f32]) -> &'a [f32] {
        // itrust-lint: allow(panic-reachable) — documented precondition: predict before fit is caller error, not a recoverable state
        let mut node = self.root.as_ref().expect("model not fitted");
        loop {
            match node {
                Node::Leaf { probs } => return probs,
                Node::Split { feature, threshold, left, right } => {
                    // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
                    node = if row[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let k = data.n_classes();
        let indices: Vec<usize> = (0..data.len()).collect();
        self.root = Some(self.grow(&indices, data, 0, k));
        self.k = k;
    }

    fn predict_proba(&self, x: &Tensor) -> Tensor {
        // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
        let n = x.shape()[0];
        let mut out = Tensor::zeros(&[n, self.k]);
        for r in 0..n {
            let probs = self.probs_for(x.row(r));
            for (c, &p) in probs.iter().enumerate() {
                *out.at2_mut(r, c) = p;
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{blobs, three_blobs};
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn fits_blobs_perfectly_in_sample() {
        let data = blobs(50, 30);
        let mut tree = DecisionTree::default();
        tree.fit(&data);
        assert!(accuracy(&data.y, &tree.predict(&data.x)) > 0.98);
    }

    #[test]
    fn learns_xor_unlike_linear_models() {
        // XOR: the canonical case where trees beat logistic regression.
        let x = Tensor::from_vec(&[8, 2], vec![
            0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0,
            0.1, 0.1, 0.1, 0.9, 0.9, 0.1, 0.9, 0.9,
        ]);
        let y = vec![0, 1, 1, 0, 0, 1, 1, 0];
        let data = Dataset::new(x.clone(), y.clone());
        // Greedy zero-gain tie-breaking can pick unhelpful first splits on
        // perfectly symmetric XOR, so allow generous depth.
        let mut tree = DecisionTree::new(8, 2);
        tree.fit(&data);
        assert_eq!(tree.predict(&x), y);
    }

    #[test]
    fn max_depth_limits_tree() {
        let data = three_blobs(60, 31);
        let mut stump = DecisionTree::new(1, 2);
        stump.fit(&data);
        assert!(stump.depth() <= 1);
        assert!(stump.leaf_count() <= 2);
        let mut deep = DecisionTree::new(10, 2);
        deep.fit(&data);
        assert!(deep.depth() >= stump.depth());
    }

    #[test]
    fn pure_node_stops_splitting() {
        let x = Tensor::from_vec(&[4, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let data = Dataset::new(x, vec![0, 0, 0, 0]);
        let mut tree = DecisionTree::default();
        tree.fit(&data);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Tensor::from_vec(&[4, 2], vec![5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0]);
        let data = Dataset::new(x.clone(), vec![0, 1, 0, 1]);
        let mut tree = DecisionTree::default();
        tree.fit(&data);
        assert_eq!(tree.leaf_count(), 1);
        // Probabilities reflect the class mix.
        let p = tree.predict_proba(&x);
        assert!((p.at2(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn probabilities_are_leaf_distributions() {
        let x = Tensor::from_vec(&[6, 1], vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0]);
        let data = Dataset::new(x, vec![0, 1, 0, 1, 1, 1]);
        let mut tree = DecisionTree::new(1, 2);
        tree.fit(&data);
        // The best depth-1 split lands between 3 and 10, giving a mixed left
        // leaf {0,1,0} and a pure right leaf.
        let probe = Tensor::from_vec(&[2, 1], vec![0.0, 100.0]);
        let p = tree.predict_proba(&probe);
        assert!((p.at2(0, 0) - 2.0 / 3.0).abs() < 1e-5);
        assert!((p.at2(1, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multiclass_accuracy() {
        let data = three_blobs(60, 32);
        let mut tree = DecisionTree::new(6, 2);
        tree.fit(&data);
        assert!(accuracy(&data.y, &tree.predict(&data.x)) > 0.95);
    }
}
