//! Classical (non-deep) machine learning: the workhorses the paper's
//! archival studies lean on for text classification, clustering, and
//! review prioritization.

mod bayes;
mod kmeans;
mod logistic;
mod tree;

pub use bayes::{GaussianNb, MultinomialNb};
pub use kmeans::KMeans;
pub use logistic::LogisticRegression;
pub use tree::DecisionTree;

use crate::data::Dataset;
use crate::tensor::Tensor;

/// A supervised classifier over dense feature vectors.
///
/// The semi-supervised meta-learners in [`crate::semi`] are generic over
/// this trait, so any model here (or a [`crate::net::Sequential`] wrapper)
/// can be self-trained.
pub trait Classifier: Send {
    /// Fit to a labeled dataset, replacing any previous fit.
    fn fit(&mut self, data: &Dataset);

    /// Per-class probabilities, shape `[rows, n_classes]`, rows summing
    /// to 1.
    fn predict_proba(&self, x: &Tensor) -> Tensor;

    /// Number of classes the model was fitted with.
    fn n_classes(&self) -> usize;

    /// Hard class predictions (argmax of probabilities).
    fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::tensor::gaussian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two well-separated Gaussian blobs in 2-D: class 0 near (-2,-2),
    /// class 1 near (2,2).
    pub fn blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n_per_class * 4);
        let mut y = Vec::with_capacity(n_per_class * 2);
        for class in 0..2usize {
            let center = if class == 0 { -2.0 } else { 2.0 };
            for _ in 0..n_per_class {
                data.push(center + 0.7 * gaussian(&mut rng));
                data.push(center + 0.7 * gaussian(&mut rng));
                y.push(class);
            }
        }
        Dataset::new(Tensor::from_vec(&[n_per_class * 2, 2], data), y)
    }

    /// Three blobs for multiclass tests.
    pub fn three_blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(-3.0f32, 0.0f32), (3.0, 0.0), (0.0, 4.0)];
        let mut data = Vec::new();
        let mut y = Vec::new();
        for (class, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                data.push(cx + 0.6 * gaussian(&mut rng));
                data.push(cy + 0.6 * gaussian(&mut rng));
                y.push(class);
            }
        }
        Dataset::new(Tensor::from_vec(&[n_per_class * 3, 2], data), y)
    }
}
