//! Naive Bayes classifiers: Gaussian (continuous features) and multinomial
//! (count features — the standard baseline for text such as TF vectors).

use super::Classifier;
use crate::data::Dataset;
use crate::tensor::Tensor;

/// Gaussian naive Bayes: per-class, per-feature normal densities with a
/// variance floor for numerical stability.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    /// log P(class)
    log_prior: Vec<f64>,
    /// means[class][feature]
    means: Vec<Vec<f64>>,
    /// vars[class][feature]
    vars: Vec<Vec<f64>>,
    dim: usize,
}

impl GaussianNb {
    /// Unfitted model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let k = data.n_classes();
        let d = data.dim();
        let n = data.len();
        let mut counts = vec![0usize; k];
        let mut means = vec![vec![0.0f64; d]; k];
        for i in 0..n {
            // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
            let c = data.y[i];
            counts[c] += 1;
            for (m, &v) in means[c].iter_mut().zip(data.x.row(i)) {
                *m += v as f64;
            }
        }
        for c in 0..k {
            for m in &mut means[c] {
                *m /= counts[c].max(1) as f64;
            }
        }
        let mut vars = vec![vec![0.0f64; d]; k];
        for i in 0..n {
            let c = data.y[i];
            for (j, &v) in data.x.row(i).iter().enumerate() {
                let diff = v as f64 - means[c][j];
                vars[c][j] += diff * diff;
            }
        }
        // Variance floor: 1e-9 × max feature variance, as scikit-learn does.
        let global_var: f64 = {
            let total_mean: Vec<f64> = (0..d)
                .map(|j| (0..n).map(|i| data.x.row(i)[j] as f64).sum::<f64>() / n as f64)
                .collect();
            (0..d)
                .map(|j| {
                    (0..n)
                        .map(|i| {
                            let diff = data.x.row(i)[j] as f64 - total_mean[j];
                            diff * diff
                        })
                        .sum::<f64>()
                        / n as f64
                })
                .fold(0.0, f64::max)
        };
        let floor = (1e-9 * global_var).max(1e-9);
        for c in 0..k {
            for v in &mut vars[c] {
                *v = (*v / counts[c].max(1) as f64).max(floor);
            }
        }
        self.log_prior = counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / n as f64).ln())
            .collect();
        self.means = means;
        self.vars = vars;
        self.dim = d;
    }

    fn predict_proba(&self, x: &Tensor) -> Tensor {
        assert!(!self.means.is_empty(), "model not fitted");
        // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
        assert_eq!(x.shape()[1], self.dim);
        let k = self.means.len();
        let n = x.shape()[0];
        let mut out = Tensor::zeros(&[n, k]);
        for r in 0..n {
            let row = x.row(r);
            let mut log_post: Vec<f64> = (0..k)
                .map(|c| {
                    let mut lp = self.log_prior[c];
                    for (j, &v) in row.iter().enumerate() {
                        let mean = self.means[c][j];
                        let var = self.vars[c][j];
                        let diff = v as f64 - mean;
                        lp +=
                            -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
                    }
                    lp
                })
                .collect();
            let max = log_post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut denom = 0.0;
            for lp in &mut log_post {
                *lp = (*lp - max).exp();
                denom += *lp;
            }
            for (c, lp) in log_post.iter().enumerate() {
                *out.at2_mut(r, c) = (lp / denom) as f32;
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.means.len()
    }
}

/// Multinomial naive Bayes with Laplace (add-α) smoothing, for non-negative
/// count features (term frequencies).
#[derive(Debug, Clone)]
pub struct MultinomialNb {
    alpha: f64,
    log_prior: Vec<f64>,
    /// log P(feature | class)
    log_likelihood: Vec<Vec<f64>>,
    dim: usize,
}

impl Default for MultinomialNb {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl MultinomialNb {
    /// `alpha` is the Laplace smoothing constant (1.0 = classic add-one).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "smoothing must be positive");
        MultinomialNb { alpha, log_prior: Vec::new(), log_likelihood: Vec::new(), dim: 0 }
    }
}

impl Classifier for MultinomialNb {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty());
        let k = data.n_classes();
        let d = data.dim();
        let mut class_counts = vec![0usize; k];
        let mut feature_counts = vec![vec![0.0f64; d]; k];
        for i in 0..data.len() {
            // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
            let c = data.y[i];
            class_counts[c] += 1;
            for (fc, &v) in feature_counts[c].iter_mut().zip(data.x.row(i)) {
                debug_assert!(v >= 0.0, "multinomial NB requires non-negative features");
                *fc += v as f64;
            }
        }
        self.log_prior = class_counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / data.len() as f64).ln())
            .collect();
        self.log_likelihood = feature_counts
            .iter()
            .map(|counts| {
                let total: f64 = counts.iter().sum::<f64>() + self.alpha * d as f64;
                counts.iter().map(|&c| ((c + self.alpha) / total).ln()).collect()
            })
            .collect();
        self.dim = d;
    }

    fn predict_proba(&self, x: &Tensor) -> Tensor {
        assert!(!self.log_likelihood.is_empty(), "model not fitted");
        // itrust-lint: allow(panic-reachable) — row/column loops are bounded by the dataset dims validated in fit
        assert_eq!(x.shape()[1], self.dim);
        let k = self.log_likelihood.len();
        let n = x.shape()[0];
        let mut out = Tensor::zeros(&[n, k]);
        for r in 0..n {
            let row = x.row(r);
            let mut log_post: Vec<f64> = (0..k)
                .map(|c| {
                    self.log_prior[c]
                        + row
                            .iter()
                            .zip(&self.log_likelihood[c])
                            .map(|(&v, &ll)| v as f64 * ll)
                            .sum::<f64>()
                })
                .collect();
            let max = log_post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut denom = 0.0;
            for lp in &mut log_post {
                *lp = (*lp - max).exp();
                denom += *lp;
            }
            for (c, lp) in log_post.iter().enumerate() {
                *out.at2_mut(r, c) = (lp / denom) as f32;
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.log_likelihood.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{blobs, three_blobs};
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn gaussian_nb_separates_blobs() {
        let data = blobs(100, 1);
        let mut nb = GaussianNb::new();
        nb.fit(&data);
        assert_eq!(nb.n_classes(), 2);
        let preds = nb.predict(&data.x);
        assert!(accuracy(&data.y, &preds) > 0.97);
    }

    #[test]
    fn gaussian_nb_multiclass() {
        let data = three_blobs(80, 2);
        let mut nb = GaussianNb::new();
        nb.fit(&data);
        let preds = nb.predict(&data.x);
        assert!(accuracy(&data.y, &preds) > 0.95);
    }

    #[test]
    fn gaussian_nb_probabilities_are_calibrated_at_midpoint() {
        let data = blobs(500, 3);
        let mut nb = GaussianNb::new();
        nb.fit(&data);
        // The point (0,0) is equidistant from both blobs: P ≈ 0.5 each.
        let mid = Tensor::from_vec(&[1, 2], vec![0.0, 0.0]);
        let p = nb.predict_proba(&mid);
        assert!((p.at2(0, 0) - 0.5).abs() < 0.15, "p0 = {}", p.at2(0, 0));
        let s: f32 = p.row(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gaussian_nb_constant_feature_is_stable() {
        // Feature 1 is identical for every example — needs the variance floor.
        let x = Tensor::from_vec(&[4, 2], vec![0.0, 5.0, 0.1, 5.0, 10.0, 5.0, 10.1, 5.0]);
        let data = Dataset::new(x.clone(), vec![0, 0, 1, 1]);
        let mut nb = GaussianNb::new();
        nb.fit(&data);
        let p = nb.predict_proba(&x);
        assert!(p.all_finite());
        assert_eq!(nb.predict(&x), vec![0, 0, 1, 1]);
    }

    #[test]
    fn multinomial_nb_classifies_word_counts() {
        // Vocabulary: [archive, record, pixel, image].
        // Class 0 = textual docs, class 1 = imaging docs.
        let x = Tensor::from_vec(&[6, 4], vec![
            3.0, 2.0, 0.0, 0.0,
            4.0, 1.0, 0.0, 1.0,
            2.0, 3.0, 1.0, 0.0,
            0.0, 0.0, 3.0, 2.0,
            0.0, 1.0, 4.0, 4.0,
            1.0, 0.0, 2.0, 3.0,
        ]);
        let data = Dataset::new(x.clone(), vec![0, 0, 0, 1, 1, 1]);
        let mut nb = MultinomialNb::new(1.0);
        nb.fit(&data);
        assert_eq!(nb.predict(&x), vec![0, 0, 0, 1, 1, 1]);
        // Unseen doc heavy on "pixel image" → class 1.
        let probe = Tensor::from_vec(&[1, 4], vec![0.0, 0.0, 5.0, 5.0]);
        assert_eq!(nb.predict(&probe), vec![1]);
    }

    #[test]
    fn multinomial_nb_smoothing_handles_unseen_words() {
        let x = Tensor::from_vec(&[2, 3], vec![5.0, 0.0, 0.0, 0.0, 5.0, 0.0]);
        let data = Dataset::new(x, vec![0, 1]);
        let mut nb = MultinomialNb::new(1.0);
        nb.fit(&data);
        // Feature 2 never appears in training; prediction must stay finite.
        let probe = Tensor::from_vec(&[1, 3], vec![0.0, 0.0, 10.0]);
        let p = nb.predict_proba(&probe);
        assert!(p.all_finite());
    }

    #[test]
    fn class_priors_break_ties() {
        // Identical likelihoods, imbalanced priors → majority class wins.
        let x = Tensor::from_vec(&[4, 1], vec![1.0, 1.0, 1.0, 1.0]);
        let data = Dataset::new(x, vec![0, 0, 0, 1]);
        let mut nb = MultinomialNb::new(1.0);
        nb.fit(&data);
        let probe = Tensor::from_vec(&[1, 1], vec![1.0]);
        assert_eq!(nb.predict(&probe), vec![0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fitting_empty_dataset_panics() {
        let data = Dataset::new(Tensor::zeros(&[0, 2]), vec![]);
        GaussianNb::new().fit(&data);
    }
}
