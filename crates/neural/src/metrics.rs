//! Evaluation metrics: classification, detection (IoU / average precision),
//! and the confusion matrix underlying them.

/// Row-normalized confusion matrix and derived per-class statistics.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    k: usize,
    /// `counts[true][pred]`.
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from parallel slices of true and predicted labels.
    pub fn from_pairs(truth: &[usize], pred: &[usize], classes: usize) -> Self {
        assert_eq!(truth.len(), pred.len());
        let mut counts = vec![vec![0usize; classes]; classes];
        for (&t, &p) in truth.iter().zip(pred) {
            assert!(t < classes && p < classes, "label out of range");
            // itrust-lint: allow(panic-reachable) — indices pair predictions with labels of equal, checked length
            counts[t][p] += 1;
        }
        ConfusionMatrix { k: classes, counts }
    }

    /// Raw count of (true=t, pred=p).
    pub fn count(&self, t: usize, p: usize) -> usize {
        // itrust-lint: allow(panic-reachable) — indices pair predictions with labels of equal, checked length
        self.counts[t][p]
    }

    /// Overall accuracy. 1.0 on empty input (vacuous).
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 1.0;
        }
        // itrust-lint: allow(panic-reachable) — indices pair predictions with labels of equal, checked length
        let correct: usize = (0..self.k).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Precision of class `c` (0.0 when the class is never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        // itrust-lint: allow(panic-reachable) — indices pair predictions with labels of equal, checked length
        let predicted: usize = (0..self.k).map(|t| self.counts[t][c]).sum();
        if predicted == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / predicted as f64
        }
    }

    /// Recall of class `c` (0.0 when the class never occurs).
    pub fn recall(&self, c: usize) -> f64 {
        // itrust-lint: allow(panic-reachable) — indices pair predictions with labels of equal, checked length
        let actual: usize = self.counts[c].iter().sum();
        if actual == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / actual as f64
        }
    }

    /// F1 of class `c`.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over classes that occur in the truth.
    pub fn macro_f1(&self) -> f64 {
        let present: Vec<usize> = (0..self.k)
            // itrust-lint: allow(panic-reachable) — indices pair predictions with labels of equal, checked length
            .filter(|&c| self.counts[c].iter().sum::<usize>() > 0)
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.f1(c)).sum::<f64>() / present.len() as f64
    }
}

/// Fraction of matching positions in two label slices. 1.0 on empty input.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 1.0;
    }
    let correct = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// Axis-aligned box `(x0, y0, x1, y1)` in pixel coordinates, inclusive of
/// x0/y0 and exclusive of x1/y1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Left edge.
    pub x0: f32,
    /// Top edge.
    pub y0: f32,
    /// Right edge (exclusive).
    pub x1: f32,
    /// Bottom edge (exclusive).
    pub y1: f32,
}

impl BBox {
    /// Construct; normalizes so `x0 ≤ x1`, `y0 ≤ y1`.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        BBox { x0: x0.min(x1), y0: y0.min(y1), x1: x0.max(x1), y1: y0.max(y1) }
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        (self.x1 - self.x0).max(0.0) * (self.y1 - self.y0).max(0.0)
    }

    /// Intersection-over-union with another box, in `[0, 1]`.
    pub fn iou(&self, other: &BBox) -> f32 {
        let ix0 = self.x0.max(other.x0);
        let iy0 = self.y0.max(other.y0);
        let ix1 = self.x1.min(other.x1);
        let iy1 = self.y1.min(other.y1);
        let inter = (ix1 - ix0).max(0.0) * (iy1 - iy0).max(0.0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Center point.
    pub fn center(&self) -> (f32, f32) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }
}

/// A scored detection for average-precision computation.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Predicted box.
    pub bbox: BBox,
    /// Confidence score (higher = more confident).
    pub score: f32,
}

/// Precision/recall summary of matching `detections` against
/// `ground_truth` at an IoU threshold. Greedy matching in descending score
/// order; each ground-truth box matches at most one detection.
#[derive(Debug, Clone, Copy)]
pub struct DetectionEval {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives (unmatched ground truth).
    pub fn_: usize,
    /// tp / (tp + fp); 1.0 when nothing was detected and nothing existed.
    pub precision: f64,
    /// tp / (tp + fn).
    pub recall: f64,
}

/// Match detections to ground truth at `iou_threshold` and summarize.
pub fn evaluate_detections(
    detections: &[Detection],
    ground_truth: &[BBox],
    iou_threshold: f32,
) -> DetectionEval {
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| {
        // itrust-lint: allow(panic-reachable) — indices pair predictions with labels of equal, checked length
        detections[b]
            .score
            .partial_cmp(&detections[a].score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut matched = vec![false; ground_truth.len()];
    let mut tp = 0usize;
    let mut fp = 0usize;
    for &di in &order {
        let det = &detections[di];
        let mut best: Option<(usize, f32)> = None;
        for (gi, gt) in ground_truth.iter().enumerate() {
            if matched[gi] {
                continue;
            }
            let iou = det.bbox.iou(gt);
            if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        match best {
            Some((gi, _)) => {
                matched[gi] = true;
                tp += 1;
            }
            None => fp += 1,
        }
    }
    let fn_ = matched.iter().filter(|&&m| !m).count();
    let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 1.0 } else { tp as f64 / (tp + fn_) as f64 };
    DetectionEval { tp, fp, fn_, precision, recall }
}

/// Average precision (area under the interpolated PR curve) for one class,
/// computed over a whole evaluation set: `per_image` pairs each image's
/// detections with its ground-truth boxes.
pub fn average_precision(per_image: &[(Vec<Detection>, Vec<BBox>)], iou_threshold: f32) -> f64 {
    // Flatten: each detection needs a global (score, is_tp) after greedy
    // per-image matching.
    let mut scored: Vec<(f32, bool)> = Vec::new();
    let mut total_gt = 0usize;
    for (dets, gts) in per_image {
        total_gt += gts.len();
        let mut order: Vec<usize> = (0..dets.len()).collect();
        order.sort_by(|&a, &b| {
            // itrust-lint: allow(panic-reachable) — indices pair predictions with labels of equal, checked length
            dets[b].score.partial_cmp(&dets[a].score).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut matched = vec![false; gts.len()];
        for &di in &order {
            let det = &dets[di];
            let mut best: Option<(usize, f32)> = None;
            for (gi, gt) in gts.iter().enumerate() {
                if matched[gi] {
                    continue;
                }
                let iou = det.bbox.iou(gt);
                if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                    best = Some((gi, iou));
                }
            }
            match best {
                Some((gi, _)) => {
                    matched[gi] = true;
                    scored.push((det.score, true));
                }
                None => scored.push((det.score, false)),
            }
        }
    }
    if total_gt == 0 {
        return if scored.is_empty() { 1.0 } else { 0.0 };
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    // Precision at each recall step, then interpolate (max to the right).
    let mut tp = 0usize;
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(scored.len()); // (recall, precision)
    for (i, &(_, is_tp)) in scored.iter().enumerate() {
        if is_tp {
            tp += 1;
        }
        let prec = tp as f64 / (i + 1) as f64;
        let rec = tp as f64 / total_gt as f64;
        points.push((rec, prec));
    }
    // Interpolated AP: integrate precision envelope over recall.
    let mut max_prec = 0.0f64;
    for p in points.iter_mut().rev() {
        max_prec = max_prec.max(p.1);
        p.1 = max_prec;
    }
    let mut ap = 0.0f64;
    let mut prev_rec = 0.0f64;
    for (rec, prec) in points {
        ap += (rec - prev_rec) * prec;
        prev_rec = rec;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[], &[]), 1.0);
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 0]), 1.0 / 3.0);
    }

    #[test]
    fn confusion_matrix_perfect() {
        let cm = ConfusionMatrix::from_pairs(&[0, 1, 2, 0], &[0, 1, 2, 0], 3);
        assert_eq!(cm.accuracy(), 1.0);
        for c in 0..3 {
            assert_eq!(cm.precision(c), 1.0);
            assert_eq!(cm.recall(c), 1.0);
            assert_eq!(cm.f1(c), 1.0);
        }
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn confusion_matrix_known_values() {
        // truth: [0,0,0,1,1], pred: [0,0,1,1,0]
        let cm = ConfusionMatrix::from_pairs(&[0, 0, 0, 1, 1], &[0, 0, 1, 1, 0], 2);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(1) - 0.5).abs() < 1e-12);
        assert!((cm.recall(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_class_contributes_zero_not_nan() {
        let cm = ConfusionMatrix::from_pairs(&[0, 0], &[0, 0], 3);
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
        // macro_f1 averages only over present classes.
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn iou_identical_and_disjoint() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        let b = BBox::new(20.0, 20.0, 30.0, 30.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(5.0, 0.0, 15.0, 10.0);
        // inter 50, union 150 → 1/3
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_normalizes_corners() {
        let b = BBox::new(10.0, 10.0, 0.0, 0.0);
        assert_eq!(b.x0, 0.0);
        assert_eq!(b.area(), 100.0);
        assert_eq!(b.center(), (5.0, 5.0));
    }

    #[test]
    fn detection_eval_matches_greedily_by_score() {
        let gt = vec![BBox::new(0.0, 0.0, 10.0, 10.0)];
        let dets = vec![
            Detection { bbox: BBox::new(0.0, 0.0, 10.0, 10.0), score: 0.9 },
            Detection { bbox: BBox::new(1.0, 1.0, 11.0, 11.0), score: 0.8 },
        ];
        let eval = evaluate_detections(&dets, &gt, 0.5);
        // One GT: best detection matches, the other is a false positive.
        assert_eq!(eval.tp, 1);
        assert_eq!(eval.fp, 1);
        assert_eq!(eval.fn_, 0);
        assert_eq!(eval.recall, 1.0);
        assert!((eval.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn detection_eval_empty_cases() {
        let none = evaluate_detections(&[], &[], 0.5);
        assert_eq!(none.precision, 1.0);
        assert_eq!(none.recall, 1.0);
        let missed = evaluate_detections(&[], &[BBox::new(0.0, 0.0, 1.0, 1.0)], 0.5);
        assert_eq!(missed.fn_, 1);
        assert_eq!(missed.recall, 0.0);
    }

    #[test]
    fn average_precision_perfect_detector_is_one() {
        let img = (
            vec![Detection { bbox: BBox::new(0.0, 0.0, 5.0, 5.0), score: 0.9 }],
            vec![BBox::new(0.0, 0.0, 5.0, 5.0)],
        );
        let ap = average_precision(&[img], 0.5);
        assert!((ap - 1.0).abs() < 1e-9);
    }

    #[test]
    fn average_precision_ranks_confident_correct_higher() {
        // Detector A: correct detection has the higher score → AP 1.0.
        // Detector B: false positive outranks the correct one → AP 0.5.
        let gt = vec![BBox::new(0.0, 0.0, 5.0, 5.0)];
        let far = BBox::new(50.0, 50.0, 55.0, 55.0);
        let a = vec![(
            vec![
                Detection { bbox: gt[0], score: 0.9 },
                Detection { bbox: far, score: 0.3 },
            ],
            gt.clone(),
        )];
        let b = vec![(
            vec![
                Detection { bbox: gt[0], score: 0.3 },
                Detection { bbox: far, score: 0.9 },
            ],
            gt.clone(),
        )];
        let ap_a = average_precision(&a, 0.5);
        let ap_b = average_precision(&b, 0.5);
        assert!(ap_a > ap_b, "{ap_a} vs {ap_b}");
        assert!((ap_a - 1.0).abs() < 1e-9);
        assert!((ap_b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn average_precision_no_gt_no_dets_is_vacuous_one() {
        assert_eq!(average_precision(&[(vec![], vec![])], 0.5), 1.0);
    }
}
