//! Sequence models: a simple recurrent network and single-head
//! self-attention.
//!
//! Section 2 of the paper names the architecture families explicitly:
//! "recurrent neural networks (RNNs) … a family of networks specializing
//! in processing sequential data" and "more recent advances … such as the
//! Transformer". This module provides laptop-scale instances of both —
//! an Elman RNN trained with truncated BPTT for sequence classification,
//! and a single-head scaled-dot-product self-attention layer — so the
//! workspace's claims about architecture coverage are backed by running
//! code rather than citation.

use crate::loss::softmax;
use crate::tensor::Tensor;
use rand::Rng;

/// An Elman recurrent cell with a classification head over the final
/// hidden state: `h_t = tanh(W_x x_t + W_h h_{t-1} + b)`,
/// `logits = W_o h_T + b_o`.
pub struct SimpleRnn {
    w_x: Tensor, // [input, hidden]
    w_h: Tensor, // [hidden, hidden]
    b_h: Tensor, // [hidden]
    w_o: Tensor, // [hidden, classes]
    b_o: Tensor, // [classes]
    hidden: usize,
}

impl SimpleRnn {
    /// New RNN with He-style initialization.
    pub fn new<R: Rng>(input: usize, hidden: usize, classes: usize, rng: &mut R) -> Self {
        SimpleRnn {
            w_x: Tensor::randn(&[input, hidden], input, rng),
            w_h: Tensor::randn(&[hidden, hidden], hidden, rng),
            b_h: Tensor::zeros(&[hidden]),
            w_o: Tensor::randn(&[hidden, classes], hidden, rng),
            b_o: Tensor::zeros(&[classes]),
            hidden,
        }
    }

    /// Hidden dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Forward a single sequence (`[T, input]`), returning all hidden
    /// states (`[T, hidden]`) and the class logits.
    pub fn forward(&self, sequence: &Tensor) -> (Tensor, Tensor) {
        assert_eq!(sequence.ndim(), 2);
        // itrust-lint: allow(panic-reachable) — step offsets are bounded by the sequence length captured in the same loop
        let t_len = sequence.shape()[0];
        let mut states = Tensor::zeros(&[t_len, self.hidden]);
        let mut h = Tensor::zeros(&[1, self.hidden]);
        for t in 0..t_len {
            let x_t = sequence.rows(t, t + 1);
            let pre = x_t
                .matmul(&self.w_x)
                .add(&h.matmul(&self.w_h))
                .add_row_bias(&self.b_h);
            h = pre.map(|v| v.tanh());
            states.data_mut()[t * self.hidden..(t + 1) * self.hidden]
                .copy_from_slice(h.data());
        }
        let logits = h.matmul(&self.w_o).add_row_bias(&self.b_o);
        (states, logits)
    }

    /// One SGD step of truncated BPTT on a single `(sequence, label)` pair.
    /// Returns the cross-entropy loss.
    pub fn train_step(&mut self, sequence: &Tensor, label: usize, lr: f32) -> f32 {
        // itrust-lint: allow(panic-reachable) — step offsets are bounded by the sequence length captured in the same loop
        let t_len = sequence.shape()[0];
        let (states, logits) = self.forward(sequence);
        let out = crate::loss::softmax_cross_entropy(&logits, &[label]);

        // Output-layer gradients.
        let h_last = states.rows(t_len - 1, t_len);
        let d_wo = h_last.transpose2().matmul(&out.grad);
        let d_bo = out.grad.sum_rows();
        // Backprop into the last hidden state, then through time.
        let mut dh = out.grad.matmul(&self.w_o.transpose2()); // [1, hidden]
        let mut d_wx = Tensor::zeros(self.w_x.shape());
        let mut d_wh = Tensor::zeros(self.w_h.shape());
        let mut d_bh = Tensor::zeros(self.b_h.shape());
        for t in (0..t_len).rev() {
            let h_t = states.rows(t, t + 1);
            // dtanh: dpre = dh ⊙ (1 − h²)
            let dpre = dh.zip(&h_t, |g, h| g * (1.0 - h * h));
            let x_t = sequence.rows(t, t + 1);
            d_wx.axpy(1.0, &x_t.transpose2().matmul(&dpre));
            let h_prev = if t == 0 {
                Tensor::zeros(&[1, self.hidden])
            } else {
                states.rows(t - 1, t)
            };
            d_wh.axpy(1.0, &h_prev.transpose2().matmul(&dpre));
            d_bh.axpy(1.0, &dpre.sum_rows());
            dh = dpre.matmul(&self.w_h.transpose2());
        }
        // Gradient clipping keeps BPTT stable on longer sequences.
        for grad in [&mut d_wx, &mut d_wh, &mut d_bh] {
            let norm = grad.norm();
            if norm > 5.0 {
                grad.scale(5.0 / norm);
            }
        }
        self.w_x.axpy(-lr, &d_wx);
        self.w_h.axpy(-lr, &d_wh);
        self.b_h.axpy(-lr, &d_bh);
        self.w_o.axpy(-lr, &d_wo);
        self.b_o.axpy(-lr, &d_bo);
        out.loss
    }

    /// Predicted class of one sequence.
    pub fn predict(&self, sequence: &Tensor) -> usize {
        let (_, logits) = self.forward(sequence);
        // itrust-lint: allow(panic-reachable) — step offsets are bounded by the sequence length captured in the same loop
        logits.argmax_rows()[0]
    }
}

/// Single-head scaled-dot-product self-attention (inference building
/// block): `Attention(X) = softmax(XW_q (XW_k)ᵀ / √d) · XW_v`.
pub struct SelfAttention {
    w_q: Tensor,
    w_k: Tensor,
    w_v: Tensor,
    dim: usize,
}

impl SelfAttention {
    /// New attention layer projecting `input → dim` for q/k/v.
    pub fn new<R: Rng>(input: usize, dim: usize, rng: &mut R) -> Self {
        SelfAttention {
            w_q: Tensor::randn(&[input, dim], input, rng),
            w_k: Tensor::randn(&[input, dim], input, rng),
            w_v: Tensor::randn(&[input, dim], input, rng),
            dim,
        }
    }

    /// Attention weights for a sequence `[T, input]` → `[T, T]` row-softmax.
    pub fn attention_weights(&self, x: &Tensor) -> Tensor {
        let q = x.matmul(&self.w_q);
        let k = x.matmul(&self.w_k);
        let mut scores = q.matmul(&k.transpose2());
        scores.scale(1.0 / (self.dim as f32).sqrt());
        softmax(&scores)
    }

    /// Full attention output `[T, dim]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let weights = self.attention_weights(x);
        let v = x.matmul(&self.w_v);
        weights.matmul(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Sequences where the *order* decides the class: [1,0] before [0,1]
    /// is class 0; the reverse is class 1. A bag-of-features model cannot
    /// solve this; an RNN must.
    fn order_task(n: usize, seed: u64) -> Vec<(Tensor, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let class = rng.gen_range(0..2usize);
                let t_len = rng.gen_range(3..7);
                let marker_a = rng.gen_range(0..t_len - 1);
                let marker_b = rng.gen_range(marker_a + 1..t_len);
                let mut data = vec![0.0f32; t_len * 2];
                // Two marker events; their order encodes the class.
                let (first, second) = if class == 0 { (0, 1) } else { (1, 0) };
                data[marker_a * 2 + first] = 1.0;
                data[marker_b * 2 + second] = 1.0;
                (Tensor::from_vec(&[t_len, 2], data), class)
            })
            .collect()
    }

    #[test]
    fn rnn_learns_order_dependent_classification() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rnn = SimpleRnn::new(2, 16, 2, &mut rng);
        let train = order_task(200, 2);
        let test = order_task(100, 3);
        for epoch in 0..30 {
            let mut total = 0.0;
            for (x, y) in &train {
                total += rnn.train_step(x, *y, 0.05);
            }
            let _ = (epoch, total);
        }
        let correct = test.iter().filter(|(x, y)| rnn.predict(x) == *y).count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.9, "order-task accuracy {acc}");
    }

    #[test]
    fn rnn_training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut rnn = SimpleRnn::new(2, 8, 2, &mut rng);
        let train = order_task(50, 5);
        let first: f32 = train.iter().map(|(x, y)| rnn.train_step(x, *y, 0.05)).sum();
        let mut last = first;
        for _ in 0..20 {
            last = train.iter().map(|(x, y)| rnn.train_step(x, *y, 0.05)).sum();
        }
        assert!(last < first * 0.7, "loss {first} → {last}");
    }

    #[test]
    fn rnn_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(6);
        let rnn = SimpleRnn::new(3, 5, 4, &mut rng);
        let x = Tensor::rand_uniform(&[7, 3], -1.0, 1.0, &mut rng);
        let (states, logits) = rnn.forward(&x);
        assert_eq!(states.shape(), &[7, 5]);
        assert_eq!(logits.shape(), &[1, 4]);
        assert_eq!(rnn.hidden_size(), 5);
        assert!(states.all_finite());
        // Hidden states are tanh-bounded.
        assert!(states.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn attention_weights_are_row_stochastic() {
        let mut rng = StdRng::seed_from_u64(7);
        let attn = SelfAttention::new(4, 8, &mut rng);
        let x = Tensor::rand_uniform(&[6, 4], -1.0, 1.0, &mut rng);
        let w = attn.attention_weights(&x);
        assert_eq!(w.shape(), &[6, 6]);
        for r in 0..6 {
            let sum: f32 = w.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(w.row(r).iter().all(|&v| v >= 0.0));
        }
        let out = attn.forward(&x);
        assert_eq!(out.shape(), &[6, 8]);
        assert!(out.all_finite());
    }

    #[test]
    fn attention_attends_to_similar_tokens() {
        // With identity-ish projections, identical tokens should attend to
        // each other more than to a very different token.
        let mut rng = StdRng::seed_from_u64(8);
        let attn = SelfAttention::new(2, 2, &mut rng);
        let x = Tensor::from_vec(&[3, 2], vec![5.0, 0.0, 5.0, 0.0, -5.0, 0.0]);
        let w = attn.attention_weights(&x);
        // Row 0: weight on token 1 (identical) vs token 2 (opposite) must
        // differ; direction depends on random projections, but symmetry of
        // tokens 0/1 forces equal self/peer weights.
        assert!((w.at2(0, 0) - w.at2(0, 1)).abs() < 1e-5);
        assert!((w.at2(1, 0) - w.at2(1, 1)).abs() < 1e-5);
    }

    #[test]
    fn attention_is_permutation_sensitive_in_output_position() {
        // Self-attention outputs track input positions: permuting the
        // sequence permutes the rows of the output.
        let mut rng = StdRng::seed_from_u64(9);
        let attn = SelfAttention::new(3, 4, &mut rng);
        let x = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let out = attn.forward(&x);
        // Build the permuted input (swap rows 0 and 2).
        let mut data = x.data().to_vec();
        for c in 0..3 {
            data.swap(c, 2 * 3 + c);
        }
        let xp = Tensor::from_vec(&[4, 3], data);
        let out_p = attn.forward(&xp);
        for c in 0..4 {
            assert!((out.at2(0, c) - out_p.at2(2, c)).abs() < 1e-5);
            assert!((out.at2(2, c) - out_p.at2(0, c)).abs() < 1e-5);
        }
    }
}
