//! Property-based tests over tensor algebra and detection metrics.

use neural::layers::{conv2d_backward_naive, conv2d_forward_naive, Conv2d, Layer};
use neural::loss::softmax;
use neural::metrics::BBox;
use neural::tensor::Tensor;
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(&[rows, cols], data))
}

proptest! {
    /// A · I = A and I · A = A.
    #[test]
    fn matmul_identity(a in small_matrix(3, 3)) {
        let mut eye = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            *eye.at2_mut(i, i) = 1.0;
        }
        let right = a.matmul(&eye);
        let left = eye.matmul(&a);
        for (x, y) in right.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in left.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn matmul_transpose_identity(a in small_matrix(2, 4), b in small_matrix(4, 3)) {
        let lhs = a.matmul(&b).transpose2();
        let rhs = b.transpose2().matmul(&a.transpose2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Matmul distributes over addition: A(B+C) = AB + AC.
    #[test]
    fn matmul_distributive(a in small_matrix(2, 3), b in small_matrix(3, 2), c in small_matrix(3, 2)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Softmax rows are probability distributions and argmax is preserved.
    #[test]
    fn softmax_distribution_properties(logits in small_matrix(4, 5)) {
        let p = softmax(&logits);
        prop_assert!(p.all_finite());
        for r in 0..4 {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        prop_assert_eq!(p.argmax_rows(), logits.argmax_rows());
    }

    /// IoU is symmetric, bounded, and 1 only for (near-)identical boxes.
    #[test]
    fn iou_properties(
        ax in -50.0f32..50.0, ay in -50.0f32..50.0, aw in 1.0f32..30.0, ah in 1.0f32..30.0,
        bx in -50.0f32..50.0, by in -50.0f32..50.0, bw in 1.0f32..30.0, bh in 1.0f32..30.0,
    ) {
        let a = BBox::new(ax, ay, ax + aw, ay + ah);
        let b = BBox::new(bx, by, bx + bw, by + bh);
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-6);
    }

    /// Blocked conv forward equals the naive reference for arbitrary
    /// shapes. The bound is 1e-9, but by construction the match is exact:
    /// both accumulate taps in the same order.
    #[test]
    fn conv_blocked_forward_matches_naive(
        n in 1usize..3, in_c in 1usize..3, out_c in 1usize..4,
        k in 1usize..4, pad in 0usize..3, dh in 0usize..4, dw in 0usize..4,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let (h, w) = (k + dh, k + dw);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(in_c, out_c, k, pad, &mut rng);
        let x = Tensor::rand_uniform(&[n, in_c, h, w], -1.0, 1.0, &mut rng);
        let got = conv.forward(&x, false);
        let (wt, bt) = {
            let params = conv.params_mut();
            (params[0].value.clone(), params[1].value.clone())
        };
        let want = conv2d_forward_naive(&x, &wt, &bt, k, pad);
        prop_assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            prop_assert!((a - b).abs() <= 1e-9, "{} vs {}", a, b);
        }
    }

    /// Blocked conv backward matches the naive reference within rounding
    /// for arbitrary shapes (per-item partial merge reassociates sums).
    #[test]
    fn conv_blocked_backward_matches_naive(
        n in 1usize..3, in_c in 1usize..3, out_c in 1usize..4,
        k in 1usize..4, pad in 0usize..3, dh in 0usize..4, dw in 0usize..4,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let (h, w) = (k + dh, k + dw);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(in_c, out_c, k, pad, &mut rng);
        let x = Tensor::rand_uniform(&[n, in_c, h, w], -1.0, 1.0, &mut rng);
        let y = conv.forward(&x, false);
        let g = Tensor::rand_uniform(y.shape(), -1.0, 1.0, &mut rng);
        let grad_in = conv.backward(&g);
        let wt = conv.params_mut()[0].value.clone();
        let (want_in, want_w, want_b) = conv2d_backward_naive(&x, &wt, &g, k, pad);
        for (a, b) in grad_in.data().iter().zip(want_in.data()) {
            prop_assert!((a - b).abs() < 1e-3, "grad_in {} vs {}", a, b);
        }
        let (wg, bg) = {
            let params = conv.params_mut();
            (params[0].grad.clone(), params[1].grad.clone())
        };
        for (a, b) in wg.data().iter().zip(want_w.data()) {
            prop_assert!((a - b).abs() < 1e-3, "grad_w {} vs {}", a, b);
        }
        for (a, b) in bg.data().iter().zip(want_b.data()) {
            prop_assert!((a - b).abs() < 1e-3, "grad_b {} vs {}", a, b);
        }
    }

    /// Dataset shuffle/subset preserve feature-label pairing.
    #[test]
    fn dataset_pairing_preserved(n in 1usize..40, seed in any::<u64>()) {
        use neural::data::Dataset;
        use rand::SeedableRng;
        // Feature value encodes the label.
        let data: Vec<f32> = (0..n).flat_map(|i| [i as f32, (i % 3) as f32]).collect();
        let y: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let mut ds = Dataset::new(Tensor::from_vec(&[n, 2], data), y);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        ds.shuffle(&mut rng);
        for r in 0..n {
            prop_assert_eq!(ds.x.row(r)[1] as usize, ds.y[r]);
        }
    }
}
