//! # digital-twin — BIM + IoT + AMS ecosystem with archival packaging
//!
//! Section 3.3 studies whether a digital twin — "an ecosystem of
//! multi-dimensional and interoperable subsystems made up of physical
//! things in the real-world, digital versions of those real things,
//! synchronized data connections between them and the people, organizations
//! and institutions involved" — can be preserved, and what must be captured
//! at the point of creation to make that possible. This crate builds the
//! ecosystem and answers the paper's three research questions in code:
//!
//! * *Can a digital twin be preserved?* — [`archive`] packages a complete
//!   twin (BIM model, sensor histories, asset-management state, sync log,
//!   integration mappings) into an OAIS AIP via `archival-core`, and
//!   [`rehydrate`] restores it and verifies bit-level and structural
//!   fidelity (Experiment D4).
//! * *Can information about the AI tools, automation and real-time data be
//!   preserved?* — [`paradata`] records model identities, versions,
//!   training data digests, and decision logs alongside the twin.
//! * *What is the role of AI/ML in creating the archival package?* — the
//!   `itrust-core` appraisal tooling consumes this crate's inventories.
//!
//! [`integration`] reproduces Figure 2 ("Integrating diverse databases into
//! BIM"): heterogeneous source databases (vendor catalogs, permits, cost
//! tables, sensor registries) are merged into the BIM element graph with
//! full mapping records (Experiment F2).

pub mod ams;
pub mod archive;
pub mod bim;
pub mod bps;
pub mod integration;
pub mod paradata;
pub mod rehydrate;
pub mod sensors;
pub mod sync;
