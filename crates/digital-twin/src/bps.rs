//! Building performance simulation (BPS).
//!
//! The Carleton study "integrat[es] Building Performance Simulation (BPS)
//! technologies with BIM on a campus scale". This module implements the
//! standard lightweight thermal model — a lumped-parameter 1R1C network per
//! building — driven by an outdoor-temperature profile, producing hourly
//! indoor temperatures and heating/cooling energy. Its output feeds the
//! Figure 2 integration as the `BpsResults` source, and, like every other
//! automated tool in the twin, it registers paradata.

use crate::bim::{Building, ElementKind};
use serde::{Deserialize, Serialize};

/// Tool identity for paradata.
pub const TOOL_ID: &str = "sim:bps-1r1c-v1";

/// Thermal parameters of one building (derived from its BIM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Heat-loss coefficient (kW/°C): envelope conductance.
    pub ua_kw_per_c: f64,
    /// Thermal capacitance (kWh/°C): building mass.
    pub c_kwh_per_c: f64,
    /// Heating setpoint (°C).
    pub heat_setpoint_c: f64,
    /// Cooling setpoint (°C).
    pub cool_setpoint_c: f64,
    /// Maximum HVAC power (kW), symmetric for heat/cool.
    pub hvac_max_kw: f64,
}

impl ThermalModel {
    /// Derive parameters from a building's BIM: glazing raises UA, mass
    /// (walls/slabs) raises capacitance — the point being that the BIM is
    /// the *source of truth* for BPS inputs, as the study prescribes.
    pub fn from_building(building: &Building) -> ThermalModel {
        let mut windows = 0usize;
        let mut mass_elements = 0usize;
        let mut hvac_units = 0usize;
        for storey in &building.storeys {
            for e in &storey.elements {
                match e.kind {
                    ElementKind::Window => windows += 1,
                    ElementKind::Wall | ElementKind::Slab => mass_elements += 1,
                    ElementKind::HvacUnit => hvac_units += 1,
                    _ => {}
                }
            }
        }
        ThermalModel {
            ua_kw_per_c: 0.05 + 0.03 * windows as f64 + 0.01 * mass_elements as f64,
            c_kwh_per_c: 2.0 + 1.5 * mass_elements as f64,
            heat_setpoint_c: 20.0,
            cool_setpoint_c: 25.0,
            hvac_max_kw: 5.0 + 10.0 * hvac_units.max(1) as f64,
        }
    }
}

/// Hourly result of a BPS run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourResult {
    /// Hour index.
    pub hour: usize,
    /// Outdoor temperature (°C).
    pub outdoor_c: f64,
    /// Indoor temperature at end of hour (°C).
    pub indoor_c: f64,
    /// Heating energy this hour (kWh, ≥ 0).
    pub heating_kwh: f64,
    /// Cooling energy this hour (kWh, ≥ 0).
    pub cooling_kwh: f64,
}

/// Full BPS output for one building.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BpsResult {
    /// Building code.
    pub building: String,
    /// Parameters used.
    pub model: ThermalModel,
    /// Hour-by-hour trajectory.
    pub hours: Vec<HourResult>,
}

impl BpsResult {
    /// Total annualizable heating energy (kWh).
    pub fn total_heating_kwh(&self) -> f64 {
        self.hours.iter().map(|h| h.heating_kwh).sum()
    }

    /// Total cooling energy (kWh).
    pub fn total_cooling_kwh(&self) -> f64 {
        self.hours.iter().map(|h| h.cooling_kwh).sum()
    }
}

/// A sinusoidal daily outdoor-temperature profile: mean ± swing, coldest
/// at 4 am.
pub fn outdoor_profile(hours: usize, mean_c: f64, swing_c: f64) -> Vec<f64> {
    (0..hours)
        .map(|h| {
            let phase = ((h % 24) as f64 - 4.0) / 24.0 * std::f64::consts::TAU;
            mean_c - swing_c * phase.cos()
        })
        .collect()
}

/// Run the 1R1C model: each hour, HVAC drives the indoor temperature
/// toward the setpoint band, capped at `hvac_max_kw`; the envelope leaks
/// toward the outdoor temperature.
pub fn simulate(building: &Building, outdoor: &[f64]) -> BpsResult {
    let model = ThermalModel::from_building(building);
    let mut indoor = model.heat_setpoint_c;
    let mut hours = Vec::with_capacity(outdoor.len());
    for (hour, &out_c) in outdoor.iter().enumerate() {
        // Envelope heat flow over one hour (kWh): UA · ΔT · 1h.
        let leak_kwh = model.ua_kw_per_c * (out_c - indoor);
        // HVAC demand to return to the nearest setpoint.
        let target = if indoor < model.heat_setpoint_c {
            Some(model.heat_setpoint_c)
        } else if indoor > model.cool_setpoint_c {
            Some(model.cool_setpoint_c)
        } else {
            None
        };
        let mut heating_kwh = 0.0;
        let mut cooling_kwh = 0.0;
        let hvac_kwh = match target {
            None => 0.0,
            Some(t) => {
                let needed = (t - indoor) * model.c_kwh_per_c - leak_kwh;
                let capped = needed.clamp(-model.hvac_max_kw, model.hvac_max_kw);
                if capped > 0.0 {
                    heating_kwh = capped;
                } else {
                    cooling_kwh = -capped;
                }
                capped
            }
        };
        indoor += (leak_kwh + hvac_kwh) / model.c_kwh_per_c;
        hours.push(HourResult {
            hour,
            outdoor_c: out_c,
            indoor_c: indoor,
            heating_kwh,
            cooling_kwh,
        });
    }
    BpsResult { building: building.code.clone(), model, hours }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bim::BimModel;

    fn building() -> Building {
        BimModel::synthetic_campus("c", 1, 3, 8).buildings.remove(0)
    }

    #[test]
    fn parameters_derive_from_bim() {
        let b = building();
        let m = ThermalModel::from_building(&b);
        assert!(m.ua_kw_per_c > 0.0);
        assert!(m.c_kwh_per_c > 2.0);
        assert!(m.hvac_max_kw >= 15.0, "building has HVAC units");
        // More glazing → leakier envelope.
        let mut glassy = b.clone();
        for s in &mut glassy.storeys {
            for e in &mut s.elements {
                e.kind = ElementKind::Window;
            }
        }
        assert!(ThermalModel::from_building(&glassy).ua_kw_per_c > m.ua_kw_per_c);
    }

    #[test]
    fn outdoor_profile_shape() {
        let p = outdoor_profile(48, 10.0, 5.0);
        assert_eq!(p.len(), 48);
        // Coldest at 4 am, warmest at 16 pm.
        assert!(p[4] < p[16]);
        assert!((p[4] - 5.0).abs() < 0.1);
        assert!((p[16] - 15.0).abs() < 0.1);
        // 24h periodicity.
        assert!((p[3] - p[27]).abs() < 1e-9);
    }

    #[test]
    fn cold_weather_heats_warm_weather_cools() {
        let b = building();
        let winter = simulate(&b, &outdoor_profile(72, -5.0, 4.0));
        let summer = simulate(&b, &outdoor_profile(72, 32.0, 4.0));
        assert!(winter.total_heating_kwh() > 10.0);
        assert!(winter.total_cooling_kwh() < 1e-9);
        assert!(summer.total_cooling_kwh() > 10.0);
        assert!(summer.total_heating_kwh() < 1e-9);
    }

    #[test]
    fn mild_weather_needs_no_hvac() {
        let b = building();
        let mild = simulate(&b, &outdoor_profile(48, 22.0, 1.0));
        assert!(mild.total_heating_kwh() + mild.total_cooling_kwh() < 5.0);
    }

    #[test]
    fn indoor_temperature_stays_near_band_under_capacity() {
        let b = building();
        let result = simulate(&b, &outdoor_profile(168, 0.0, 8.0));
        // After the first day settles, indoor stays within a loosened band.
        for h in &result.hours[24..] {
            assert!(
                (15.0..=28.0).contains(&h.indoor_c),
                "hour {}: indoor {}",
                h.hour,
                h.indoor_c
            );
        }
    }

    #[test]
    fn energy_grows_with_temperature_gap() {
        let b = building();
        let mild_winter = simulate(&b, &outdoor_profile(72, 10.0, 3.0));
        let harsh_winter = simulate(&b, &outdoor_profile(72, -15.0, 3.0));
        assert!(harsh_winter.total_heating_kwh() > mild_winter.total_heating_kwh() * 1.5);
    }

    #[test]
    fn deterministic_and_serializable() {
        let b = building();
        let p = outdoor_profile(24, 5.0, 5.0);
        let a = simulate(&b, &p);
        let b2 = simulate(&b, &p);
        assert_eq!(a, b2);
        let json = serde_json::to_string(&a).unwrap();
        let back: BpsResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
