//! Paradata: preserving information *about* the AI tools inside the twin.
//!
//! The study asks: "Can information about the AI tools, automation and real
//! time data involved in this complex data, social and technological system
//! be preserved, and how?" The answer implemented here: every automated
//! component registers a [`ToolDescription`] (identity, version, inputs,
//! training-data digest where applicable), and every decision instance
//! carries a pointer back to it. The whole registry travels inside the
//! archival package.

use serde::{Deserialize, Serialize};
use trustdb::hash::Digest;

/// Category of automated tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ToolKind {
    /// Fixed rule (auditable by reading it).
    Rule,
    /// Trained statistical/ML model.
    Model,
    /// Simulation engine.
    Simulator,
    /// External service (API).
    Service,
}

/// Description of one automated tool — what a future archivist needs to
/// interpret decisions the tool made.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToolDescription {
    /// Stable identifier referenced by decision logs (e.g.
    /// "rule:comfort-band-v1").
    pub id: String,
    /// Category.
    pub kind: ToolKind,
    /// Version string.
    pub version: String,
    /// Human-readable purpose.
    pub purpose: String,
    /// What data the tool consumes.
    pub inputs: Vec<String>,
    /// Digest of training data / configuration, when applicable.
    pub config_digest: Option<Digest>,
}

/// Registry of every automated tool active in a twin.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParadataRegistry {
    tools: Vec<ToolDescription>,
}

impl ParadataRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tool; rejects duplicate ids.
    pub fn register(&mut self, tool: ToolDescription) -> Result<(), String> {
        if self.tools.iter().any(|t| t.id == tool.id) {
            return Err(format!("tool id '{}' already registered", tool.id));
        }
        self.tools.push(tool);
        Ok(())
    }

    /// Look up a tool by id.
    pub fn get(&self, id: &str) -> Option<&ToolDescription> {
        self.tools.iter().find(|t| t.id == id)
    }

    /// All registered tools.
    pub fn tools(&self) -> &[ToolDescription] {
        &self.tools
    }

    /// Completeness check against a set of decision-maker ids found in
    /// logs: every id must be described. Returns the undescribed ids —
    /// a non-empty result means the twin is *not* preservation-ready.
    pub fn undescribed<'a>(&self, decision_makers: impl IntoIterator<Item = &'a str>) -> Vec<String> {
        let mut missing: Vec<String> = decision_makers
            .into_iter()
            .filter(|id| self.get(id).is_none())
            .map(|s| s.to_string())
            .collect();
        missing.sort();
        missing.dedup();
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule_tool() -> ToolDescription {
        ToolDescription {
            id: "rule:comfort-band-v1".into(),
            kind: ToolKind::Rule,
            version: "1.0".into(),
            purpose: "keep room temperature in the comfort band".into(),
            inputs: vec!["temperature telemetry".into()],
            config_digest: None,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ParadataRegistry::new();
        reg.register(rule_tool()).unwrap();
        assert!(reg.get("rule:comfort-band-v1").is_some());
        assert!(reg.get("ghost").is_none());
        assert_eq!(reg.tools().len(), 1);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut reg = ParadataRegistry::new();
        reg.register(rule_tool()).unwrap();
        assert!(reg.register(rule_tool()).is_err());
    }

    #[test]
    fn completeness_check_names_missing_tools() {
        let mut reg = ParadataRegistry::new();
        reg.register(rule_tool()).unwrap();
        let missing = reg.undescribed(
            ["rule:comfort-band-v1", "model:load-forecast-v3", "model:load-forecast-v3"],
        );
        assert_eq!(missing, vec!["model:load-forecast-v3"]);
        assert!(reg.undescribed(["rule:comfort-band-v1"].into_iter()).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let mut reg = ParadataRegistry::new();
        reg.register(ToolDescription {
            id: "model:x".into(),
            kind: ToolKind::Model,
            version: "2.1".into(),
            purpose: "p".into(),
            inputs: vec!["a".into()],
            config_digest: Some(trustdb::hash::sha256(b"training set v7")),
        })
        .unwrap();
        let json = serde_json::to_string(&reg).unwrap();
        let back: ParadataRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg);
    }
}
