//! Building information model: the "digital version of the real thing".
//!
//! A BIM here is a typed hierarchy — campus → buildings → storeys →
//! elements — where every element carries attributes in a key/value
//! database (the BIM-as-database view of Figure 2), a globally unique id,
//! and links to external source records added by [`crate::integration`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Globally unique element identifier within a twin.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub String);

impl ElementId {
    /// Construct from parts, e.g. `b0/s2/e17`.
    pub fn new(s: impl Into<String>) -> Self {
        ElementId(s.into())
    }
}

impl std::fmt::Display for ElementId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Category of a built element (a pragmatic subset of IFC classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// Load-bearing or partition wall.
    Wall,
    /// Floor slab.
    Slab,
    /// Door.
    Door,
    /// Window.
    Window,
    /// HVAC unit.
    HvacUnit,
    /// Electrical panel.
    ElectricalPanel,
    /// Water/plumbing fixture.
    PlumbingFixture,
    /// Sensor mounting point.
    SensorMount,
}

impl ElementKind {
    /// All kinds, for generators.
    pub const ALL: [ElementKind; 8] = [
        ElementKind::Wall,
        ElementKind::Slab,
        ElementKind::Door,
        ElementKind::Window,
        ElementKind::HvacUnit,
        ElementKind::ElectricalPanel,
        ElementKind::PlumbingFixture,
        ElementKind::SensorMount,
    ];
}

/// One built element with its attribute database and external links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Element {
    /// Unique id.
    pub id: ElementId,
    /// IFC-like category.
    pub kind: ElementKind,
    /// Display name.
    pub name: String,
    /// Attribute database (key → value), e.g. material, U-value, vendor.
    pub attributes: BTreeMap<String, String>,
    /// Links to external source records: (source db, record key).
    pub external_refs: Vec<(String, String)>,
}

impl Element {
    /// New element with empty attributes.
    pub fn new(id: impl Into<String>, kind: ElementKind, name: impl Into<String>) -> Self {
        Element {
            id: ElementId::new(id),
            kind,
            name: name.into(),
            attributes: BTreeMap::new(),
            external_refs: Vec::new(),
        }
    }

    /// Set an attribute (builder).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }
}

/// One storey of a building.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Storey {
    /// Storey index (0 = ground).
    pub level: i32,
    /// Elements on this storey.
    pub elements: Vec<Element>,
}

/// One building.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Building {
    /// Building code (e.g. "CB" for Canal Building).
    pub code: String,
    /// Full name.
    pub name: String,
    /// Year of construction.
    pub built_year: u32,
    /// Storeys bottom-up.
    pub storeys: Vec<Storey>,
}

impl Building {
    /// Total element count.
    pub fn element_count(&self) -> usize {
        self.storeys.iter().map(|s| s.elements.len()).sum()
    }
}

/// The BIM of a whole campus/site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BimModel {
    /// Site name (e.g. "Carleton Campus").
    pub site: String,
    /// Schema version of this model encoding.
    pub schema_version: u32,
    /// Buildings.
    pub buildings: Vec<Building>,
}

impl BimModel {
    /// Empty model.
    pub fn new(site: impl Into<String>) -> Self {
        BimModel { site: site.into(), schema_version: 1, buildings: Vec::new() }
    }

    /// Total elements across buildings.
    pub fn element_count(&self) -> usize {
        self.buildings.iter().map(|b| b.element_count()).sum()
    }

    /// Find an element by id.
    pub fn element(&self, id: &ElementId) -> Option<&Element> {
        self.buildings
            .iter()
            .flat_map(|b| &b.storeys)
            .flat_map(|s| &s.elements)
            .find(|e| &e.id == id)
    }

    /// Mutable element lookup.
    pub fn element_mut(&mut self, id: &ElementId) -> Option<&mut Element> {
        self.buildings
            .iter_mut()
            .flat_map(|b| &mut b.storeys)
            .flat_map(|s| &mut s.elements)
            .find(|e| &e.id == id)
    }

    /// All element ids, in model order.
    pub fn element_ids(&self) -> Vec<ElementId> {
        self.buildings
            .iter()
            .flat_map(|b| &b.storeys)
            .flat_map(|s| &s.elements)
            .map(|e| e.id.clone())
            .collect()
    }

    /// Content digest of the canonical encoding — the identity the archival
    /// package binds to.
    pub fn digest(&self) -> trustdb::hash::Digest {
        // itrust-lint: allow(panic-reachable) — plain struct/Vec model serializes infallibly; digest() is an identity, not an I/O path
        trustdb::hash::sha256(&serde_json::to_vec(self).expect("model serializable"))
    }

    /// Generate a synthetic campus: `buildings` buildings × `storeys`
    /// storeys × `elements_per_storey` elements, deterministic in the
    /// parameters (ids encode their position). Mirrors the seven-building
    /// Carleton campus study at configurable scale.
    pub fn synthetic_campus(
        site: &str,
        buildings: usize,
        storeys: usize,
        elements_per_storey: usize,
    ) -> BimModel {
        let mut model = BimModel::new(site);
        for b in 0..buildings {
            let mut building = Building {
                code: format!("B{b}"),
                name: format!("Building {b}"),
                built_year: 1960 + (b as u32 * 7) % 60,
                storeys: Vec::with_capacity(storeys),
            };
            for s in 0..storeys {
                let mut storey = Storey { level: s as i32, elements: Vec::new() };
                for e in 0..elements_per_storey {
                    // itrust-lint: allow(panic-reachable) — element refs are validated against the model index on load
                    let kind = ElementKind::ALL[(b + s + e) % ElementKind::ALL.len()];
                    storey.elements.push(
                        Element::new(format!("B{b}/S{s}/E{e}"), kind, format!("{kind:?} {e}"))
                            .with_attr("material", material_for(kind))
                            .with_attr("install_year", (1990 + (e % 30)).to_string()),
                    );
                }
                building.storeys.push(storey);
            }
            model.buildings.push(building);
        }
        model
    }
}

fn material_for(kind: ElementKind) -> &'static str {
    match kind {
        ElementKind::Wall | ElementKind::Slab => "concrete",
        ElementKind::Door => "wood",
        ElementKind::Window => "glass",
        ElementKind::HvacUnit | ElementKind::ElectricalPanel => "steel",
        ElementKind::PlumbingFixture => "ceramic",
        ElementKind::SensorMount => "polymer",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_campus_dimensions() {
        let m = BimModel::synthetic_campus("Test Campus", 7, 3, 10);
        assert_eq!(m.buildings.len(), 7);
        assert_eq!(m.element_count(), 7 * 3 * 10);
        assert_eq!(m.buildings[0].element_count(), 30);
    }

    #[test]
    fn element_lookup_by_id() {
        let m = BimModel::synthetic_campus("c", 2, 2, 5);
        let id = ElementId::new("B1/S1/E3");
        let e = m.element(&id).unwrap();
        assert_eq!(e.id, id);
        assert!(m.element(&ElementId::new("B9/S9/E9")).is_none());
    }

    #[test]
    fn element_mut_allows_enrichment() {
        let mut m = BimModel::synthetic_campus("c", 1, 1, 3);
        let id = ElementId::new("B0/S0/E0");
        m.element_mut(&id)
            .unwrap()
            .external_refs
            .push(("vendor-db".into(), "V-1001".into()));
        assert_eq!(m.element(&id).unwrap().external_refs.len(), 1);
    }

    #[test]
    fn digest_is_content_sensitive() {
        let a = BimModel::synthetic_campus("c", 2, 2, 4);
        let b = BimModel::synthetic_campus("c", 2, 2, 4);
        assert_eq!(a.digest(), b.digest(), "deterministic generation");
        let mut c = a.clone();
        c.element_mut(&ElementId::new("B0/S0/E0"))
            .unwrap()
            .attributes
            .insert("material".into(), "adamantium".into());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn element_ids_cover_all_elements() {
        let m = BimModel::synthetic_campus("c", 2, 3, 4);
        let ids = m.element_ids();
        assert_eq!(ids.len(), 24);
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), 24);
    }

    #[test]
    fn attributes_present_from_generation() {
        let m = BimModel::synthetic_campus("c", 1, 1, 8);
        for id in m.element_ids() {
            let e = m.element(&id).unwrap();
            assert!(e.attributes.contains_key("material"));
            assert!(e.attributes.contains_key("install_year"));
        }
    }

    #[test]
    fn serde_round_trip_preserves_digest() {
        let m = BimModel::synthetic_campus("c", 3, 2, 5);
        let json = serde_json::to_vec(&m).unwrap();
        let back: BimModel = serde_json::from_slice(&json).unwrap();
        assert_eq!(back.digest(), m.digest());
    }
}
