//! Asset management system (AMS): maintenance scheduling and the AI-driven
//! control decisions the paper describes ("inputs for the AI/ML systems
//! that remotely manage heating and cooling systems … and maintenance
//! schedules").

use crate::bim::ElementId;
use crate::sensors::{SensorKind, SensorNetwork};
use serde::{Deserialize, Serialize};

/// A scheduled or completed maintenance task on an element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkOrder {
    /// Order id.
    pub id: String,
    /// Target element.
    pub element: ElementId,
    /// What is to be done.
    pub description: String,
    /// Due time (ms).
    pub due_ms: u64,
    /// Completion time, if done.
    pub completed_ms: Option<u64>,
}

/// A control decision the automation layer took (e.g. HVAC setpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlAction {
    /// Decision time (ms).
    pub timestamp_ms: u64,
    /// Element acted on.
    pub element: ElementId,
    /// Action description.
    pub action: String,
    /// The rule or model that decided (paradata pointer).
    pub decided_by: String,
}

/// The asset-management state of a twin.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AssetManagement {
    /// Open and closed work orders.
    pub work_orders: Vec<WorkOrder>,
    /// Automation decisions, in time order.
    pub control_log: Vec<ControlAction>,
}

impl AssetManagement {
    /// Empty AMS.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a work order.
    pub fn open_order(
        &mut self,
        element: ElementId,
        description: impl Into<String>,
        due_ms: u64,
    ) -> &WorkOrder {
        let id = format!("wo-{:05}", self.work_orders.len());
        self.work_orders.push(WorkOrder {
            id,
            element,
            description: description.into(),
            due_ms,
            completed_ms: None,
        });
        // itrust-lint: allow(panic-reachable) — order pushed on the previous line
        self.work_orders.last().unwrap()
    }

    /// Mark an order complete. Returns false if unknown or already done.
    pub fn complete_order(&mut self, id: &str, at_ms: u64) -> bool {
        match self.work_orders.iter_mut().find(|w| w.id == id) {
            Some(w) if w.completed_ms.is_none() => {
                w.completed_ms = Some(at_ms);
                true
            }
            _ => false,
        }
    }

    /// Orders past due and not completed at `now_ms`.
    pub fn overdue(&self, now_ms: u64) -> Vec<&WorkOrder> {
        self.work_orders
            .iter()
            .filter(|w| w.completed_ms.is_none() && w.due_ms < now_ms)
            .collect()
    }

    /// Run the rule-based comfort controller over a sensor snapshot: any
    /// temperature above `setpoint_high` triggers a cooling action, below
    /// `setpoint_low` a heating action. Each action is logged with the rule
    /// identity (this is the automation whose *preservability* the study
    /// questions).
    pub fn run_comfort_rules(
        &mut self,
        network: &SensorNetwork,
        now_ms: u64,
        setpoint_low: f64,
        setpoint_high: f64,
    ) -> usize {
        let mut actions = 0usize;
        for (sensor, reading) in network.snapshot_at(now_ms) {
            if sensor.kind != SensorKind::Temperature {
                continue;
            }
            let Some(r) = reading else { continue };
            let action = if r.value > setpoint_high {
                Some(format!("cool to {setpoint_high}°C (measured {:.1})", r.value))
            } else if r.value < setpoint_low {
                Some(format!("heat to {setpoint_low}°C (measured {:.1})", r.value))
            } else {
                None
            };
            if let Some(action) = action {
                self.control_log.push(ControlAction {
                    timestamp_ms: now_ms,
                    element: sensor.element.clone(),
                    action,
                    decided_by: "rule:comfort-band-v1".into(),
                });
                actions += 1;
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bim::BimModel;

    #[test]
    fn work_order_lifecycle() {
        let mut ams = AssetManagement::new();
        let id = ams.open_order(ElementId::new("B0/S0/E0"), "replace filter", 1_000).id.clone();
        assert_eq!(ams.overdue(500).len(), 0);
        assert_eq!(ams.overdue(2_000).len(), 1);
        assert!(ams.complete_order(&id, 1_500));
        assert!(!ams.complete_order(&id, 1_600), "double completion rejected");
        assert!(!ams.complete_order("wo-99999", 1_600));
        assert_eq!(ams.overdue(2_000).len(), 0);
    }

    #[test]
    fn order_ids_are_sequential() {
        let mut ams = AssetManagement::new();
        let a = ams.open_order(ElementId::new("x"), "a", 1).id.clone();
        let b = ams.open_order(ElementId::new("y"), "b", 2).id.clone();
        assert_ne!(a, b);
        assert!(b > a);
    }

    #[test]
    fn comfort_rules_act_on_out_of_band_temperatures() {
        let model = BimModel::synthetic_campus("c", 1, 1, 4);
        let mut net = SensorNetwork::deploy(&model.element_ids(), 1);
        net.simulate(120_000, 3);
        let mut ams = AssetManagement::new();
        // Absurdly tight band: every temperature reading triggers an action.
        let actions = ams.run_comfort_rules(&net, 100_000, 22.0, 22.0);
        let temp_sensors = net
            .sensors
            .iter()
            .filter(|s| s.kind == SensorKind::Temperature)
            .count();
        assert_eq!(actions, temp_sensors);
        assert_eq!(ams.control_log.len(), actions);
        for a in &ams.control_log {
            assert_eq!(a.decided_by, "rule:comfort-band-v1");
            assert!(a.action.contains("cool") || a.action.contains("heat"));
        }
        // Wide-open band: no actions.
        let none = ams.run_comfort_rules(&net, 100_000, -100.0, 100.0);
        assert_eq!(none, 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut ams = AssetManagement::new();
        ams.open_order(ElementId::new("e"), "inspect", 10);
        let json = serde_json::to_string(&ams).unwrap();
        let back: AssetManagement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ams);
    }
}
