//! IoT sensor network: the "synchronized data connections" between the
//! physical and digital things — temperature, humidity, air quality, and
//! energy telemetry attached to BIM elements.

use crate::bim::ElementId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Physical quantity a sensor measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Air temperature (°C).
    Temperature,
    /// Relative humidity (%).
    Humidity,
    /// CO₂ concentration (ppm).
    AirQuality,
    /// Electrical power draw (kW).
    Power,
}

impl SensorKind {
    /// All kinds.
    pub const ALL: [SensorKind; 4] = [
        SensorKind::Temperature,
        SensorKind::Humidity,
        SensorKind::AirQuality,
        SensorKind::Power,
    ];

    /// Plausible operating range (used for generation and validation).
    pub fn range(&self) -> (f64, f64) {
        match self {
            SensorKind::Temperature => (10.0, 35.0),
            SensorKind::Humidity => (15.0, 80.0),
            SensorKind::AirQuality => (350.0, 2000.0),
            SensorKind::Power => (0.0, 150.0),
        }
    }
}

/// A deployed sensor bound to a BIM element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sensor {
    /// Unique sensor id.
    pub id: String,
    /// What it measures.
    pub kind: SensorKind,
    /// The BIM element it is mounted on.
    pub element: ElementId,
    /// Sampling period (ms).
    pub period_ms: u64,
}

/// One telemetry reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// Producing sensor.
    pub sensor_id: String,
    /// Timestamp (ms).
    pub timestamp_ms: u64,
    /// Measured value.
    pub value: f64,
}

/// A sensor fleet plus its accumulated telemetry history.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SensorNetwork {
    /// Deployed sensors.
    pub sensors: Vec<Sensor>,
    /// Telemetry in timestamp order.
    pub history: Vec<Reading>,
}

impl SensorNetwork {
    /// Deploy `per_element` sensors on each of the given elements,
    /// cycling through sensor kinds.
    pub fn deploy(elements: &[ElementId], per_element: usize) -> SensorNetwork {
        let mut sensors = Vec::with_capacity(elements.len() * per_element);
        for (ei, element) in elements.iter().enumerate() {
            for s in 0..per_element {
                // itrust-lint: allow(panic-reachable) — channel slots match the sensor layout declared at build
                let kind = SensorKind::ALL[(ei + s) % SensorKind::ALL.len()];
                sensors.push(Sensor {
                    id: format!("sens-{ei}-{s}"),
                    kind,
                    element: element.clone(),
                    period_ms: 60_000,
                });
            }
        }
        SensorNetwork { sensors, history: Vec::new() }
    }

    /// Simulate telemetry for `[0, duration_ms)`: a slow sinusoidal drift
    /// plus noise, clamped to the sensor's plausible range. Deterministic
    /// in `seed`.
    pub fn simulate(&mut self, duration_ms: u64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for sensor in &self.sensors {
            let (lo, hi) = sensor.kind.range();
            let mid = (lo + hi) / 2.0;
            let amp = (hi - lo) / 4.0;
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let mut t = 0u64;
            while t < duration_ms {
                let cycle = (t as f64 / 86_400_000.0) * std::f64::consts::TAU;
                let noise: f64 = rng.gen_range(-0.05..0.05) * (hi - lo);
                let value = (mid + amp * (cycle + phase).sin() + noise).clamp(lo, hi);
                self.history.push(Reading {
                    sensor_id: sensor.id.clone(),
                    timestamp_ms: t,
                    value,
                });
                t += sensor.period_ms;
            }
        }
        self.history.sort_by_key(|r| (r.timestamp_ms, r.sensor_id.clone()));
    }

    /// Readings of one sensor, in time order.
    pub fn readings_of(&self, sensor_id: &str) -> Vec<&Reading> {
        self.history.iter().filter(|r| r.sensor_id == sensor_id).collect()
    }

    /// Latest reading per sensor at or before `t_ms` (the twin's "state of
    /// the world" snapshot the AMS consumes).
    pub fn snapshot_at(&self, t_ms: u64) -> Vec<(&Sensor, Option<&Reading>)> {
        self.sensors
            .iter()
            .map(|s| {
                let last = self
                    .history
                    .iter().rfind(|r| r.sensor_id == s.id && r.timestamp_ms <= t_ms);
                (s, last)
            })
            .collect()
    }

    /// Validate that every reading is in its sensor's plausible range and
    /// references a deployed sensor. Returns problem descriptions.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for r in &self.history {
            match self.sensors.iter().find(|s| s.id == r.sensor_id) {
                None => problems.push(format!("reading from unknown sensor {}", r.sensor_id)),
                Some(s) => {
                    let (lo, hi) = s.kind.range();
                    if r.value < lo || r.value > hi {
                        problems.push(format!(
                            "{} reading {} outside [{lo}, {hi}]",
                            r.sensor_id, r.value
                        ));
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bim::BimModel;

    fn network() -> SensorNetwork {
        let model = BimModel::synthetic_campus("c", 2, 2, 3);
        let mut net = SensorNetwork::deploy(&model.element_ids(), 2);
        net.simulate(600_000, 7); // 10 minutes at 1-minute period
        net
    }

    #[test]
    fn deploy_counts_and_binding() {
        let model = BimModel::synthetic_campus("c", 2, 2, 3);
        let net = SensorNetwork::deploy(&model.element_ids(), 2);
        assert_eq!(net.sensors.len(), 24);
        for s in &net.sensors {
            assert!(model.element(&s.element).is_some());
        }
    }

    #[test]
    fn simulation_is_deterministic_and_valid() {
        let a = network();
        let b = network();
        assert_eq!(a.history, b.history);
        assert!(a.validate().is_empty(), "{:?}", a.validate());
        // 10 readings per sensor (t = 0..600000 step 60000).
        assert_eq!(a.history.len(), 24 * 10);
    }

    #[test]
    fn readings_are_time_ordered() {
        let net = network();
        for w in net.history.windows(2) {
            assert!(w[0].timestamp_ms <= w[1].timestamp_ms);
        }
        let one = net.readings_of("sens-0-0");
        assert_eq!(one.len(), 10);
        for w in one.windows(2) {
            assert!(w[0].timestamp_ms < w[1].timestamp_ms);
        }
    }

    #[test]
    fn snapshot_returns_latest_at_time() {
        let net = network();
        let snap = net.snapshot_at(150_000);
        assert_eq!(snap.len(), 24);
        for (_, reading) in &snap {
            let r = reading.expect("every sensor has readings by 150s");
            assert!(r.timestamp_ms <= 150_000);
            assert_eq!(r.timestamp_ms, 120_000, "latest 1-minute tick before 150s");
        }
        // Before any reading exists → None.
        let mut empty = SensorNetwork::deploy(&[crate::bim::ElementId::new("x")], 1);
        empty.history.clear();
        let snap = empty.snapshot_at(0);
        assert!(snap[0].1.is_none());
    }

    #[test]
    fn validation_catches_bad_data() {
        let mut net = network();
        net.history.push(Reading {
            sensor_id: "ghost".into(),
            timestamp_ms: 1,
            value: 1.0,
        });
        net.history.push(Reading {
            sensor_id: "sens-0-0".into(),
            timestamp_ms: 2,
            value: 1e9,
        });
        let problems = net.validate();
        assert!(problems.iter().any(|p| p.contains("unknown sensor")));
        assert!(problems.iter().any(|p| p.contains("outside")));
    }

    #[test]
    fn values_respect_kind_ranges() {
        let net = network();
        for r in &net.history {
            let s = net.sensors.iter().find(|s| s.id == r.sensor_id).unwrap();
            let (lo, hi) = s.kind.range();
            assert!((lo..=hi).contains(&r.value));
        }
    }
}
