//! Figure 2: integrating diverse databases into BIM.
//!
//! The paper's figure shows heterogeneous sources — vendor catalogs, cost
//! tables, permits, sensor registries, building-performance results —
//! flowing into the BIM. This module implements that merge: each source
//! record is matched to a BIM element, its fields are folded into the
//! element's attribute database, a full [`MappingRecord`] is kept for every
//! decision (including failures), and attribute conflicts are surfaced
//! rather than silently overwritten. Experiment F2 measures throughput and
//! consistency over this path.

use crate::bim::{BimModel, ElementId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The kinds of source databases in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// Manufacturer/vendor component catalog.
    VendorCatalog,
    /// Building-permit registry.
    PermitRegistry,
    /// Material/labor cost table.
    CostTable,
    /// IoT sensor registry.
    SensorRegistry,
    /// Building-performance-simulation results.
    BpsResults,
    /// Maintenance history export.
    MaintenanceHistory,
}

impl SourceKind {
    /// All kinds.
    pub const ALL: [SourceKind; 6] = [
        SourceKind::VendorCatalog,
        SourceKind::PermitRegistry,
        SourceKind::CostTable,
        SourceKind::SensorRegistry,
        SourceKind::BpsResults,
        SourceKind::MaintenanceHistory,
    ];
}

/// One record of a source database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceRecord {
    /// Source-local key.
    pub key: String,
    /// The element the record describes (by BIM id), when the source knows
    /// it; some sources only carry free-form references.
    pub element_ref: Option<String>,
    /// Field data to fold into the element.
    pub fields: BTreeMap<String, String>,
}

/// A source database to integrate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceDatabase {
    /// Source name (e.g. "hvac-vendor-catalog").
    pub name: String,
    /// Category.
    pub kind: SourceKind,
    /// Records.
    pub records: Vec<SourceRecord>,
}

/// Why a record failed to integrate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchFailure {
    /// The record carries no element reference.
    NoReference,
    /// The referenced element does not exist in the model.
    UnknownElement(String),
}

/// The decision made for one source record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingRecord {
    /// Source database.
    pub source: String,
    /// Source record key.
    pub record_key: String,
    /// Outcome: matched element or failure.
    pub outcome: Result<ElementId, MatchFailure>,
    /// Attribute conflicts found: (key, existing value, incoming value).
    pub conflicts: Vec<(String, String, String)>,
}

/// Aggregate result of integrating one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegrationReport {
    /// Source name.
    pub source: String,
    /// Records successfully folded into elements.
    pub integrated: usize,
    /// Records with no usable reference.
    pub unmatched: usize,
    /// Attribute conflicts encountered (existing value kept).
    pub conflicts: usize,
    /// One mapping record per source record, in order.
    pub mappings: Vec<MappingRecord>,
}

/// Fold `source` into `model`. Existing attribute values win on conflict
/// (the BIM is authoritative; conflicts are reported for human review —
/// the archival stance on contradictory evidence).
pub fn integrate(model: &mut BimModel, source: &SourceDatabase) -> IntegrationReport {
    integrate_with_obs(model, source, &itrust_obs::ObsCtx::null())
}

/// [`integrate`], recording the merge span and record/conflict counters
/// into `obs`.
pub fn integrate_with_obs(
    model: &mut BimModel,
    source: &SourceDatabase,
    obs: &itrust_obs::ObsCtx,
) -> IntegrationReport {
    let _span = itrust_obs::span!(obs, "twin.integration.integrate");
    let mut report = IntegrationReport {
        source: source.name.clone(),
        integrated: 0,
        unmatched: 0,
        conflicts: 0,
        mappings: Vec::with_capacity(source.records.len()),
    };
    for record in &source.records {
        let outcome = match &record.element_ref {
            None => Err(MatchFailure::NoReference),
            Some(r) => {
                let id = ElementId::new(r.clone());
                if model.element(&id).is_some() {
                    Ok(id)
                } else {
                    Err(MatchFailure::UnknownElement(r.clone()))
                }
            }
        };
        let mut conflicts = Vec::new();
        match &outcome {
            Ok(id) => match model.element_mut(id) {
                Some(element) => {
                    for (k, v) in &record.fields {
                        match element.attributes.get(k) {
                            Some(existing) if existing != v => {
                                conflicts.push((k.clone(), existing.clone(), v.clone()));
                            }
                            Some(_) => {}
                            None => {
                                element.attributes.insert(k.clone(), v.clone());
                            }
                        }
                    }
                    element
                        .external_refs
                        .push((source.name.clone(), record.key.clone()));
                    report.integrated += 1;
                }
                // `outcome` is only Ok when the element resolved above; a
                // miss here means the model changed under us — count it as
                // unmatched rather than aborting the whole integration.
                None => report.unmatched += 1,
            },
            Err(_) => report.unmatched += 1,
        }
        report.conflicts += conflicts.len();
        report.mappings.push(MappingRecord {
            source: source.name.clone(),
            record_key: record.key.clone(),
            outcome,
            conflicts,
        });
    }
    itrust_obs::counter_add!(obs, "twin.integration.records_integrated", report.integrated as u64);
    itrust_obs::counter_add!(obs, "twin.integration.conflicts", report.conflicts as u64);
    report
}

/// Integrate several sources in order; returns one report per source.
pub fn integrate_all(model: &mut BimModel, sources: &[SourceDatabase]) -> Vec<IntegrationReport> {
    sources.iter().map(|s| integrate(model, s)).collect()
}

/// [`integrate_all`] with telemetry recorded into `obs`.
pub fn integrate_all_with_obs(
    model: &mut BimModel,
    sources: &[SourceDatabase],
    obs: &itrust_obs::ObsCtx,
) -> Vec<IntegrationReport> {
    sources.iter().map(|s| integrate_with_obs(model, s, obs)).collect()
}

/// Generate a synthetic source database over a model: `coverage` of the
/// elements get one record each (field names depend on the source kind),
/// plus `orphans` records referencing nonexistent elements and `blanks`
/// with no reference at all. Deterministic in `seed`.
pub fn synthetic_source(
    model: &BimModel,
    kind: SourceKind,
    coverage: f64,
    orphans: usize,
    blanks: usize,
    seed: u64,
) -> SourceDatabase {
    assert!((0.0..=1.0).contains(&coverage));
    let mut rng = StdRng::seed_from_u64(seed);
    let name = format!("{kind:?}").to_lowercase();
    let mut records = Vec::new();
    for (i, id) in model.element_ids().into_iter().enumerate() {
        if rng.gen::<f64>() >= coverage {
            continue;
        }
        let mut fields = BTreeMap::new();
        match kind {
            SourceKind::VendorCatalog => {
                fields.insert("vendor".into(), format!("vendor-{}", i % 7));
                fields.insert("model_no".into(), format!("M-{:04}", rng.gen_range(0..10_000)));
            }
            SourceKind::PermitRegistry => {
                fields.insert("permit_no".into(), format!("P-{:05}", i));
                fields.insert("approved".into(), "true".into());
            }
            SourceKind::CostTable => {
                fields.insert("unit_cost".into(), format!("{}", rng.gen_range(50..5_000)));
                fields.insert("currency".into(), "CAD".into());
            }
            SourceKind::SensorRegistry => {
                fields.insert("sensor_count".into(), format!("{}", rng.gen_range(0..4)));
            }
            SourceKind::BpsResults => {
                fields.insert(
                    "annual_kwh".into(),
                    format!("{}", rng.gen_range(100..100_000)),
                );
            }
            SourceKind::MaintenanceHistory => {
                fields.insert("last_service".into(), format!("20{:02}-01-01", i % 23));
            }
        }
        records.push(SourceRecord {
            key: format!("{name}-{i}"),
            element_ref: Some(id.0),
            fields,
        });
    }
    for o in 0..orphans {
        records.push(SourceRecord {
            key: format!("{name}-orphan-{o}"),
            element_ref: Some(format!("B999/S9/E{o}")),
            fields: BTreeMap::new(),
        });
    }
    for b in 0..blanks {
        records.push(SourceRecord {
            key: format!("{name}-blank-{b}"),
            element_ref: None,
            fields: BTreeMap::new(),
        });
    }
    SourceDatabase { name, kind, records }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BimModel {
        BimModel::synthetic_campus("c", 2, 2, 6)
    }

    #[test]
    fn full_coverage_integrates_every_element() {
        let mut m = model();
        let src = synthetic_source(&m, SourceKind::VendorCatalog, 1.0, 0, 0, 1);
        let report = integrate(&mut m, &src);
        assert_eq!(report.integrated, m.element_count());
        assert_eq!(report.unmatched, 0);
        // Every element gained vendor fields and a back-reference.
        for id in m.element_ids() {
            let e = m.element(&id).unwrap();
            assert!(e.attributes.contains_key("vendor"));
            assert_eq!(e.external_refs.len(), 1);
        }
    }

    #[test]
    fn orphans_and_blanks_reported_not_dropped_silently() {
        let mut m = model();
        let src = synthetic_source(&m, SourceKind::CostTable, 0.5, 3, 2, 2);
        let report = integrate(&mut m, &src);
        assert_eq!(report.unmatched, 5);
        assert_eq!(report.mappings.len(), src.records.len());
        let unknown = report
            .mappings
            .iter()
            .filter(|mr| matches!(mr.outcome, Err(MatchFailure::UnknownElement(_))))
            .count();
        let blank = report
            .mappings
            .iter()
            .filter(|mr| matches!(mr.outcome, Err(MatchFailure::NoReference)))
            .count();
        assert_eq!(unknown, 3);
        assert_eq!(blank, 2);
    }

    #[test]
    fn conflicts_keep_existing_and_are_reported() {
        let mut m = model();
        // "material" already exists on every element from generation.
        let mut fields = BTreeMap::new();
        fields.insert("material".into(), "unobtainium".into());
        let src = SourceDatabase {
            name: "conflicting".into(),
            kind: SourceKind::VendorCatalog,
            records: vec![SourceRecord {
                key: "r1".into(),
                element_ref: Some("B0/S0/E0".into()),
                fields,
            }],
        };
        let before = m.element(&ElementId::new("B0/S0/E0")).unwrap().attributes["material"].clone();
        let report = integrate(&mut m, &src);
        assert_eq!(report.conflicts, 1);
        assert_eq!(report.mappings[0].conflicts.len(), 1);
        let after = &m.element(&ElementId::new("B0/S0/E0")).unwrap().attributes["material"];
        assert_eq!(&before, after, "BIM value is authoritative");
    }

    #[test]
    fn equal_values_are_not_conflicts() {
        let mut m = model();
        let existing = m.element(&ElementId::new("B0/S0/E0")).unwrap().attributes["material"].clone();
        let mut fields = BTreeMap::new();
        fields.insert("material".into(), existing);
        let src = SourceDatabase {
            name: "agreeing".into(),
            kind: SourceKind::VendorCatalog,
            records: vec![SourceRecord {
                key: "r1".into(),
                element_ref: Some("B0/S0/E0".into()),
                fields,
            }],
        };
        let report = integrate(&mut m, &src);
        assert_eq!(report.conflicts, 0);
        assert_eq!(report.integrated, 1);
    }

    #[test]
    fn integrate_all_six_sources() {
        let mut m = model();
        let sources: Vec<SourceDatabase> = SourceKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &k)| synthetic_source(&m, k, 0.8, 1, 1, 10 + i as u64))
            .collect();
        let reports = integrate_all(&mut m, &sources);
        assert_eq!(reports.len(), 6);
        let total: usize = reports.iter().map(|r| r.integrated).sum();
        assert!(total > 0);
        // Elements accumulate refs from multiple sources.
        let max_refs = m
            .element_ids()
            .iter()
            .map(|id| m.element(id).unwrap().external_refs.len())
            .max()
            .unwrap();
        assert!(max_refs >= 3, "max refs {max_refs}");
    }

    #[test]
    fn synthetic_source_is_deterministic() {
        let m = model();
        let a = synthetic_source(&m, SourceKind::BpsResults, 0.7, 2, 2, 42);
        let b = synthetic_source(&m, SourceKind::BpsResults, 0.7, 2, 2, 42);
        assert_eq!(a, b);
    }
}
