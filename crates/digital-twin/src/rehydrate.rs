//! Rehydrating a preserved twin and verifying fidelity.
//!
//! Preservation only counts if the package can be opened later and the
//! twin reconstructed *exactly*. [`rehydrate_twin`] loads the six component
//! records of a twin AIP back into a [`DigitalTwin`], and
//! [`verify_fidelity`] checks both bit-level identity (component digests)
//! and structural invariants (sensor bindings resolve, telemetry validates,
//! paradata still covers every decision-maker) — the measurements of
//! Experiment D4.

use crate::archive::{DigitalTwin, COMPONENTS};
use archival_core::ingest::Repository;
use archival_core::oais::AipManifest;
use archival_core::{ArchivalError, Result};
use serde::{Deserialize, Serialize};
use trustdb::store::Backend;

/// Fidelity report comparing a rehydrated twin against the original.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Per-component bit-level identity (component name, identical?).
    pub bit_identical: Vec<(String, bool)>,
    /// Structural problems found in the rehydrated twin.
    pub structural_issues: Vec<String>,
}

impl FidelityReport {
    /// True when every component is bit-identical and no structural issues
    /// were found.
    pub fn is_perfect(&self) -> bool {
        self.bit_identical.iter().all(|(_, ok)| *ok) && self.structural_issues.is_empty()
    }
}

fn component_record<'m>(
    manifest: &'m AipManifest,
    component: &str,
) -> Result<&'m archival_core::oais::AipRecordEntry> {
    manifest
        .records
        .iter()
        .find(|e| e.record.id.as_str().ends_with(&format!("/{component}")))
        .ok_or_else(|| {
            ArchivalError::NotFound(format!("component record {component} in {}", manifest.aip_id))
        })
}

/// Load a twin back from its AIP. Verifies the manifest first.
pub fn rehydrate_twin<B: Backend>(repo: &Repository<B>, aip_id: &str) -> Result<DigitalTwin> {
    let manifest = repo.manifest(aip_id)?;
    manifest.verify_internal_consistency()?;
    let fetch = |component: &str| -> Result<Vec<u8>> {
        let entry = component_record(&manifest, component)?;
        repo.content(&entry.record.content_digest)
    };
    // The twin name is recoverable from any component record id: dt/<name>/<component>.
    let any_id = component_record(&manifest, "bim")?.record.id.as_str().to_string();
    let name = any_id
        .strip_prefix("dt/")
        .and_then(|s| s.rsplit_once('/').map(|(n, _)| n.to_string()))
        .ok_or_else(|| ArchivalError::Codec(format!("unexpected twin record id {any_id}")))?;
    Ok(DigitalTwin {
        name,
        bim: serde_json::from_slice(&fetch("bim")?)?,
        sensors: serde_json::from_slice(&fetch("sensors")?)?,
        ams: serde_json::from_slice(&fetch("ams")?)?,
        sync_log: serde_json::from_slice(&fetch("sync-log")?)?,
        paradata: serde_json::from_slice(&fetch("paradata")?)?,
        integration_reports: serde_json::from_slice(&fetch("integration")?)?,
    })
}

/// Compare a rehydrated twin against the original and run structural
/// checks on the rehydrated copy.
pub fn verify_fidelity(original: &DigitalTwin, rehydrated: &DigitalTwin) -> FidelityReport {
    let mut bit_identical = Vec::with_capacity(COMPONENTS.len());
    for component in COMPONENTS {
        let a = original.component_bytes(component);
        let b = rehydrated.component_bytes(component);
        bit_identical.push((component.to_string(), a == b));
    }
    let mut structural_issues = Vec::new();
    // Sensor bindings must resolve against the rehydrated BIM.
    for s in &rehydrated.sensors.sensors {
        if rehydrated.bim.element(&s.element).is_none() {
            structural_issues.push(format!("sensor {} bound to missing element {}", s.id, s.element));
        }
    }
    // Telemetry must still validate.
    for p in rehydrated.sensors.validate() {
        structural_issues.push(format!("telemetry: {p}"));
    }
    // Paradata must still cover every logged decision-maker.
    let makers: Vec<&str> =
        rehydrated.ams.control_log.iter().map(|a| a.decided_by.as_str()).collect();
    for missing in rehydrated.paradata.undescribed(makers) {
        structural_issues.push(format!("paradata lost description of {missing}"));
    }
    FidelityReport { bit_identical, structural_issues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::archive_twin;
    use trustdb::store::{MemoryBackend, ObjectStore};

    fn preserved() -> (Repository<MemoryBackend>, DigitalTwin, String) {
        let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
        let twin = DigitalTwin::synthetic("Campus", 3, 1, 300_000, 9);
        let receipt = archive_twin(&repo, &twin, 1_000, "archivist").unwrap();
        (repo, twin, receipt.aip_id)
    }

    #[test]
    fn round_trip_is_bit_perfect() {
        let (repo, original, aip) = preserved();
        let rehydrated = rehydrate_twin(&repo, &aip).unwrap();
        assert_eq!(rehydrated, original);
        let report = verify_fidelity(&original, &rehydrated);
        assert!(report.is_perfect(), "{report:?}");
        assert_eq!(report.bit_identical.len(), 6);
    }

    #[test]
    fn storage_corruption_is_detected_not_silently_loaded() {
        let (repo, _original, aip) = preserved();
        // Corrupt the stored BIM component.
        let manifest = repo.manifest(&aip).unwrap();
        let bim_entry = manifest
            .records
            .iter()
            .find(|e| e.record.id.as_str().ends_with("/bim"))
            .unwrap();
        repo.store()
            .backend()
            .tamper(&bim_entry.record.content_digest, |v| v[10] ^= 0xff);
        // A fixity sweep finds it even though rehydrate (which trusts the
        // digest lookup) may parse or fail depending on the corrupted byte.
        let sweep = repo.fixity_sweep(2_000).unwrap();
        assert_eq!(sweep.incidents.len(), 1);
    }

    #[test]
    fn fidelity_detects_component_drift() {
        let (_repo, original, _aip) = preserved();
        let mut drifted = original.clone();
        drifted
            .bim
            .element_mut(&crate::bim::ElementId::new("B0/S0/E0"))
            .unwrap()
            .attributes
            .insert("material".into(), "drifted".into());
        let report = verify_fidelity(&original, &drifted);
        assert!(!report.is_perfect());
        let bim_flag = report.bit_identical.iter().find(|(c, _)| c == "bim").unwrap();
        assert!(!bim_flag.1);
        // Other components remain identical.
        let sensors_flag =
            report.bit_identical.iter().find(|(c, _)| c == "sensors").unwrap();
        assert!(sensors_flag.1);
    }

    #[test]
    fn fidelity_detects_structural_damage() {
        let (_repo, original, _aip) = preserved();
        let mut broken = original.clone();
        // Orphan a sensor by renaming its element binding.
        broken.sensors.sensors[0].element = crate::bim::ElementId::new("B99/S9/E9");
        let report = verify_fidelity(&original, &broken);
        assert!(report
            .structural_issues
            .iter()
            .any(|i| i.contains("missing element")));
    }

    #[test]
    fn rehydrate_unknown_aip_errors() {
        let repo: Repository<MemoryBackend> =
            Repository::new(ObjectStore::new(MemoryBackend::new()));
        assert!(rehydrate_twin(&repo, "aip-999999").is_err());
    }

    #[test]
    fn rehydrate_non_twin_aip_errors_cleanly() {
        let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
        // Ingest an unrelated AIP.
        use archival_core::oais::{Sip, SubmissionItem};
        use archival_core::provenance::ProvenanceChain;
use trustdb::event::EventKind;
        use archival_core::record::{Classification, DocumentaryForm, Record};
        let record = Record::over_content(
            "misc/r1",
            "t",
            "c",
            1,
            "a",
            DocumentaryForm::textual("text/plain"),
            Classification::Public,
            b"x",
        );
        let mut provenance = ProvenanceChain::new("misc/r1");
        provenance.append(1, "c", EventKind::Creation, "success", "").unwrap();
        let receipt = repo
            .ingest(
                Sip::new("P", 1).with_item(SubmissionItem {
                    record,
                    content: b"x".to_vec(),
                    provenance,
                }),
                1_000,
                "a",
            )
            .unwrap();
        assert!(matches!(
            rehydrate_twin(&repo, &receipt.aip_id),
            Err(ArchivalError::NotFound(_))
        ));
    }
}
