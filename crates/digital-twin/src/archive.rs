//! Assembling a complete digital twin and packaging it as an AIP.
//!
//! The study's central question — *can a digital twin be preserved, and
//! what is required at the point of creation to ensure that it can be?* —
//! gets an operational answer: a twin is preservation-ready when every
//! component serializes canonically, every automated decision-maker is
//! described in the paradata registry, and the synchronization log fixes
//! the twin's temporal boundary. [`archive_twin`] then packages the six
//! components as records of one accession.

use crate::ams::AssetManagement;
use crate::bim::BimModel;
use crate::integration::{integrate_all_with_obs, synthetic_source, IntegrationReport, SourceKind};
use crate::paradata::{ParadataRegistry, ToolDescription, ToolKind};
use crate::sensors::SensorNetwork;
use crate::sync::{Direction, SyncLog};
use archival_core::ingest::{AccessionReceipt, Repository};
use archival_core::oais::{Sip, SubmissionItem};
use archival_core::provenance::ProvenanceChain;
use trustdb::event::EventKind;
use archival_core::record::{Classification, DocumentaryForm, Medium, Record};
use archival_core::Result;
use serde::{Deserialize, Serialize};
use trustdb::store::Backend;

/// A complete digital twin: the "ecosystem of interoperable subsystems".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigitalTwin {
    /// Twin name (site).
    pub name: String,
    /// The BIM (after database integration).
    pub bim: BimModel,
    /// Sensor fleet + telemetry history.
    pub sensors: SensorNetwork,
    /// Asset management state.
    pub ams: AssetManagement,
    /// Physical↔digital synchronization log.
    pub sync_log: SyncLog,
    /// AI/automation paradata.
    pub paradata: ParadataRegistry,
    /// Reports from the Figure 2 database integration.
    pub integration_reports: Vec<IntegrationReport>,
}

/// Record-id suffixes of the six component records inside a twin AIP.
pub const COMPONENTS: [&str; 6] =
    ["bim", "sensors", "ams", "sync-log", "paradata", "integration"];

impl DigitalTwin {
    /// Build a fully-populated synthetic twin: a campus BIM, six integrated
    /// source databases, a deployed sensor fleet with `telemetry_ms` of
    /// history, comfort-rule automation, sync events, and a complete
    /// paradata registry. Deterministic in `seed`.
    pub fn synthetic(
        name: &str,
        buildings: usize,
        sensors_per_element: usize,
        telemetry_ms: u64,
        seed: u64,
    ) -> DigitalTwin {
        Self::synthetic_with_obs(name, buildings, sensors_per_element, telemetry_ms, seed, &itrust_obs::ObsCtx::null())
    }

    /// [`DigitalTwin::synthetic`], recording integration and sync telemetry
    /// into `obs`.
    pub fn synthetic_with_obs(
        name: &str,
        buildings: usize,
        sensors_per_element: usize,
        telemetry_ms: u64,
        seed: u64,
        obs: &itrust_obs::ObsCtx,
    ) -> DigitalTwin {
        let mut bim = BimModel::synthetic_campus(name, buildings, 3, 8);
        // Five synthetic sources plus a *real* BPS-derived source: the
        // building-performance results come from the 1R1C thermal model run
        // against each building's own BIM (the BIM-feeds-BPS loop of §3.3).
        let outdoor = crate::bps::outdoor_profile(72, 2.0, 6.0);
        let bps_source = {
            let mut records = Vec::new();
            for building in &bim.buildings {
                let result = crate::bps::simulate(building, &outdoor);
                for storey in &building.storeys {
                    for e in &storey.elements {
                        let mut fields = std::collections::BTreeMap::new();
                        fields.insert(
                            "annual_kwh".to_string(),
                            format!(
                                "{:.0}",
                                (result.total_heating_kwh() + result.total_cooling_kwh())
                                    * 365.0 / 3.0
                                    / building.element_count() as f64
                            ),
                        );
                        fields.insert("bps_tool".to_string(), crate::bps::TOOL_ID.to_string());
                        records.push(crate::integration::SourceRecord {
                            key: format!("bps-{}", e.id),
                            element_ref: Some(e.id.0.clone()),
                            fields,
                        });
                    }
                }
            }
            crate::integration::SourceDatabase {
                name: "bpsresults".into(),
                kind: SourceKind::BpsResults,
                records,
            }
        };
        let mut sources: Vec<_> = SourceKind::ALL
            .iter()
            .enumerate()
            .filter(|(_, &k)| k != SourceKind::BpsResults)
            .map(|(i, &k)| synthetic_source(&bim, k, 0.8, 1, 1, seed.wrapping_add(i as u64)))
            .collect();
        sources.push(bps_source);
        let integration_reports = integrate_all_with_obs(&mut bim, &sources, obs);

        let mut sensors = SensorNetwork::deploy(&bim.element_ids(), sensors_per_element);
        sensors.simulate(telemetry_ms, seed.wrapping_add(100));

        let mut sync_log = SyncLog::new();
        let telemetry_blob =
            // itrust-lint: allow(panic-reachable) — plain in-memory telemetry structs serialize infallibly
            serde_json::to_vec(&sensors.history).expect("history serializable");
        sync_log.record_with_obs(telemetry_ms, Direction::Inbound, "telemetry", &telemetry_blob, obs);

        let mut ams = AssetManagement::new();
        let actions = ams.run_comfort_rules(&sensors, telemetry_ms, 19.0, 24.0);
        if actions > 0 {
            let control_blob =
                // itrust-lint: allow(panic-reachable) — plain in-memory control-log structs serialize infallibly
                serde_json::to_vec(&ams.control_log).expect("control log serializable");
            sync_log.record_with_obs(telemetry_ms, Direction::Outbound, "control", &control_blob, obs);
        }

        let mut paradata = ParadataRegistry::new();
        paradata
            .register(ToolDescription {
                id: "rule:comfort-band-v1".into(),
                kind: ToolKind::Rule,
                version: "1.0".into(),
                purpose: "HVAC comfort-band control".into(),
                inputs: vec!["temperature telemetry".into()],
                config_digest: None,
            })
            // itrust-lint: allow(panic-reachable) — fresh registry with distinct hard-coded ids; register cannot collide
            .expect("fresh registry");
        paradata
            .register(ToolDescription {
                id: crate::bps::TOOL_ID.into(),
                kind: ToolKind::Simulator,
                version: "1.0".into(),
                purpose: "1R1C building performance simulation from BIM".into(),
                inputs: vec!["BIM element inventory".into(), "outdoor temperature profile".into()],
                config_digest: Some(trustdb::hash::sha256(b"1r1c-defaults")),
            })
            // itrust-lint: allow(panic-reachable) — fresh registry with distinct hard-coded ids; register cannot collide
            .expect("fresh registry");
        paradata
            .register(ToolDescription {
                id: "sim:sensor-telemetry-v1".into(),
                kind: ToolKind::Simulator,
                version: "1.0".into(),
                purpose: "synthetic telemetry generation".into(),
                inputs: vec!["sensor registry".into()],
                config_digest: Some(trustdb::hash::sha256(&seed.to_le_bytes())),
            })
            // itrust-lint: allow(panic-reachable) — fresh registry with distinct hard-coded ids; register cannot collide
            .expect("fresh registry");

        DigitalTwin {
            name: name.to_string(),
            bim,
            sensors,
            ams,
            sync_log,
            paradata,
            integration_reports,
        }
    }

    /// Preservation-readiness check: the "what is required at the point of
    /// creation" answer. Returns blocking issues (empty = ready).
    pub fn preservation_readiness(&self) -> Vec<String> {
        let mut issues = Vec::new();
        if self.bim.element_count() == 0 {
            issues.push("BIM has no elements".into());
        }
        for p in self.sensors.validate() {
            issues.push(format!("sensor data: {p}"));
        }
        // Every decision-maker in the control log must be described.
        let makers: Vec<&str> =
            self.ams.control_log.iter().map(|a| a.decided_by.as_str()).collect();
        for missing in self.paradata.undescribed(makers) {
            issues.push(format!("undescribed automation tool: {missing}"));
        }
        if self.sync_log.last_inbound_ms().is_none() && !self.sensors.history.is_empty() {
            issues.push("telemetry exists but no inbound sync event fixes its boundary".into());
        }
        issues
    }

    /// Serialize one component by suffix.
    pub fn component_bytes(&self, component: &str) -> Option<Vec<u8>> {
        let bytes = match component {
            "bim" => serde_json::to_vec_pretty(&self.bim),
            "sensors" => serde_json::to_vec_pretty(&self.sensors),
            "ams" => serde_json::to_vec_pretty(&self.ams),
            "sync-log" => serde_json::to_vec_pretty(&self.sync_log),
            "paradata" => serde_json::to_vec_pretty(&self.paradata),
            "integration" => serde_json::to_vec_pretty(&self.integration_reports),
            _ => return None,
        };
        bytes.ok()
    }
}

/// Package a preservation-ready twin into `repo` as one AIP with six
/// component records. Refuses a twin with readiness issues.
pub fn archive_twin<B: Backend>(
    repo: &Repository<B>,
    twin: &DigitalTwin,
    now_ms: u64,
    archivist: &str,
) -> Result<AccessionReceipt> {
    let issues = twin.preservation_readiness();
    if !issues.is_empty() {
        return Err(archival_core::ArchivalError::InvariantViolation(format!(
            "twin not preservation-ready: {}",
            issues.join("; ")
        )));
    }
    let mut sip = Sip::new(format!("{} facilities management", twin.name), now_ms);
    for component in COMPONENTS {
        let body = twin.component_bytes(component).ok_or_else(|| {
            archival_core::ArchivalError::InvariantViolation(format!(
                "unknown twin component {component}"
            ))
        })?;
        let id = format!("dt/{}/{component}", twin.name);
        let record = Record::over_content(
            id.clone(),
            format!("Digital twin component: {component}"),
            format!("{} facilities management", twin.name),
            now_ms,
            "digital-twin-operation",
            DocumentaryForm {
                medium: Medium::Interactive,
                format: "application/json".into(),
                intrinsic_elements: vec![format!("component:{component}")],
                extrinsic_elements: vec![],
            },
            Classification::Public,
            &body,
        );
        let mut provenance = ProvenanceChain::new(id);
        provenance.append(
            now_ms,
            "digital-twin-platform",
            EventKind::Creation,
            "success",
            format!("serialized live {component} state"),
        )?;
        sip = sip.with_item(SubmissionItem { record, content: body, provenance });
    }
    repo.ingest(sip, now_ms, archivist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustdb::store::{MemoryBackend, ObjectStore};

    fn twin() -> DigitalTwin {
        DigitalTwin::synthetic("TestCampus", 2, 1, 300_000, 5)
    }

    #[test]
    fn synthetic_twin_is_fully_populated() {
        let t = twin();
        assert!(t.bim.element_count() > 0);
        assert!(!t.sensors.history.is_empty());
        assert_eq!(t.integration_reports.len(), 6);
        assert!(!t.sync_log.is_empty());
        assert!(t.paradata.tools().len() >= 2);
    }

    #[test]
    fn synthetic_twin_is_deterministic() {
        assert_eq!(twin(), twin());
        let other = DigitalTwin::synthetic("TestCampus", 2, 1, 300_000, 6);
        assert_ne!(twin(), other);
    }

    #[test]
    fn fresh_twin_is_preservation_ready() {
        let issues = twin().preservation_readiness();
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn undescribed_tool_blocks_preservation() {
        let mut t = twin();
        t.paradata = ParadataRegistry::new(); // lose the tool descriptions
        let issues = t.preservation_readiness();
        assert!(
            issues.iter().any(|i| i.contains("undescribed automation tool")),
            "{issues:?}"
        );
        let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
        assert!(archive_twin(&repo, &t, 1_000, "archivist").is_err());
    }

    #[test]
    fn missing_sync_boundary_blocks_preservation() {
        let mut t = twin();
        t.sync_log = SyncLog::new();
        let issues = t.preservation_readiness();
        assert!(issues.iter().any(|i| i.contains("sync event")), "{issues:?}");
    }

    #[test]
    fn archive_produces_six_record_aip() {
        let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
        let receipt = archive_twin(&repo, &twin(), 1_000, "archivist").unwrap();
        assert_eq!(receipt.record_count, 6);
        let manifest = repo.manifest(&receipt.aip_id).unwrap();
        manifest.verify_internal_consistency().unwrap();
        for component in COMPONENTS {
            assert!(
                manifest
                    .records
                    .iter()
                    .any(|e| e.record.id.as_str().ends_with(component)),
                "missing component record {component}"
            );
        }
    }

    #[test]
    fn component_bytes_rejects_unknown() {
        assert!(twin().component_bytes("warp-core").is_none());
        for c in COMPONENTS {
            assert!(twin().component_bytes(c).is_some());
        }
    }
}
