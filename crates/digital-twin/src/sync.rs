//! Physical↔digital synchronization log.
//!
//! A twin is only a twin while the digital side tracks the physical side.
//! Every state change crossing the boundary — a sensor batch arriving, a
//! renovation updating the BIM, a control action going out — is logged
//! here with direction and payload digest, so the preserved twin can show
//! *that* and *when* it was synchronized (one of the study's "what must be
//! captured at creation" answers).

use serde::{Deserialize, Serialize};
use trustdb::hash::{sha256, Digest};

/// Direction of a synchronization event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Physical → digital (telemetry, surveys).
    Inbound,
    /// Digital → physical (control actions, work orders).
    Outbound,
}

/// One synchronization event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncEvent {
    /// Sequence number.
    pub seq: u64,
    /// Event time (ms).
    pub timestamp_ms: u64,
    /// Direction.
    pub direction: Direction,
    /// Channel (e.g. "telemetry", "bim-update", "control").
    pub channel: String,
    /// Digest of the payload crossing the boundary.
    pub payload_digest: Digest,
    /// Size of the payload (bytes).
    pub payload_bytes: u64,
}

/// Append-only synchronization log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SyncLog {
    events: Vec<SyncEvent>,
}

impl SyncLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a crossing; the payload is hashed, not stored.
    pub fn record(
        &mut self,
        timestamp_ms: u64,
        direction: Direction,
        channel: impl Into<String>,
        payload: &[u8],
    ) -> &SyncEvent {
        self.record_with_obs(timestamp_ms, direction, channel, payload, &itrust_obs::ObsCtx::null())
    }

    /// [`SyncLog::record`], timed into `obs` (the log itself is a plain
    /// serializable value, so it does not carry a context).
    pub fn record_with_obs(
        &mut self,
        timestamp_ms: u64,
        direction: Direction,
        channel: impl Into<String>,
        payload: &[u8],
        obs: &itrust_obs::ObsCtx,
    ) -> &SyncEvent {
        let _span = itrust_obs::span!(obs, "twin.sync.record");
        itrust_obs::counter_add!(obs, "twin.sync.payload_bytes", payload.len() as u64);
        let seq = self.events.len() as u64;
        self.events.push(SyncEvent {
            seq,
            timestamp_ms,
            direction,
            channel: channel.into(),
            payload_digest: sha256(payload),
            payload_bytes: payload.len() as u64,
        });
        // itrust-lint: allow(panic-reachable) — event pushed on the previous line
        self.events.last().unwrap()
    }

    /// All events.
    pub fn events(&self) -> &[SyncEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the latest inbound event — the twin's staleness marker: the
    /// moment after which the digital side no longer reflects the physical.
    pub fn last_inbound_ms(&self) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.direction == Direction::Inbound)
            .map(|e| e.timestamp_ms)
            .max()
    }

    /// Verify a payload against the recorded digest at `seq`.
    pub fn verify_payload(&self, seq: u64, payload: &[u8]) -> bool {
        self.events
            .get(seq as usize)
            .is_some_and(|e| e.payload_digest == sha256(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut log = SyncLog::new();
        assert!(log.is_empty());
        log.record(100, Direction::Inbound, "telemetry", b"batch-1");
        log.record(200, Direction::Outbound, "control", b"setpoint 21");
        log.record(300, Direction::Inbound, "telemetry", b"batch-2");
        assert_eq!(log.len(), 3);
        assert_eq!(log.last_inbound_ms(), Some(300));
        assert_eq!(log.events()[1].direction, Direction::Outbound);
        assert_eq!(log.events()[0].seq, 0);
        assert_eq!(log.events()[2].seq, 2);
    }

    #[test]
    fn payload_verification() {
        let mut log = SyncLog::new();
        log.record(1, Direction::Inbound, "telemetry", b"the batch");
        assert!(log.verify_payload(0, b"the batch"));
        assert!(!log.verify_payload(0, b"a different batch"));
        assert!(!log.verify_payload(9, b"the batch"));
    }

    #[test]
    fn no_inbound_means_no_staleness_marker() {
        let mut log = SyncLog::new();
        log.record(1, Direction::Outbound, "control", b"x");
        assert_eq!(log.last_inbound_ms(), None);
    }

    #[test]
    fn payload_sizes_recorded() {
        let mut log = SyncLog::new();
        log.record(1, Direction::Inbound, "telemetry", &[0u8; 1234]);
        assert_eq!(log.events()[0].payload_bytes, 1234);
    }

    #[test]
    fn serde_round_trip() {
        let mut log = SyncLog::new();
        log.record(1, Direction::Inbound, "telemetry", b"x");
        let json = serde_json::to_string(&log).unwrap();
        let back: SyncLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
        assert!(back.verify_payload(0, b"x"));
    }
}
