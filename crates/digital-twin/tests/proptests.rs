//! Property-based tests over the digital-twin subsystems.

use digital_twin::bim::BimModel;
use digital_twin::integration::{integrate, synthetic_source, SourceKind};
use digital_twin::sync::{Direction, SyncLog};
use proptest::prelude::*;

proptest! {
    /// Synthetic campuses have exactly the requested shape and digest
    /// deterministically.
    #[test]
    fn campus_shape_and_determinism(b in 1usize..6, s in 1usize..4, e in 1usize..8) {
        let m1 = BimModel::synthetic_campus("c", b, s, e);
        let m2 = BimModel::synthetic_campus("c", b, s, e);
        prop_assert_eq!(m1.element_count(), b * s * e);
        prop_assert_eq!(m1.digest(), m2.digest());
        // Element ids resolve.
        for id in m1.element_ids() {
            prop_assert!(m1.element(&id).is_some());
        }
    }

    /// Integration accounting: integrated + unmatched == records in, and
    /// mapping records cover every input record in order.
    #[test]
    fn integration_accounting(
        coverage in 0.0f64..=1.0,
        orphans in 0usize..10,
        blanks in 0usize..10,
        seed in any::<u64>(),
    ) {
        let mut model = BimModel::synthetic_campus("c", 2, 2, 5);
        let src = synthetic_source(&model, SourceKind::CostTable, coverage, orphans, blanks, seed);
        let total = src.records.len();
        let report = integrate(&mut model, &src);
        prop_assert_eq!(report.integrated + report.unmatched, total);
        prop_assert_eq!(report.mappings.len(), total);
        prop_assert!(report.unmatched >= orphans + blanks);
        for (mapping, record) in report.mappings.iter().zip(&src.records) {
            prop_assert_eq!(&mapping.record_key, &record.key);
        }
    }

    /// Sync-log payload verification accepts the original payload and
    /// rejects any modification.
    #[test]
    fn sync_log_payload_binding(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..64), 1..10)
    ) {
        let mut log = SyncLog::new();
        for (i, p) in payloads.iter().enumerate() {
            log.record(i as u64, Direction::Inbound, "telemetry", p);
        }
        for (i, p) in payloads.iter().enumerate() {
            prop_assert!(log.verify_payload(i as u64, p));
            let mut altered = p.clone();
            altered[0] ^= 0xff;
            prop_assert!(!log.verify_payload(i as u64, &altered));
        }
        prop_assert_eq!(log.last_inbound_ms(), Some(payloads.len() as u64 - 1));
    }

    /// Twin component serialization round-trips for arbitrary small twins.
    #[test]
    fn twin_components_round_trip(buildings in 1usize..3, seed in any::<u64>()) {
        use digital_twin::archive::{DigitalTwin, COMPONENTS};
        let twin = DigitalTwin::synthetic("T", buildings, 1, 120_000, seed);
        for component in COMPONENTS {
            let bytes = twin.component_bytes(component).unwrap();
            prop_assert!(!bytes.is_empty());
            // Valid JSON, and serialization is deterministic call-to-call.
            let _: serde_json::Value = serde_json::from_slice(&bytes).unwrap();
            prop_assert_eq!(twin.component_bytes(component).unwrap(), bytes);
        }
    }
}
