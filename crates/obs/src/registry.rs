//! Per-context metrics registry: atomic counters, gauges, and fixed-bucket
//! exponential histograms, keyed by static names.
//!
//! Each [`crate::ObsCtx`] owns one [`Registry`]. Registration takes a short
//! mutex on first use of a name; every subsequent operation on the returned
//! `Arc`-backed handle is lock-free atomics. There is no process-global
//! table — two contexts with the same metric names record into disjoint
//! storage.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets. Bucket `i < BUCKET_COUNT - 1` covers
/// `[lo(i), lo(i+1))` with `lo(0) = 0`, `lo(i) = 2^(i+5)`; the final bucket
/// is unbounded. The range therefore spans 32 ns .. ~2^35 ns (~34 s) with
/// one sub-32 bucket and one overflow bucket — good resolution for
/// nanosecond latencies while still usable for sizes and counts.
pub const BUCKET_COUNT: usize = 32;

/// Lower bound (inclusive) of bucket `i`.
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i + 4)
    }
}

/// Upper bound (exclusive) of bucket `i`, or `u64::MAX` for the last.
pub(crate) fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_lo(i + 1)
    }
}

fn bucket_index(value: u64) -> usize {
    if value < 32 {
        return 0;
    }
    // value >= 32 → bits >= 6; bucket i holds values with bits == i + 5.
    let bits = 64 - value.leading_zeros() as usize;
    (bits - 5).min(BUCKET_COUNT - 1)
}

/// Monotonically increasing event count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous level (can go up and down).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Set to `value` if it exceeds the current reading (high-water mark).
    pub fn max_of(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Fixed-bucket exponential histogram of `u64` observations (conventionally
/// nanoseconds for span latencies).
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        // itrust-lint: allow(panic-reachable) — series slots are indexed by handles this registry issued
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]` by cumulative bucket walk with
    /// linear interpolation inside the winning bucket, clamped to the
    /// observed min/max so single-observation histograms report exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i).min(self.max().max(lo));
                let frac = (rank - seen) as f64 / in_bucket as f64;
                let est = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                return (est as u64).clamp(self.min(), self.max());
            }
            seen += in_bucket;
        }
        self.max()
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    pub(crate) fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Cloneable handle to one counter in one context's registry. The null
/// handle (from a null [`crate::ObsCtx`], or `Default`) drops every update.
#[derive(Clone, Default)]
pub struct CounterHandle(pub(crate) Option<Arc<Counter>>);

impl CounterHandle {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.0 {
            c.add(delta);
        }
    }

    /// Current value; `0` for the null handle.
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }
}

/// Cloneable handle to one gauge in one context's registry.
#[derive(Clone, Default)]
pub struct GaugeHandle(pub(crate) Option<Arc<Gauge>>);

impl GaugeHandle {
    pub fn set(&self, value: i64) {
        if let Some(g) = &self.0 {
            g.set(value);
        }
    }

    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.add(delta);
        }
    }

    /// Set to `value` if it exceeds the current reading (high-water mark).
    pub fn max_of(&self, value: i64) {
        if let Some(g) = &self.0 {
            g.max_of(value);
        }
    }

    /// Current value; `0` for the null handle.
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.get())
    }
}

/// Cloneable handle to one histogram in one context's registry.
#[derive(Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<Histogram>>);

impl HistogramHandle {
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    pub fn record_duration(&self, d: Duration) {
        if let Some(h) = &self.0 {
            h.record_duration(d);
        }
    }

    /// Observation count; `0` for the null handle.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count())
    }

    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum())
    }

    pub fn min(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.min())
    }

    pub fn max(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.max())
    }

    pub fn mean(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |h| h.mean())
    }

    pub fn quantile(&self, q: f64) -> u64 {
        self.0.as_ref().map_or(0, |h| h.quantile(q))
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// One context's metric table. Names are partitioned by kind; a name used
/// as two different kinds is an instrumentation bug and panics.
#[derive(Default)]
pub(crate) struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
pub(crate) struct RegistryInner {
    pub(crate) counters: BTreeMap<&'static str, Arc<Counter>>,
    pub(crate) gauges: BTreeMap<&'static str, Arc<Gauge>>,
    pub(crate) histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

impl RegistryInner {
    fn kind_of(&self, name: &str) -> Option<&'static str> {
        if self.counters.contains_key(name) {
            Some("counter")
        } else if self.gauges.contains_key(name) {
            Some("gauge")
        } else if self.histograms.contains_key(name) {
            Some("histogram")
        } else {
            None
        }
    }
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().expect("metrics registry poisoned")
    }

    /// Look up or create the counter `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind — a
    /// name collision is a bug at the instrumentation site, not a runtime
    /// condition to tolerate silently.
    pub(crate) fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = self.lock();
        if let Some(c) = map.counters.get(name) {
            return c.clone();
        }
        if let Some(kind) = map.kind_of(name) {
            drop(map); // release (don't poison) the registry before panicking
            // itrust-lint: allow(panic-reachable) — kind collision is an instrumentation-site bug, documented as panicking
            panic!("metric {name:?} is a {kind}, not a counter");
        }
        map.counters.entry(name).or_default().clone()
    }

    /// Look up or create the gauge `name`. Panics on kind collision.
    pub(crate) fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut map = self.lock();
        if let Some(g) = map.gauges.get(name) {
            return g.clone();
        }
        if let Some(kind) = map.kind_of(name) {
            drop(map);
            // itrust-lint: allow(panic-reachable) — kind collision is an instrumentation-site bug, documented as panicking
            panic!("metric {name:?} is a {kind}, not a gauge");
        }
        map.gauges.entry(name).or_default().clone()
    }

    /// Look up or create the histogram `name`. Panics on kind collision.
    pub(crate) fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.lock();
        if let Some(h) = map.histograms.get(name) {
            return h.clone();
        }
        if let Some(kind) = map.kind_of(name) {
            drop(map);
            // itrust-lint: allow(panic-reachable) — kind collision is an instrumentation-site bug, documented as panicking
            panic!("metric {name:?} is a {kind}, not a histogram");
        }
        map.histograms.entry(name).or_default().clone()
    }

    /// Names of all registered metrics, sorted.
    pub(crate) fn metric_names(&self) -> Vec<&'static str> {
        let map = self.lock();
        let mut names: Vec<&'static str> = map
            .counters
            .keys()
            .chain(map.gauges.keys())
            .chain(map.histograms.keys())
            .copied()
            .collect();
        names.sort_unstable();
        names
    }

    /// Zero every registered metric (registrations are kept).
    pub(crate) fn reset(&self) {
        let map = self.lock();
        for c in map.counters.values() {
            c.reset();
        }
        for g in map.gauges.values() {
            g.reset();
        }
        for h in map.histograms.values() {
            h.reset();
        }
    }

    /// Run `f` over the registry contents under the lock.
    pub(crate) fn with_inner<T>(&self, f: impl FnOnce(&RegistryInner) -> T) -> T {
        f(&self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotone() {
        assert_eq!(bucket_lo(0), 0);
        for i in 0..BUCKET_COUNT - 1 {
            assert_eq!(bucket_hi(i), bucket_lo(i + 1), "bucket {i} not contiguous");
            assert!(bucket_lo(i) < bucket_hi(i));
        }
        assert_eq!(bucket_hi(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn bucket_index_matches_bounds() {
        for value in [0u64, 1, 31, 32, 33, 63, 64, 1023, 1024, 1 << 20, u64::MAX] {
            let i = bucket_index(value);
            assert!(
                bucket_lo(i) <= value && (i == BUCKET_COUNT - 1 || value < bucket_hi(i)),
                "value {value} landed in bucket {i} [{}, {})",
                bucket_lo(i),
                bucket_hi(i)
            );
        }
    }

    #[test]
    fn kind_collision_panics() {
        let reg = Registry::default();
        reg.counter("test.registry.collision");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.gauge("test.registry.collision")
        }));
        assert!(err.is_err());
    }

    #[test]
    fn same_name_same_storage_different_registries_disjoint() {
        let a = Registry::default();
        let b = Registry::default();
        a.counter("test.registry.shared").add(3);
        a.counter("test.registry.shared").add(4);
        assert_eq!(a.counter("test.registry.shared").get(), 7);
        assert_eq!(b.counter("test.registry.shared").get(), 0);
    }
}
