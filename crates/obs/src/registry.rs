//! Global metrics registry: atomic counters, gauges, and fixed-bucket
//! exponential histograms, keyed by static names.
//!
//! Registration takes a short mutex on first use of a name; every
//! subsequent operation on the returned `&'static` handle is lock-free
//! atomics. Metrics live for the process lifetime (entries are leaked
//! intentionally — the registry IS the process-global table).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of histogram buckets. Bucket `i < BUCKET_COUNT - 1` covers
/// `[lo(i), lo(i+1))` with `lo(0) = 0`, `lo(i) = 2^(i+5)`; the final bucket
/// is unbounded. The range therefore spans 32 ns .. ~2^35 ns (~34 s) with
/// one sub-32 bucket and one overflow bucket — good resolution for
/// nanosecond latencies while still usable for sizes and counts.
pub const BUCKET_COUNT: usize = 32;

/// Lower bound (inclusive) of bucket `i`.
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i + 4)
    }
}

/// Upper bound (exclusive) of bucket `i`, or `u64::MAX` for the last.
pub(crate) fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_lo(i + 1)
    }
}

fn bucket_index(value: u64) -> usize {
    if value < 32 {
        return 0;
    }
    // value >= 32 → bits >= 6; bucket i holds values with bits == i + 5.
    let bits = 64 - value.leading_zeros() as usize;
    (bits - 5).min(BUCKET_COUNT - 1)
}

/// Monotonically increasing event count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous level (can go up and down).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Set to `value` if it exceeds the current reading (high-water mark).
    pub fn max_of(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Fixed-bucket exponential histogram of `u64` observations (conventionally
/// nanoseconds for span latencies).
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]` by cumulative bucket walk with
    /// linear interpolation inside the winning bucket, clamped to the
    /// observed min/max so single-observation histograms report exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i).min(self.max().max(lo));
                let frac = (rank - seen) as f64 / in_bucket as f64;
                let est = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                return (est as u64).clamp(self.min(), self.max());
            }
            seen += in_bucket;
        }
        self.max()
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub(crate) fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// One registered metric. Variants differ greatly in size (a histogram is
/// ~37 atomics), but entries are registered once and leaked — boxing the
/// histogram would only add an indirection on the hot path.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

static REGISTRY: Mutex<BTreeMap<&'static str, &'static Metric>> = Mutex::new(BTreeMap::new());

fn register(name: &'static str, make: fn() -> Metric) -> &'static Metric {
    let mut map = REGISTRY.lock().expect("metrics registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::new(make())))
}

/// Look up or create the counter `name`.
///
/// Panics if `name` is already registered as a different metric kind — a
/// name collision is a bug at the instrumentation site, not a runtime
/// condition to tolerate silently.
pub fn counter(name: &'static str) -> &'static Counter {
    match register(name, || Metric::Counter(Counter::default())) {
        Metric::Counter(c) => c,
        other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
    }
}

/// Look up or create the gauge `name`. Panics on kind collision.
pub fn gauge(name: &'static str) -> &'static Gauge {
    match register(name, || Metric::Gauge(Gauge::default())) {
        Metric::Gauge(g) => g,
        other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
    }
}

/// Look up or create the histogram `name`. Panics on kind collision.
pub fn histogram(name: &'static str) -> &'static Histogram {
    match register(name, || Metric::Histogram(Histogram::default())) {
        Metric::Histogram(h) => h,
        other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
    }
}

/// Names of all registered metrics, sorted.
pub fn metric_names() -> Vec<&'static str> {
    REGISTRY.lock().expect("metrics registry poisoned").keys().copied().collect()
}

/// Zero every registered metric (registrations are kept). Benches call this
/// between runs so each telemetry snapshot covers exactly one run.
pub fn reset() {
    let map = REGISTRY.lock().expect("metrics registry poisoned");
    for metric in map.values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// Iterate all metrics under the registry lock.
pub(crate) fn for_each(mut f: impl FnMut(&'static str, &'static Metric)) {
    let map = REGISTRY.lock().expect("metrics registry poisoned");
    for (name, metric) in map.iter() {
        f(name, metric);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotone() {
        assert_eq!(bucket_lo(0), 0);
        for i in 0..BUCKET_COUNT - 1 {
            assert_eq!(bucket_hi(i), bucket_lo(i + 1), "bucket {i} not contiguous");
            assert!(bucket_lo(i) < bucket_hi(i));
        }
        assert_eq!(bucket_hi(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn bucket_index_matches_bounds() {
        for value in [0u64, 1, 31, 32, 33, 63, 64, 1023, 1024, 1 << 20, u64::MAX] {
            let i = bucket_index(value);
            assert!(
                bucket_lo(i) <= value && (i == BUCKET_COUNT - 1 || value < bucket_hi(i)),
                "value {value} landed in bucket {i} [{}, {})",
                bucket_lo(i),
                bucket_hi(i)
            );
        }
    }

    #[test]
    fn kind_collision_panics() {
        counter("test.registry.collision");
        let err = std::panic::catch_unwind(|| gauge("test.registry.collision"));
        assert!(err.is_err());
    }
}
