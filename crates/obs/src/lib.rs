//! # itrust-obs — per-run telemetry contexts
//!
//! The paper's position (and ARCHANGEL's before it) is that archival trust
//! requires *demonstrable*, machine-checkable evidence of what the system
//! did. This crate is the workspace's evidence plane for performance and
//! behavior — and evidence must be **attributable**: every run records into
//! its own [`ObsCtx`], never into process-global state, so two concurrent
//! experiments produce disjoint, per-run snapshots and traces.
//!
//! Three layers, all hanging off an [`ObsCtx`] handle:
//!
//! - **Metrics registry** ([`ObsCtx::counter`], [`ObsCtx::gauge`],
//!   [`ObsCtx::histogram`]): atomic counters, gauges, and fixed-bucket
//!   exponential histograms with p50/p90/p99 extraction, keyed by
//!   `&'static str` names. Handles are `Arc`-backed and cloneable;
//!   registration takes a short per-context mutex, every update after that
//!   is pure atomics — hoist handles out of hot loops.
//! - **Spans** ([`ObsCtx::span`], [`span!`]): RAII guards that time a scope
//!   into the context's histogram of the same name and maintain a
//!   per-(thread, context) span stack (`a/b/c` paths). When the context was
//!   built with [`ObsCtx::with_sink`] each completed span also emits a
//!   structured [`SpanEvent`] — e.g. into a [`JsonlTraceSink`] writing
//!   `results/<name>.trace.jsonl`.
//! - **Snapshot** ([`ObsCtx::snapshot`], [`Snapshot`]): serializes the
//!   context's registry to deterministic JSON (sorted names, stable field
//!   order) and renders a human-readable table. Benches write these next to
//!   their `.txt` reports as `results/<name>.telemetry.json`, with a `meta`
//!   block (thread count, seed, workspace version) filled in by the writer
//!   so cross-run diffs are attributable.
//! - **Flight recorder** ([`FlightRecorder`], attached via
//!   [`ObsCtx::with_parts`]): a fixed-capacity ring buffer of the most
//!   recent context-level events. The bench bins dump it from a panic hook
//!   as `results/<name>.blackbox.json`, so a crashed experiment leaves a
//!   post-mortem of its last moments.
//!
//! The **null context** ([`ObsCtx::null`], also `Default`) records nothing
//! and allocates nothing: every operation through it is one `Option` check,
//! so library types default to it and pay effectively zero overhead until a
//! caller attaches a real context (`with_obs(...)` builders by convention).
//!
//! ## Naming convention
//!
//! Metric names are dot-separated `crate.component.operation` paths, e.g.
//! `trustdb.wal.append`. Span names double as histogram names recording
//! nanoseconds. Counters of discrete events end in a plural noun
//! (`trustdb.store.puts`); gauges describe a level (`escs.sim.queue_depth`).

mod ctx;
mod flight;
mod registry;
mod snapshot;
mod span;
mod trace;

pub use ctx::ObsCtx;
pub use flight::{FlightDump, FlightEvent, FlightKind, FlightRecorder};
pub use registry::{
    Counter, CounterHandle, Gauge, GaugeHandle, Histogram, HistogramHandle, BUCKET_COUNT,
};
pub use snapshot::{HistogramSnapshot, Snapshot, SnapshotBucket};
pub use span::{CollectingSink, SpanEvent, SpanGuard, SpanSink};
pub use trace::JsonlTraceSink;

/// Increment a counter on a context: `counter_inc!(obs, "trustdb.store.puts")`.
#[macro_export]
macro_rules! counter_inc {
    ($ctx:expr, $name:literal) => {
        ($ctx).counter_add($name, 1)
    };
}

/// Add to a counter on a context:
/// `counter_add!(obs, "trustdb.wal.bytes_appended", n)`.
#[macro_export]
macro_rules! counter_add {
    ($ctx:expr, $name:literal, $delta:expr) => {
        ($ctx).counter_add($name, $delta)
    };
}

/// Set a gauge on a context: `gauge_set!(obs, "escs.sim.queue_depth", d)`.
#[macro_export]
macro_rules! gauge_set {
    ($ctx:expr, $name:literal, $value:expr) => {
        ($ctx).gauge_set($name, $value)
    };
}

/// Record a value into a histogram on a context:
/// `hist_record!(obs, "trustdb.store.object_bytes", len)`.
#[macro_export]
macro_rules! hist_record {
    ($ctx:expr, $name:literal, $value:expr) => {
        ($ctx).hist_record($name, $value)
    };
}

/// Open a span guard on a context, bound to a local:
/// `let _span = span!(obs, "trustdb.wal.append");`
#[macro_export]
macro_rules! span {
    ($ctx:expr, $name:literal) => {
        ($ctx).span($name)
    };
}
