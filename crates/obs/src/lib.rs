//! # itrust-obs — workspace-wide telemetry substrate
//!
//! The paper's position (and ARCHANGEL's before it) is that archival trust
//! requires *demonstrable*, machine-checkable evidence of what the system
//! did. This crate is the workspace's evidence plane for performance and
//! behavior: every hot path records into a global, lock-cheap metrics
//! registry, and every experiment exports a deterministic snapshot that can
//! be diffed PR-over-PR.
//!
//! Three layers:
//!
//! - **Metrics registry** ([`counter`], [`gauge`], [`histogram`]): atomic
//!   counters, gauges, and fixed-bucket exponential histograms with
//!   p50/p90/p99 extraction, keyed by `&'static str` names. Handles are
//!   `&'static` and registration is once-per-name; the hot path is pure
//!   atomics. The [`counter_inc!`], [`counter_add!`], [`gauge_set!`],
//!   [`hist_record!`] macros cache the handle in a per-call-site static so
//!   steady-state cost is one atomic load plus the update.
//! - **Spans** ([`span`], [`span!`]): RAII guards that time a scope into the
//!   histogram of the same name and maintain a thread-local span stack
//!   (`a/b/c` paths). When a [`SpanSink`] is installed each completed span
//!   also emits a structured [`SpanEvent`]; with no sink the overhead is two
//!   `Instant::now()` calls and a few atomics.
//! - **Snapshot** ([`snapshot`], [`Snapshot`]): serializes the whole
//!   registry to deterministic JSON (sorted names, stable field order) and
//!   renders a human-readable table. Benches write these next to their
//!   `.txt` reports as `results/<name>.telemetry.json`.
//!
//! ## Naming convention
//!
//! Metric names are dot-separated `crate.component.operation` paths, e.g.
//! `trustdb.wal.append`. Span names double as histogram names recording
//! nanoseconds. Counters of discrete events end in a plural noun
//! (`trustdb.store.puts`); gauges describe a level (`escs.sim.queue_depth`).

mod registry;
mod snapshot;
mod span;

pub use registry::{
    counter, gauge, histogram, metric_names, reset, Counter, Gauge, Histogram, BUCKET_COUNT,
};
pub use snapshot::{snapshot, HistogramSnapshot, Snapshot, SnapshotBucket};
pub use span::{
    clear_sink, set_sink, span, span_path, CollectingSink, SpanEvent, SpanGuard, SpanSink,
};

/// Time a closure into the named histogram (nanoseconds) and return its
/// output. Equivalent to holding a [`span`] guard for the duration of `f`.
pub fn time<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _guard = span(name);
    f()
}

/// Increment a counter through a per-call-site cached handle.
#[macro_export]
macro_rules! counter_inc {
    ($name:literal) => {
        $crate::counter_add!($name, 1)
    };
}

/// Add to a counter through a per-call-site cached handle.
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $delta:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter($name)).add($delta);
    }};
}

/// Set a gauge through a per-call-site cached handle.
#[macro_export]
macro_rules! gauge_set {
    ($name:literal, $value:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::gauge($name)).set($value);
    }};
}

/// Record a value into a histogram through a per-call-site cached handle.
#[macro_export]
macro_rules! hist_record {
    ($name:literal, $value:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::histogram($name)).record($value);
    }};
}

/// Open a span guard bound to a local, with the histogram handle cached at
/// the call site: `let _span = span!("trustdb.wal.append");`
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::SpanGuard::with_histogram($name, HANDLE.get_or_init(|| $crate::histogram($name)))
    }};
}
