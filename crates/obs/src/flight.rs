//! Flight recorder: a fixed-capacity ring buffer of the most recent
//! telemetry events on a context, kept so a crashing run leaves a
//! post-mortem.
//!
//! Attach one to an [`crate::ObsCtx`] via [`crate::ObsCtx::with_parts`] and
//! every context-level record (counter add, gauge set, histogram record,
//! completed span) is also appended here, overwriting the oldest entry once
//! the buffer is full — exactly an aircraft black box. The bench `Emitter`
//! installs a panic hook that dumps the ring to
//! `results/<name>.blackbox.json` when a run dies, so failed D-experiments
//! are debuggable from their last moments instead of from nothing.
//!
//! Recording takes one short mutex; the recorder is only ever attached to
//! bench-run contexts, never to the null context library code defaults to,
//! so the steady-state cost of this module is zero.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// What kind of telemetry event a [`FlightEvent`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightKind {
    /// A completed span; `value` is its duration in nanoseconds.
    Span,
    /// A counter update; `value` is the delta added.
    Counter,
    /// A gauge update; `value` is the level set.
    Gauge,
    /// A histogram observation; `value` is the recorded sample.
    Hist,
}

/// One recorded telemetry event. `seq` numbers every event since the
/// recorder was created, so gaps at the front of a dump reveal how much
/// history the ring has already overwritten.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    pub seq: u64,
    pub kind: FlightKind,
    pub name: String,
    pub value: i64,
}

struct FlightInner {
    /// Ring storage; grows up to `capacity`, then wraps.
    slots: Vec<FlightEvent>,
    /// Total events ever recorded; `seq` of the next event.
    next_seq: u64,
}

/// Fixed-capacity ring buffer of recent [`FlightEvent`]s.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            inner: Mutex::new(FlightInner { slots: Vec::new(), next_seq: 0 }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightInner> {
        self.inner.lock().expect("flight recorder poisoned")
    }

    /// Append one event, overwriting the oldest once the ring is full.
    pub fn record(&self, kind: FlightKind, name: &str, value: i64) {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let event = FlightEvent { seq, kind, name: name.to_string(), value };
        if inner.slots.len() < self.capacity {
            inner.slots.push(event);
        } else {
            let idx = (seq as usize) % self.capacity;
            // itrust-lint: allow(panic-reachable) — ring slots wrap modulo the fixed capacity
            inner.slots[idx] = event;
        }
    }

    /// Total events recorded since creation (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.lock().next_seq
    }

    /// Snapshot the ring in chronological order. `panic` annotates the dump
    /// with the panic message when taken from a panic hook.
    pub fn dump(&self, panic: Option<String>) -> FlightDump {
        let inner = self.lock();
        let mut events = inner.slots.clone();
        events.sort_by_key(|e| e.seq);
        let dropped = inner.next_seq.saturating_sub(events.len() as u64);
        FlightDump {
            capacity: self.capacity as u64,
            recorded: inner.next_seq,
            dropped,
            panic,
            events,
        }
    }
}

/// A chronological snapshot of a [`FlightRecorder`], serializable as the
/// `*.blackbox.json` post-mortem artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Ring capacity the recorder ran with.
    pub capacity: u64,
    /// Total events recorded over the recorder's lifetime.
    pub recorded: u64,
    /// Events lost to ring wraparound (`recorded - len(events)`).
    pub dropped: u64,
    /// Panic message, when the dump was taken by a panic hook.
    pub panic: Option<String>,
    /// Surviving events, oldest first, with their original `seq`.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Pretty deterministic JSON (stable field order, sorted events).
    pub fn to_json_pretty(&self) -> String {
        // itrust-lint: allow(panic-reachable) — plain string/number dumps serialize infallibly
        serde_json::to_string_pretty(self).expect("flight dump serialization cannot fail")
    }

    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let fr = FlightRecorder::new(4);
        for i in 0..10 {
            fr.record(FlightKind::Counter, "test.flight.ticks", i);
        }
        let dump = fr.dump(None);
        assert_eq!(dump.capacity, 4);
        assert_eq!(dump.recorded, 10);
        assert_eq!(dump.dropped, 6);
        let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(dump.events[3].value, 9);
    }

    #[test]
    fn dump_round_trips_through_json() {
        let fr = FlightRecorder::new(8);
        fr.record(FlightKind::Span, "test.flight.span", 1_234);
        fr.record(FlightKind::Gauge, "test.flight.level", -5);
        fr.record(FlightKind::Hist, "test.flight.bytes", 4_096);
        let dump = fr.dump(Some("boom".to_string()));
        let back = FlightDump::from_json(&dump.to_json_pretty()).unwrap();
        assert_eq!(back, dump);
        assert_eq!(back.panic.as_deref(), Some("boom"));
        assert_eq!(back.events.len(), 3);
        assert_eq!(back.events[0].kind, FlightKind::Span);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let fr = FlightRecorder::new(0);
        fr.record(FlightKind::Counter, "test.flight.one", 1);
        fr.record(FlightKind::Counter, "test.flight.two", 2);
        let dump = fr.dump(None);
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.events[0].name, "test.flight.two");
    }

    #[test]
    fn concurrent_records_never_lose_the_count() {
        let fr = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let fr = fr.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        fr.record(FlightKind::Counter, "test.flight.race", i);
                    }
                });
            }
        });
        let dump = fr.dump(None);
        assert_eq!(dump.recorded, 400);
        assert_eq!(dump.events.len(), 64);
        // Sequence numbers are unique and sorted.
        for pair in dump.events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }
}
