//! Structured spans: RAII scope timers recording into histograms, with a
//! thread-local span stack and an optional event sink.

use crate::registry::{histogram, Histogram};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// One completed span, as delivered to a [`SpanSink`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span (and histogram) name, e.g. `trustdb.wal.append`.
    pub name: String,
    /// Slash-joined path of enclosing spans on this thread, ending with
    /// this span: `bench.d5/trustdb.store.put`.
    pub path: String,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Nesting depth (0 = root span on its thread).
    pub depth: u32,
}

/// Receives completed spans when installed via [`set_sink`].
pub trait SpanSink: Send + Sync {
    fn record(&self, event: &SpanEvent);
}

/// A sink that buffers events in memory; drain with
/// [`CollectingSink::take`]. Useful in tests and for bundling a span trace
/// into an experiment artifact.
#[derive(Default)]
pub struct CollectingSink {
    events: Mutex<Vec<SpanEvent>>,
}

impl CollectingSink {
    pub fn take(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.events.lock().expect("collecting sink poisoned"))
    }
}

impl SpanSink for CollectingSink {
    fn record(&self, event: &SpanEvent) {
        self.events.lock().expect("collecting sink poisoned").push(event.clone());
    }
}

/// `SINK_INSTALLED` lets the span drop path skip the sink mutex entirely in
/// the common no-sink configuration.
static SINK_INSTALLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<std::sync::Arc<dyn SpanSink>>> = Mutex::new(None);

/// Install a global span sink (replacing any previous one).
pub fn set_sink(sink: std::sync::Arc<dyn SpanSink>) {
    *SINK.lock().expect("span sink poisoned") = Some(sink);
    SINK_INSTALLED.store(true, Ordering::Release);
}

/// Remove the global span sink.
pub fn clear_sink() {
    SINK_INSTALLED.store(false, Ordering::Release);
    *SINK.lock().expect("span sink poisoned") = None;
}

/// The current thread's span path (slash-joined), or empty when no span is
/// open.
pub fn span_path() -> String {
    SPAN_STACK.with(|stack| stack.borrow().join("/"))
}

/// RAII span: times from construction to drop, records the elapsed
/// nanoseconds into the histogram named after the span, and (if a sink is
/// installed) emits a [`SpanEvent`].
pub struct SpanGuard {
    name: &'static str,
    histogram: &'static Histogram,
    start: Instant,
}

impl SpanGuard {
    /// Used by the `span!` macro, which caches the histogram handle.
    pub fn with_histogram(name: &'static str, histogram: &'static Histogram) -> Self {
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
        SpanGuard { name, histogram, start: Instant::now() }
    }
}

/// Open a span. Prefer the [`span!`](crate::span!) macro on hot paths — it
/// caches the histogram lookup per call site.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::with_histogram(name, histogram(name))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.histogram.record_duration(elapsed);
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop our own entry. Guards are scope-bound so LIFO order holds;
            // defend anyway against a mem::forget-ed sibling.
            if let Some(pos) = stack.iter().rposition(|&n| std::ptr::eq(n, self.name)) {
                stack.truncate(pos);
            }
            stack.len() as u32
        });
        if SINK_INSTALLED.load(Ordering::Acquire) {
            let sink = SINK.lock().expect("span sink poisoned").clone();
            if let Some(sink) = sink {
                let mut path = span_path();
                if !path.is_empty() {
                    path.push('/');
                }
                path.push_str(self.name);
                sink.record(&SpanEvent {
                    name: self.name.to_string(),
                    path,
                    duration_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
                    depth,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spans_record_into_histograms_and_nest() {
        let sink = Arc::new(CollectingSink::default());
        set_sink(sink.clone());
        {
            let _outer = crate::span("test.span.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = crate::span("test.span.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
                assert_eq!(span_path(), "test.span.outer/test.span.inner");
            }
        }
        clear_sink();

        let events = sink.take();
        assert_eq!(events.len(), 2);
        // Inner drops first.
        assert_eq!(events[0].name, "test.span.inner");
        assert_eq!(events[0].path, "test.span.outer/test.span.inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "test.span.outer");
        assert_eq!(events[1].depth, 0);
        assert!(events.iter().all(|e| e.duration_ns >= 1_000_000));

        let h = crate::histogram("test.span.inner");
        assert_eq!(h.count(), 1);
        assert!(h.p50() >= 1_000_000);
        assert!(span_path().is_empty());
    }
}
