//! Structured spans: RAII scope timers recording into a context's
//! histograms, with per-(thread, context) span stacks and an optional
//! per-context event sink.

use crate::ctx::CtxInner;
use crate::registry::Histogram;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    // One stack per context active on this thread, keyed by context id.
    // Entries are removed when their stack empties, so short-lived contexts
    // don't accumulate. Linear scan is fine: a thread rarely interleaves
    // more than a couple of contexts.
    static SPAN_STACKS: RefCell<Vec<(u64, Vec<&'static str>)>> = const { RefCell::new(Vec::new()) };
}

fn with_stack<T>(ctx_id: u64, f: impl FnOnce(&mut Vec<&'static str>) -> T) -> T {
    SPAN_STACKS.with(|stacks| {
        let mut stacks = stacks.borrow_mut();
        let idx = match stacks.iter().position(|(id, _)| *id == ctx_id) {
            Some(i) => i,
            None => {
                stacks.push((ctx_id, Vec::new()));
                stacks.len() - 1
            }
        };
        // itrust-lint: allow(panic-reachable) — ring slots wrap modulo the fixed capacity
        let out = f(&mut stacks[idx].1);
        if stacks[idx].1.is_empty() {
            stacks.swap_remove(idx);
        }
        out
    })
}

/// The span path (slash-joined) of context `ctx_id` on the current thread.
pub(crate) fn current_span_path(ctx_id: u64) -> String {
    with_stack(ctx_id, |stack| stack.join("/"))
}

/// One completed span, as delivered to a [`SpanSink`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span (and histogram) name, e.g. `trustdb.wal.append`.
    pub name: String,
    /// Slash-joined path of enclosing spans in the same context on this
    /// thread, ending with this span: `bench.d5/trustdb.store.put`.
    pub path: String,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Nesting depth (0 = root span of its context on its thread).
    pub depth: u32,
}

/// Receives completed spans from every context it is attached to (via
/// [`crate::ObsCtx::with_sink`]).
pub trait SpanSink: Send + Sync {
    fn record(&self, event: &SpanEvent);
}

/// A sink that buffers events in memory; drain with
/// [`CollectingSink::take`]. Useful in tests and for bundling a span trace
/// into an experiment artifact.
#[derive(Default)]
pub struct CollectingSink {
    events: Mutex<Vec<SpanEvent>>,
}

impl CollectingSink {
    pub fn take(&self) -> Vec<SpanEvent> {
        // itrust-lint: allow(panic-reachable) — a poisoned sink means a holder already panicked; re-panicking just propagates it
        std::mem::take(&mut self.events.lock().expect("collecting sink poisoned"))
    }
}

impl SpanSink for CollectingSink {
    fn record(&self, event: &SpanEvent) {
        // itrust-lint: allow(panic-reachable) — a poisoned sink means a holder already panicked; re-panicking just propagates it
        self.events.lock().expect("collecting sink poisoned").push(event.clone());
    }
}

struct ActiveSpan {
    name: &'static str,
    histogram: Arc<Histogram>,
    ctx: Arc<CtxInner>,
    start: Instant,
}

/// RAII span from [`crate::ObsCtx::span`]: times from construction to drop,
/// records the elapsed nanoseconds into the context's histogram of the same
/// name, and (if the context carries a sink) emits a [`SpanEvent`]. The
/// guard from a null context does nothing at all.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    pub(crate) fn noop() -> Self {
        SpanGuard { active: None }
    }

    pub(crate) fn enter(ctx: &Arc<CtxInner>, name: &'static str) -> Self {
        let histogram = ctx.registry.histogram(name);
        with_stack(ctx.id, |stack| stack.push(name));
        SpanGuard {
            active: Some(ActiveSpan { name, histogram, ctx: ctx.clone(), start: Instant::now() }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let elapsed = span.start.elapsed();
        span.histogram.record_duration(elapsed);
        if let Some(flight) = &span.ctx.flight {
            let ns = elapsed.as_nanos().min(i64::MAX as u128) as i64;
            flight.record(crate::flight::FlightKind::Span, span.name, ns);
        }
        let (depth, parent_path) = with_stack(span.ctx.id, |stack| {
            // Pop our own entry. Guards are scope-bound so LIFO order holds;
            // defend anyway against a mem::forget-ed sibling.
            if let Some(pos) = stack.iter().rposition(|&n| std::ptr::eq(n, span.name)) {
                stack.truncate(pos);
            }
            (stack.len() as u32, if span.ctx.sink.is_some() { stack.join("/") } else { String::new() })
        });
        if let Some(sink) = &span.ctx.sink {
            let mut path = parent_path;
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(span.name);
            sink.record(&SpanEvent {
                name: span.name.to_string(),
                path,
                duration_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
                depth,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsCtx;

    #[test]
    fn spans_record_into_histograms_and_nest() {
        let sink = Arc::new(CollectingSink::default());
        let ctx = ObsCtx::with_sink(sink.clone());
        {
            let _outer = ctx.span("test.span.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = ctx.span("test.span.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
                assert_eq!(ctx.span_path(), "test.span.outer/test.span.inner");
            }
        }

        let events = sink.take();
        assert_eq!(events.len(), 2);
        // Inner drops first.
        assert_eq!(events[0].name, "test.span.inner");
        assert_eq!(events[0].path, "test.span.outer/test.span.inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "test.span.outer");
        assert_eq!(events[1].depth, 0);
        assert!(events.iter().all(|e| e.duration_ns >= 1_000_000));

        let h = ctx.histogram("test.span.inner");
        assert_eq!(h.count(), 1);
        assert!(h.p50() >= 1_000_000);
        assert!(ctx.span_path().is_empty());
    }

    #[test]
    fn interleaved_contexts_keep_separate_stacks() {
        let a = ObsCtx::new();
        let b = ObsCtx::new();
        let _sa = a.span("test.span.a_outer");
        let _sb = b.span("test.span.b_outer");
        let _sa2 = a.span("test.span.a_inner");
        assert_eq!(a.span_path(), "test.span.a_outer/test.span.a_inner");
        assert_eq!(b.span_path(), "test.span.b_outer");
    }
}
