//! `ObsCtx`: the per-run telemetry context that owns a metrics registry, a
//! span recorder, and an optional trace sink.
//!
//! There is no process-global registry or sink — every instrumented
//! component holds (or is handed) an `ObsCtx`, and two contexts with
//! identical metric names record into disjoint storage. The **null
//! context** ([`ObsCtx::null`], also the `Default`) carries no storage at
//! all: every record through it is a single `Option` check, which keeps
//! un-instrumented library use (and the ~650 unit tests) at effectively
//! zero telemetry overhead.

use crate::flight::{FlightKind, FlightRecorder};
use crate::registry::{CounterHandle, GaugeHandle, HistogramHandle, Registry};
use crate::snapshot::Snapshot;
use crate::span::{current_span_path, SpanGuard, SpanSink};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Allocates a unique id per active context. The id keys the per-thread
/// span stacks so nested spans from different contexts on the same thread
/// never interleave; it carries no telemetry data.
static NEXT_CTX_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) struct CtxInner {
    pub(crate) id: u64,
    pub(crate) registry: Registry,
    pub(crate) sink: Option<Arc<dyn SpanSink>>,
    pub(crate) flight: Option<Arc<FlightRecorder>>,
}

/// Handle to one run's telemetry: metrics registry + span recorder +
/// optional trace sink. Cheap to `Clone` (an `Arc` bump) and `Send + Sync`,
/// so one context can be shared across the threads of a single run while a
/// concurrent run records into a different context entirely.
#[derive(Clone, Default)]
pub struct ObsCtx {
    inner: Option<Arc<CtxInner>>,
}

impl fmt::Debug for ObsCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "ObsCtx(null)"),
            Some(inner) => write!(f, "ObsCtx(#{})", inner.id),
        }
    }
}

impl ObsCtx {
    /// An active context with a fresh, empty registry and no span sink.
    pub fn new() -> Self {
        Self::with_parts(None, None)
    }

    /// An active context whose completed spans are also streamed to `sink`
    /// (e.g. a [`crate::JsonlTraceSink`]).
    pub fn with_sink(sink: Arc<dyn SpanSink>) -> Self {
        Self::with_parts(Some(sink), None)
    }

    /// An active context assembled from optional parts: a span sink and a
    /// [`FlightRecorder`] ring buffer. With a recorder attached, every
    /// context-level record (counter add, gauge set, histogram observation,
    /// completed span) also lands in the ring, so a crashing run can dump
    /// its last moments as a post-mortem.
    pub fn with_parts(
        sink: Option<Arc<dyn SpanSink>>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Self {
        ObsCtx {
            inner: Some(Arc::new(CtxInner {
                id: NEXT_CTX_ID.fetch_add(1, Ordering::Relaxed),
                registry: Registry::default(),
                sink,
                flight,
            })),
        }
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.inner.as_ref().and_then(|i| i.flight.as_ref())
    }

    /// The null context: records nothing, allocates nothing. This is the
    /// `Default`, so structs embedding an `ObsCtx` stay telemetry-free
    /// until a caller opts in with an active context.
    pub fn null() -> Self {
        ObsCtx { inner: None }
    }

    /// `true` for the null context.
    pub fn is_null(&self) -> bool {
        self.inner.is_none()
    }

    /// Look up or create the counter `name`, returning a cloneable handle
    /// whose updates are pure atomics. Hoist the handle out of hot loops;
    /// each `counter()` call takes the registry mutex briefly.
    pub fn counter(&self, name: &'static str) -> CounterHandle {
        CounterHandle(self.inner.as_ref().map(|i| i.registry.counter(name)))
    }

    /// Look up or create the gauge `name`. Panics on kind collision.
    pub fn gauge(&self, name: &'static str) -> GaugeHandle {
        GaugeHandle(self.inner.as_ref().map(|i| i.registry.gauge(name)))
    }

    /// Look up or create the histogram `name`. Panics on kind collision.
    pub fn histogram(&self, name: &'static str) -> HistogramHandle {
        HistogramHandle(self.inner.as_ref().map(|i| i.registry.histogram(name)))
    }

    /// Increment the counter `name` by one.
    pub fn counter_inc(&self, name: &'static str) {
        self.counter_add(name, 1);
    }

    /// Add `delta` to the counter `name`.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name).add(delta);
            if let Some(flight) = &inner.flight {
                flight.record(FlightKind::Counter, name, delta.min(i64::MAX as u64) as i64);
            }
        }
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name).set(value);
            if let Some(flight) = &inner.flight {
                flight.record(FlightKind::Gauge, name, value);
            }
        }
    }

    /// Record `value` into the histogram `name`.
    pub fn hist_record(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name).record(value);
            if let Some(flight) = &inner.flight {
                flight.record(FlightKind::Hist, name, value.min(i64::MAX as u64) as i64);
            }
        }
    }

    /// Open an RAII span: times from construction to drop, records the
    /// elapsed nanoseconds into this context's histogram `name`, and (if
    /// the context carries a sink) emits a [`crate::SpanEvent`] on drop.
    /// On the null context this is a no-op guard — not even a clock read.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard::enter(inner, name),
            None => SpanGuard::noop(),
        }
    }

    /// Time a closure into the histogram `name` (nanoseconds) and return
    /// its output. Equivalent to holding a [`ObsCtx::span`] guard for the
    /// duration of `f`.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let _guard = self.span(name);
        f()
    }

    /// This thread's span path in this context (slash-joined), or empty
    /// when no span is open.
    pub fn span_path(&self) -> String {
        match &self.inner {
            Some(inner) => current_span_path(inner.id),
            None => String::new(),
        }
    }

    /// Names of all registered metrics, sorted. Empty for the null context.
    pub fn metric_names(&self) -> Vec<&'static str> {
        self.inner.as_ref().map(|i| i.registry.metric_names()).unwrap_or_default()
    }

    /// Zero every registered metric (registrations are kept). Benches call
    /// this when reusing one context across warmup and measured runs.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            inner.registry.reset();
        }
    }

    /// Capture the current state of every metric in this context. The null
    /// context snapshots empty.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(inner) => crate::snapshot::snapshot_registry(&inner.registry),
            None => Snapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ctx_records_nothing_and_allocates_nothing() {
        let ctx = ObsCtx::null();
        assert!(ctx.is_null());
        ctx.counter_add("test.ctx.null.events", 9);
        ctx.gauge_set("test.ctx.null.level", 4);
        ctx.hist_record("test.ctx.null.latency", 123);
        ctx.time("test.ctx.null.work", || ());
        {
            let _span = ctx.span("test.ctx.null.span");
            assert_eq!(ctx.span_path(), "");
        }
        assert!(ctx.metric_names().is_empty());
        assert_eq!(ctx.snapshot(), Snapshot::default());
        assert_eq!(ctx.counter("test.ctx.null.events").get(), 0);
    }

    #[test]
    fn default_is_null() {
        assert!(ObsCtx::default().is_null());
    }

    #[test]
    fn two_contexts_record_disjointly() {
        let a = ObsCtx::new();
        let b = ObsCtx::new();
        a.counter_add("test.ctx.shared", 5);
        b.counter_add("test.ctx.shared", 11);
        b.counter_add("test.ctx.only_b", 1);
        assert_eq!(a.snapshot().counters["test.ctx.shared"], 5);
        assert_eq!(b.snapshot().counters["test.ctx.shared"], 11);
        assert!(!a.snapshot().counters.contains_key("test.ctx.only_b"));
    }

    #[test]
    fn flight_recorder_sees_ctx_level_records_and_spans() {
        let flight = Arc::new(crate::FlightRecorder::new(16));
        let ctx = ObsCtx::with_parts(None, Some(flight.clone()));
        ctx.counter_add("test.ctx.flight.events", 2);
        ctx.gauge_set("test.ctx.flight.level", -3);
        ctx.hist_record("test.ctx.flight.bytes", 512);
        ctx.time("test.ctx.flight.work", || ());
        let dump = ctx.flight().unwrap().dump(None);
        assert_eq!(dump.recorded, 4);
        let kinds: Vec<crate::FlightKind> = dump.events.iter().map(|e| e.kind).collect();
        use crate::FlightKind::*;
        assert_eq!(kinds, vec![Counter, Gauge, Hist, Span]);
        assert_eq!(dump.events[0].value, 2);
        assert_eq!(dump.events[1].value, -3);
        // The same work also landed in the registry.
        assert_eq!(ctx.snapshot().counters["test.ctx.flight.events"], 2);
        assert!(ObsCtx::new().flight().is_none());
    }

    #[test]
    fn clones_share_the_registry() {
        let a = ObsCtx::new();
        let b = a.clone();
        a.counter_add("test.ctx.cloned", 2);
        b.counter_add("test.ctx.cloned", 3);
        assert_eq!(a.counter("test.ctx.cloned").get(), 5);
    }
}
