//! `JsonlTraceSink`: streams completed spans to a per-run
//! `results/<name>.trace.jsonl` file, one JSON object per line.
//!
//! Each line carries the span name, its slash-joined path, depth, duration,
//! and `start_ns`/`end_ns` offsets relative to the sink's creation instant.
//! `end_ns` is stamped by the sink itself, under the writer lock, from the
//! sink's own clock — so end times are **monotonically non-decreasing in
//! file order** even when spans finish concurrently on several threads
//! (CI validates this invariant on emitted traces).

use crate::span::{SpanEvent, SpanSink};
use serde::Serialize;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// One line of a `.trace.jsonl` file.
#[derive(Serialize)]
struct TraceLine {
    name: String,
    path: String,
    depth: u32,
    start_ns: u64,
    end_ns: u64,
    duration_ns: u64,
}

struct TraceInner {
    writer: BufWriter<File>,
    last_end_ns: u64,
    errored: bool,
}

/// Span sink writing JSON Lines to a file. Attach with
/// [`crate::ObsCtx::with_sink`]; call [`JsonlTraceSink::flush`] (the bench
/// `Emitter` does) before reading the file.
pub struct JsonlTraceSink {
    epoch: Instant,
    inner: Mutex<TraceInner>,
}

impl JsonlTraceSink {
    /// Create (truncate) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let writer = BufWriter::new(File::create(path)?);
        Ok(JsonlTraceSink {
            epoch: Instant::now(),
            inner: Mutex::new(TraceInner { writer, last_end_ns: 0, errored: false }),
        })
    }

    /// Flush buffered lines to disk. Also reports (once) any write error
    /// swallowed on the record path — span recording must never fail the
    /// instrumented workload, so errors are deferred to here.
    pub fn flush(&self) -> io::Result<()> {
        // itrust-lint: allow(panic-reachable) — a poisoned sink means a holder already panicked; re-panicking just propagates it
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        if inner.errored {
            inner.errored = false;
            return Err(io::Error::other("trace sink dropped lines on a write error"));
        }
        inner.writer.flush()
    }
}

impl SpanSink for JsonlTraceSink {
    fn record(&self, event: &SpanEvent) {
        // itrust-lint: allow(panic-reachable) — a poisoned sink means a holder already panicked; re-panicking just propagates it
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        // Stamp the end time under the lock from the sink's own clock: file
        // order then equals stamp order, making end_ns non-decreasing.
        let end_ns = (self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .max(inner.last_end_ns);
        inner.last_end_ns = end_ns;
        let line = TraceLine {
            name: event.name.clone(),
            path: event.path.clone(),
            depth: event.depth,
            start_ns: end_ns.saturating_sub(event.duration_ns),
            end_ns,
            duration_ns: event.duration_ns,
        };
        // itrust-lint: allow(panic-reachable) — plain string/number trace lines serialize infallibly
        let json = serde_json::to_string(&line).expect("trace line serialization cannot fail");
        if writeln!(inner.writer, "{json}").is_err() {
            inner.errored = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsCtx;
    use std::sync::Arc;

    #[test]
    fn trace_lines_parse_and_end_times_are_monotone() {
        let dir = std::env::temp_dir().join("itrust-obs-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.trace.jsonl");
        let sink = Arc::new(JsonlTraceSink::create(&path).unwrap());
        let ctx = ObsCtx::with_sink(sink.clone());

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ctx = ctx.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let _outer = ctx.span("test.trace.outer");
                        let _inner = ctx.span("test.trace.inner");
                    }
                });
            }
        });
        sink.flush().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let mut last_end = 0u64;
        let mut lines = 0usize;
        for line in text.lines() {
            let v = serde_json::parse_value(line.as_bytes()).unwrap();
            let end = v.get("end_ns").and_then(|x| x.as_u64()).unwrap();
            let start = v.get("start_ns").and_then(|x| x.as_u64()).unwrap();
            assert!(end >= last_end, "end_ns regressed: {end} < {last_end}");
            assert!(start <= end);
            assert!(!v.get("name").and_then(|x| x.as_str()).unwrap().is_empty());
            last_end = end;
            lines += 1;
        }
        assert_eq!(lines, 4 * 50 * 2);
        std::fs::remove_file(&path).ok();
    }
}
