//! Registry snapshots: deterministic JSON export and a human-readable
//! table.

use crate::registry::{bucket_hi, bucket_lo, Registry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One non-empty histogram bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotBucket {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound (`u64::MAX` marks the overflow bucket).
    pub hi: u64,
    pub count: u64,
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    /// Only buckets with at least one observation, in ascending order.
    pub buckets: Vec<SnapshotBucket>,
}

/// Point-in-time state of one context's whole registry. `BTreeMap` keys
/// make the JSON rendering deterministic.
///
/// `meta` carries run-attribution facts the registry itself cannot know —
/// thread count, seed, workspace version — so cross-run diffs
/// (`obstool benchdiff`) can explain *why* two snapshots differ. The
/// context leaves it empty; artifact writers (the bench `Emitter`) fill it.
/// Values must stay deterministic: no wallclock stamps, no hostnames.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    pub meta: BTreeMap<String, String>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Compact deterministic JSON.
    pub fn to_json(&self) -> String {
        // itrust-lint: allow(panic-reachable) — BTreeMaps of numeric snapshots serialize infallibly
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Pretty-printed deterministic JSON.
    pub fn to_json_pretty(&self) -> String {
        // itrust-lint: allow(panic-reachable) — BTreeMaps of numeric snapshots serialize infallibly
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Total observations across all histograms (used by benches to assert
    /// that instrumentation actually fired).
    pub fn total_histogram_count(&self) -> u64 {
        self.histograms.values().map(|h| h.count).sum()
    }

    /// Render a human-readable table. Histogram times print in adaptive
    /// units (ns/µs/ms/s) since span histograms record nanoseconds.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            let width = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0).max(4);
            out.push_str(&format!(
                "histograms\n  {:<width$}  {:>10}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                "name", "count", "mean", "min", "p50", "p90", "p99", "p999", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  {:>10}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                    h.count,
                    fmt_ns(h.mean as u64),
                    fmt_ns(h.min),
                    fmt_ns(h.p50),
                    fmt_ns(h.p90),
                    fmt_ns(h.p99),
                    fmt_ns(h.p999),
                    fmt_ns(h.max),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics registered)\n");
        }
        out
    }
}

/// Format a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Capture the current state of every metric in `registry`.
pub(crate) fn snapshot_registry(registry: &Registry) -> Snapshot {
    let mut snap = Snapshot::default();
    registry.with_inner(|inner| {
        for (name, c) in &inner.counters {
            snap.counters.insert(name.to_string(), c.get());
        }
        for (name, g) in &inner.gauges {
            snap.gauges.insert(name.to_string(), g.get());
        }
        for (name, h) in &inner.histograms {
            let buckets = h
                .bucket_counts()
                .into_iter()
                .enumerate()
                .filter(|(_, count)| *count > 0)
                .map(|(i, count)| SnapshotBucket { lo: bucket_lo(i), hi: bucket_hi(i), count })
                .collect();
            snap.histograms.insert(
                name.to_string(),
                HistogramSnapshot {
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    mean: h.mean(),
                    p50: h.p50(),
                    p90: h.p90(),
                    p99: h.p99(),
                    p999: h.p999(),
                    buckets,
                },
            );
        }
    });
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsCtx;

    #[test]
    fn snapshot_json_round_trips_and_is_deterministic() {
        let ctx = ObsCtx::new();
        ctx.counter("test.snapshot.events").add(3);
        ctx.gauge("test.snapshot.level").set(-7);
        let h = ctx.histogram("test.snapshot.latency");
        for v in [10, 100, 1_000, 10_000] {
            h.record(v);
        }

        let mut a = ctx.snapshot();
        a.meta.insert("threads".to_string(), "4".to_string());
        let mut b = ctx.snapshot();
        b.meta.insert("threads".to_string(), "4".to_string());
        assert_eq!(a.to_json(), b.to_json(), "snapshot must be deterministic");

        let back = Snapshot::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.meta["threads"], "4");
        assert_eq!(back.counters["test.snapshot.events"], 3);
        assert_eq!(back.gauges["test.snapshot.level"], -7);
        let hist = &back.histograms["test.snapshot.latency"];
        assert_eq!(hist.count, 4);
        assert_eq!(hist.min, 10);
        assert_eq!(hist.max, 10_000);
        assert!(hist.p99 <= hist.p999 && hist.p999 <= hist.max);

        let table = a.render_table();
        assert!(table.contains("test.snapshot.events"));
        assert!(table.contains("histograms"));
        assert!(table.contains("p999"));
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let ctx = ObsCtx::new();
        ctx.counter_add("test.snapshot.reset", 5);
        ctx.reset();
        let snap = ctx.snapshot();
        assert_eq!(snap.counters["test.snapshot.reset"], 0);
    }
}
