//! Integration tests for itrust-obs: concurrency, percentile accuracy, and
//! snapshot JSON round-trips.

use itrust_obs::{HistogramSnapshot, ObsCtx, Snapshot, SnapshotBucket};
use proptest::prelude::*;

#[test]
fn concurrent_counter_increments_are_exact() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let ctx = ObsCtx::new();
    let handle = ctx.counter("test.concurrent.hits");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    handle.inc();
                }
            });
        }
    });
    assert_eq!(handle.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histogram_records_lose_nothing() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 5_000;
    let ctx = ObsCtx::new();
    let handle = ctx.histogram("test.concurrent.latency");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let handle = handle.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    handle.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let n = THREADS * PER_THREAD;
    assert_eq!(handle.count(), n);
    assert_eq!(handle.sum(), n * (n - 1) / 2);
    assert_eq!(handle.min(), 0);
    assert_eq!(handle.max(), n - 1);
}

#[test]
fn percentiles_track_uniform_data_within_bucket_resolution() {
    let ctx = ObsCtx::new();
    let handle = ctx.histogram("test.percentiles.uniform");
    for v in 1..=10_000u64 {
        handle.record(v);
    }
    // Exponential buckets are accurate to within a factor of 2; check the
    // estimates land in [true/2, true*2].
    for (q, truth) in [(0.50, 5_000u64), (0.90, 9_000), (0.99, 9_900)] {
        let est = handle.quantile(q);
        assert!(
            est >= truth / 2 && est <= truth * 2,
            "q={q}: estimate {est} vs true {truth}"
        );
    }
    assert_eq!(handle.quantile(1.0), 10_000);
}

fn arb_histogram_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (
        1u64..100_000,
        any::<u64>(),
        (0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        proptest::collection::vec((0u64..1 << 40, 0u64..1 << 40, 1u64..1 << 30), 0..8),
    )
        .prop_map(|(count, sum, (min, max), (p50, p90, p99, p999), buckets)| HistogramSnapshot {
            count,
            sum,
            min,
            max,
            // Derived mean keeps the float finite, matching live snapshots.
            mean: sum as f64 / count as f64,
            p50,
            p90,
            p99,
            p999,
            buckets: buckets
                .into_iter()
                .map(|(lo, hi, count)| SnapshotBucket { lo, hi, count })
                .collect(),
        })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        proptest::collection::vec(("[a-z.]{1,12}", "[a-z0-9]{0,8}"), 0..4),
        proptest::collection::vec(("[a-z.]{1,12}", any::<u64>()), 0..6),
        proptest::collection::vec(("[a-z.]{1,12}", any::<i64>()), 0..6),
        proptest::collection::vec(("[a-z.]{1,12}", arb_histogram_snapshot()), 0..4),
    )
        .prop_map(|(meta, counters, gauges, hists)| {
            let mut snap = Snapshot::default();
            snap.meta.extend(meta);
            snap.counters.extend(counters);
            snap.gauges.extend(gauges);
            snap.histograms.extend(hists);
            snap
        })
}

proptest! {
    /// Snapshots survive a JSON round-trip through serde_json bit-for-bit,
    /// and serialization is deterministic.
    #[test]
    fn snapshot_round_trips_through_json(snap in arb_snapshot()) {
        let json = snap.to_json();
        prop_assert_eq!(&json, &snap.to_json());
        let back = Snapshot::from_json(&json).unwrap();
        prop_assert_eq!(&back, &snap);
        // Pretty form parses to the same value too.
        let pretty = Snapshot::from_json(&snap.to_json_pretty()).unwrap();
        prop_assert_eq!(&pretty, &snap);
    }
}

#[test]
fn snapshot_reflects_live_registry() {
    let ctx = ObsCtx::new();
    ctx.counter("test.live.events").add(42);
    ctx.time("test.live.work", || std::thread::sleep(std::time::Duration::from_micros(50)));
    let snap = ctx.snapshot();
    assert_eq!(snap.counters["test.live.events"], 42);
    let h = &snap.histograms["test.live.work"];
    assert_eq!(h.count, 1);
    assert!(h.p50 >= 50_000, "slept 50µs but p50 was {}ns", h.p50);
    assert!(snap.total_histogram_count() >= 1);
}
