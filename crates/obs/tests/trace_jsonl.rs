//! Property test for `JsonlTraceSink`: under concurrent spans from several
//! threads, every emitted line parses as JSON and `end_ns` is monotonically
//! non-decreasing in file order. This is the invariant `obstool profile`
//! (and every other trace consumer) builds on; it used to be spot-checked
//! by an ad-hoc python validator in ci.sh.

use itrust_obs::{JsonlTraceSink, ObsCtx};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Static span names, indexed by nesting level (names must be `'static`).
const NAMES: [&str; 4] =
    ["test.prop.outer", "test.prop.mid", "test.prop.inner", "test.prop.leaf"];

static CASE: AtomicUsize = AtomicUsize::new(0);

/// Run one generated workload: 4 threads, each opening the given sequence
/// of nested span groups against one shared traced context. Returns the
/// trace file contents and the total number of spans opened.
fn run_workload(per_thread: &[Vec<u8>; 4]) -> (String, usize) {
    let dir = std::env::temp_dir().join("itrust-obs-trace-prop");
    std::fs::create_dir_all(&dir).unwrap();
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{}-{case}.trace.jsonl", std::process::id()));

    let sink = Arc::new(JsonlTraceSink::create(&path).unwrap());
    let ctx = ObsCtx::with_sink(sink.clone());
    std::thread::scope(|scope| {
        for ops in per_thread.iter() {
            let ctx = ctx.clone();
            scope.spawn(move || {
                for &depth in ops {
                    let depth = depth as usize % NAMES.len() + 1;
                    let mut guards = Vec::with_capacity(depth);
                    for name in NAMES.iter().take(depth) {
                        guards.push(ctx.span(name));
                    }
                    drop(guards);
                }
            });
        }
    });
    sink.flush().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let total: usize =
        per_thread.iter().flatten().map(|&d| d as usize % NAMES.len() + 1).sum();
    (text, total)
}

proptest! {
    /// Every line is valid JSON with the full field set, `start_ns <=
    /// end_ns`, and file order never takes `end_ns` backwards — even with 4
    /// threads finishing spans concurrently. No span is lost or duplicated.
    #[test]
    fn concurrent_trace_lines_parse_with_monotone_end_ns(
        a in proptest::collection::vec(0u8..8, 1..24),
        b in proptest::collection::vec(0u8..8, 1..24),
        c in proptest::collection::vec(0u8..8, 1..24),
        d in proptest::collection::vec(0u8..8, 1..24),
    ) {
        let (text, expected) = run_workload(&[a, b, c, d]);
        let mut last_end = 0u64;
        let mut lines = 0usize;
        for line in text.lines() {
            let v = serde_json::parse_value(line.as_bytes())
                .unwrap_or_else(|e| panic!("line {} is not valid JSON: {e}", lines + 1));
            let name = v.get("name").and_then(|x| x.as_str()).unwrap_or_default();
            prop_assert!(NAMES.contains(&name), "unexpected span name {name:?}");
            let path = v.get("path").and_then(|x| x.as_str()).unwrap_or_default();
            prop_assert!(path.ends_with(name), "path {path:?} does not end with {name:?}");
            let depth = v.get("depth").and_then(|x| x.as_u64()).unwrap();
            prop_assert!(depth < NAMES.len() as u64);
            let start = v.get("start_ns").and_then(|x| x.as_u64()).unwrap();
            let end = v.get("end_ns").and_then(|x| x.as_u64()).unwrap();
            let dur = v.get("duration_ns").and_then(|x| x.as_u64()).unwrap();
            prop_assert!(start <= end, "start_ns {start} > end_ns {end}");
            prop_assert_eq!(end - start, dur.min(end), "duration inconsistent");
            prop_assert!(end >= last_end, "end_ns regressed: {} < {}", end, last_end);
            last_end = end;
            lines += 1;
        }
        prop_assert_eq!(lines, expected, "span count mismatch");
    }
}
