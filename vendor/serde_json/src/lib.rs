//! Offline vendored subset of `serde_json`.
//!
//! JSON text ⇄ [`serde::Value`] ⇄ user types (via the vendored serde
//! traits). Serialization is deterministic: object key order is whatever the
//! `Serialize` impl produced (derived impls use declaration order), floats
//! use Rust's shortest round-trip formatting.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Parse or structure error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => match self.bump().ok_or_else(|| self.err("unterminated escape"))? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0C}'),
                    b'u' => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    c => return Err(self.err(&format!("invalid escape '\\{}'", c as char))),
                },
                c if c < 0x20 => return Err(self.err("control character in string")),
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let width = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8 byte")),
                    };
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid utf-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn parse_value(bytes: &[u8]) -> Result<Value> {
    let mut p = Parser::new(bytes);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let value = parse_value(bytes)?;
    Ok(T::deserialize(&value)?)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-5i32).unwrap(), "-5");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>(r#""héllo é""#).unwrap(), "héllo é");
    }

    #[test]
    fn nested_value_round_trips() {
        let text = r#"{"a":[1,2.5,null,{"b":"x"}],"c":true}"#;
        let v: Value = from_str(text).unwrap();
        let rendered = to_string(&v).unwrap();
        let reparsed: Value = from_str(&rendered).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn float_round_trips_exactly() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, 1e-300, -123.456789] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"k":[1,2],"m":{"x":null}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
