//! Offline vendored subset of `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: `any::<T>()`, numeric range strategies, regex-like string
//! strategies, `collection::vec`, `option::of`, `array::uniform32`, tuple
//! strategies, `.prop_map`, and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs' debug representation via the assert message), and the
//! case count defaults to 64 (override with `PROPTEST_CASES`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy,
    };
}

/// RNG handed to strategies; deterministic per test unless
/// `PROPTEST_SEED` overrides it.
pub type TestRng = StdRng;

/// Number of cases each `proptest!` test runs.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test RNG: seeded from the test name, or from
/// `PROPTEST_SEED` when set.
pub fn test_rng(test_name: &str) -> TestRng {
    if let Some(seed) = std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()) {
        return TestRng::seed_from_u64(seed);
    }
    // FNV-1a over the test name keeps runs reproducible across processes.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, reason }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`]. Rejects by regenerating (bounded).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range generator.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of magnitudes plus the unit interval; always finite.
        let base: f64 = rng.gen();
        let scale = 10f64.powi(rng.gen_range(-3..9));
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * base * scale
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<char>()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------------
// Regex-like string strategies
// ---------------------------------------------------------------------------

/// String literals act as generation-only regexes. Supported syntax:
/// literal chars, `.`, character classes `[a-z0-9 .,]` (ranges + literals),
/// groups `(...)`, and `{n}` / `{n,m}` / `*` / `+` / `?` quantifiers.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = regex::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        regex::generate(&pattern, rng, &mut out);
        out
    }
}

mod regex {
    use super::TestRng;
    use rand::Rng;

    #[derive(Debug)]
    pub enum Node {
        Literal(char),
        /// Any printable ASCII character.
        Dot,
        /// Explicit set of candidate characters.
        Class(Vec<char>),
        Group(Vec<Piece>),
    }

    #[derive(Debug)]
    pub struct Piece {
        pub node: Node,
        pub min: u32,
        pub max: u32,
    }

    pub fn parse(pattern: &str) -> Result<Vec<Piece>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let (pieces, consumed) = parse_seq(&chars, 0, None)?;
        if consumed != chars.len() {
            return Err(format!("unexpected character at {consumed}"));
        }
        Ok(pieces)
    }

    fn parse_seq(
        chars: &[char],
        mut i: usize,
        closing: Option<char>,
    ) -> Result<(Vec<Piece>, usize), String> {
        let mut pieces = Vec::new();
        while i < chars.len() {
            if Some(chars[i]) == closing {
                return Ok((pieces, i));
            }
            let node = match chars[i] {
                '.' => {
                    i += 1;
                    Node::Dot
                }
                '[' => {
                    let (class, next) = parse_class(chars, i + 1)?;
                    i = next;
                    Node::Class(class)
                }
                '(' => {
                    let (inner, close) = parse_seq(chars, i + 1, Some(')'))?;
                    if chars.get(close) != Some(&')') {
                        return Err("unterminated group".to_string());
                    }
                    i = close + 1;
                    Node::Group(inner)
                }
                '\\' => {
                    let c = *chars.get(i + 1).ok_or("dangling backslash")?;
                    i += 2;
                    Node::Literal(match c {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        'd' => return Err("\\d unsupported; use [0-9]".to_string()),
                        other => other,
                    })
                }
                '|' => return Err("alternation unsupported".to_string()),
                c => {
                    i += 1;
                    Node::Literal(c)
                }
            };
            let (min, max, next) = parse_quantifier(chars, i)?;
            i = next;
            pieces.push(Piece { node, min, max });
        }
        if closing.is_some() {
            return Err("unterminated group".to_string());
        }
        Ok((pieces, i))
    }

    fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), String> {
        let mut set = Vec::new();
        if chars.get(i) == Some(&'^') {
            return Err("negated classes unsupported".to_string());
        }
        while i < chars.len() && chars[i] != ']' {
            let lo = chars[i];
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                let hi = chars[i + 2];
                if (lo as u32) > (hi as u32) {
                    return Err(format!("bad range {lo}-{hi}"));
                }
                for c in (lo as u32)..=(hi as u32) {
                    set.push(char::from_u32(c).ok_or("bad range")?);
                }
                i += 3;
            } else {
                set.push(lo);
                i += 1;
            }
        }
        if chars.get(i) != Some(&']') {
            return Err("unterminated character class".to_string());
        }
        if set.is_empty() {
            return Err("empty character class".to_string());
        }
        Ok((set, i + 1))
    }

    fn parse_quantifier(chars: &[char], i: usize) -> Result<(u32, u32, usize), String> {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or("unterminated quantifier")?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, "")) => {
                        let lo: u32 = lo.trim().parse().map_err(|_| "bad quantifier")?;
                        (lo, lo + 8)
                    }
                    Some((lo, hi)) => (
                        lo.trim().parse().map_err(|_| "bad quantifier")?,
                        hi.trim().parse().map_err(|_| "bad quantifier")?,
                    ),
                    None => {
                        let n: u32 = body.trim().parse().map_err(|_| "bad quantifier")?;
                        (n, n)
                    }
                };
                if min > max {
                    return Err("quantifier min > max".to_string());
                }
                Ok((min, max, close + 1))
            }
            Some('*') => Ok((0, 8, i + 1)),
            Some('+') => Ok((1, 8, i + 1)),
            Some('?') => Ok((0, 1, i + 1)),
            _ => Ok((1, 1, i)),
        }
    }

    pub fn generate(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
        for piece in pieces {
            let reps = rng.gen_range(piece.min..=piece.max);
            for _ in 0..reps {
                match &piece.node {
                    Node::Literal(c) => out.push(*c),
                    Node::Dot => out.push((b' ' + rng.gen_range(0..95u8)) as char),
                    Node::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
                    Node::Group(inner) => generate(inner, rng, out),
                }
            }
        }
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Collection / option / array / tuple strategies
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `Some` three times out of four, mirroring upstream's default weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    pub fn uniform32<S: Strategy>(element: S) -> Uniform<S, 32> {
        Uniform { element }
    }

    pub struct Uniform<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each `#[test] fn name(x in strategy, ...) { .. }`
/// becomes a standard test running [`cases()`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng(stringify!($name));
                for _case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    { $body }
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_strategies_generate_matching_shapes() {
        let mut rng = test_rng("regex");
        for _ in 0..200 {
            let s = "[a-z]{1,10}".generate(&mut rng);
            assert!((1..=10).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let words = "[a-z]{1,6}( [a-z]{1,6}){0,3}".generate(&mut rng);
            assert!(words.split(' ').count() <= 4);
            assert!(!words.is_empty());

            let free = ".{0,200}".generate(&mut rng);
            assert!(free.len() <= 200);
        }
    }

    proptest! {
        #[test]
        fn vec_strategy_respects_bounds(v in collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuple_and_option_strategies(t in (any::<bool>(), 0u32..5), o in option::of(1u8..3)) {
            prop_assert!(t.1 < 5);
            if let Some(x) = o {
                prop_assert!((1..3).contains(&x));
            }
        }
    }
}
