//! Hand-written `#[derive(Serialize, Deserialize)]` for the vendored serde.
//!
//! Built directly on `proc_macro` token trees (the offline container has no
//! syn/quote). Supports the shapes this workspace uses, following serde's
//! JSON conventions:
//!
//! - named-field structs → objects keyed by field name
//! - newtype structs → the inner value, transparently
//! - multi-field tuple structs → arrays
//! - enums: unit variants → `"Variant"`, newtype variants →
//!   `{"Variant": value}`, tuple variants → `{"Variant": [..]}`, struct
//!   variants → `{"Variant": {..}}`
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported and
//! produce a compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named-field struct with field identifiers.
    Struct(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    /// Tuple variant with N fields (N == 1 is the newtype form).
    Tuple(usize),
    Struct(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consume leading `#[...]` attribute groups.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Consume a `pub` / `pub(...)` visibility prefix.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a delimited group body on top-level commas. Nested groups are
/// opaque token trees, so only `<...>` angle depth needs tracking.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extract field names from a named-field body (struct or struct variant).
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for field in split_top_level_commas(body) {
        let mut i = skip_attributes(&field, 0);
        i = skip_visibility(&field, i);
        match field.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            Some(other) => return Err(format!("unexpected token in field list: {other}")),
            None => {} // trailing comma
        }
    }
    Ok(names)
}

/// Count the fields of a tuple body (tuple struct or tuple variant).
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    split_top_level_commas(body)
        .into_iter()
        .filter(|f| !f.is_empty())
        .count()
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for var in split_top_level_commas(body) {
        let i = skip_attributes(&var, 0);
        let Some(TokenTree::Ident(id)) = var.get(i) else {
            if var.is_empty() {
                continue; // trailing comma
            }
            return Err("expected enum variant identifier".to_string());
        };
        let name = id.to_string();
        let kind = match var.get(i + 1) {
            None => VariantKind::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Struct(parse_named_fields(&inner)?)
            }
            // `Variant = 3` discriminant.
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
            Some(other) => return Err(format!("unexpected token after variant {name}: {other}")),
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".to_string()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde derive does not support generics (type {name})"
            ));
        }
    }

    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Struct(parse_named_fields(&body)?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Tuple(count_tuple_fields(&body))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::Tuple(0),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Enum(parse_variants(&body)?)
        }
        _ => return Err(format!("unsupported item shape for {name}")),
    };

    Ok(Parsed { name, shape })
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::serialize(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new(); \
                 {pushes} ::serde::Value::Object(fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::serialize(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.push(({f:?}.to_string(), \
                                         ::serde::Serialize::serialize({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{ \
                                 let mut inner: Vec<(String, ::serde::Value)> = Vec::new(); \
                                 {pushes} \
                                 ::serde::Value::Object(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Object(inner))]) }},"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(fields, {f:?}, {name:?})?"))
                .collect();
            format!(
                "let fields = value.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", value))?; \
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::deserialize(value)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", value))?; \
                 if items.len() != {n} {{ return Err(::serde::DeError::custom(format!( \
                 \"expected array of {n} for {name}, got {{}}\", items.len()))); }} \
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),", v.name, v.name))
                .collect();
            let keyed_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => return Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ \
                                 let items = inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::expected(\"array\", inner))?; \
                                 if items.len() != {n} {{ return Err(::serde::DeError::custom( \
                                 format!(\"wrong arity for {name}::{vn}\"))); }} \
                                 return Ok({name}::{vn}({})); }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(vf, {f:?}, {name:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ \
                                 let vf = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::expected(\"object\", inner))?; \
                                 return Ok({name}::{vn} {{ {} }}); }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::String(s) = value {{ \
                   match s.as_str() {{ {unit_arms} \
                     other => return Err(::serde::DeError::custom(format!( \
                       \"unknown variant {{other}} for {name}\"))), }} \
                 }} \
                 if let Some([(key, inner)]) = value.as_object() {{ \
                   match key.as_str() {{ {keyed_arms} \
                     other => return Err(::serde::DeError::custom(format!( \
                       \"unknown variant {{other}} for {name}\"))), }} \
                 }} \
                 Err(::serde::DeError::expected(\"enum representation\", value))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{ {body} }} }}"
    )
    .parse()
    .unwrap()
}
