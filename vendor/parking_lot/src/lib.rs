//! Offline vendored subset of `parking_lot`.
//!
//! The container this workspace builds in has no crates.io access, so this
//! crate re-implements the tiny slice of the `parking_lot` API the workspace
//! uses on top of `std::sync`. Semantics match parking_lot where it matters
//! for callers: `lock`/`read`/`write` return guards directly (no poisoning —
//! a poisoned std lock is transparently recovered).

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion primitive; `lock()` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
