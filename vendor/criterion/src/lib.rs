//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Implements enough of criterion's surface for the workspace's benches to
//! compile and produce useful numbers offline: per-benchmark median / min /
//! max wall-clock over a configurable sample count, with optional throughput
//! reporting. No statistical regression analysis, plots, or HTML reports.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput hint attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How batched inputs are grouped (accepted for API compatibility; every
/// batch is per-iteration here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    measurement_time: Duration,
}

impl Bencher {
    fn new(target_samples: usize, measurement_time: Duration) -> Self {
        Self { samples: Vec::new(), target_samples, measurement_time }
    }

    /// Time `f` repeatedly until the sample budget or time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} no samples");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if median.as_secs_f64() > 0.0 => {
            format!("  {:>10.1} MiB/s", b as f64 / median.as_secs_f64() / (1 << 20) as f64)
        }
        Some(Throughput::Elements(e)) if median.as_secs_f64() > 0.0 => {
            format!("  {:>10.0} elem/s", e as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} median {median:>12?}  (min {min:?} .. max {max:?}, n={}){rate}",
        sorted.len()
    );
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.samples, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(20, Duration::from_secs(3));
        f(&mut b);
        report(id, &b.samples, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
