//! Offline vendored subset of the `bytes` crate.
//!
//! Provides an immutable, cheaply clonable byte buffer (`Arc<[u8]>` under the
//! hood) with the handful of constructors and trait impls the workspace uses.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable reference-counted byte buffer; `clone()` is O(1).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Self(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self(Arc::from(&self.0[range]))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self(Arc::from(v.into_bytes()))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self(Arc::from(v.as_bytes()))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self(iter.into_iter().collect())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.0.len())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
    }
}
