//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no crates.io access, so this crate provides the
//! slice of `rand` the workspace uses: a deterministic seedable `StdRng`
//! (xoshiro256++ seeded via splitmix64), the `Rng`/`SeedableRng` traits with
//! `gen`, `gen_range`, `gen_bool`, `fill`, the `SliceRandom::shuffle`
//! extension, and the free function `random()`.
//!
//! Sequences differ from upstream `rand` (which uses ChaCha12 for `StdRng`),
//! but all generators here are deterministic per seed, uniform, and pass the
//! statistical expectations the workspace's tests encode.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: raw 32/64-bit output plus byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        Self::seed_from_stream(state, 0)
    }

    /// Seed sub-stream `stream` of `seed` — the deterministic seed-split
    /// used for per-shard / per-region generators.
    ///
    /// The seeding material is drawn from the [`SplitMix64`] sequence
    /// rooted at `seed`, jumped forward by `stream · 2³²` positions (see
    /// [`SplitMix64::jump`]: a jump is a single Weyl-increment addition, so
    /// this is O(1)). Consecutive streams are therefore 2³² draws apart in
    /// the seeding sequence: their seeding windows can never overlap for
    /// any `stream` count below 2³², and `seed_from_stream(s, 0)` is
    /// exactly `seed_from_u64(s)`.
    fn seed_from_stream(seed: u64, stream: u64) -> Self {
        let mut out = Self::Seed::default();
        let mut sm = SplitMix64::new(seed);
        sm.jump(stream << 32);
        for chunk in out.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(out)
    }
}

/// The SplitMix64 sequence (Steele, Lea & Flood 2014): a Weyl sequence on
/// the golden-ratio increment fed through a 64-bit finalizer. Used as the
/// seeding expander for every generator here, and — because its state
/// advance is a plain addition — as the O(1)-jumpable root for independent
/// sub-streams ([`SeedableRng::seed_from_stream`]).
pub struct SplitMix64 {
    state: u64,
}

/// The Weyl increment of SplitMix64: ⌊2⁶⁴/φ⌋, odd.
const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Sequence rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Jump the sequence forward by `n` positions in O(1): the state
    /// advance is `state += γ` per draw, so `n` draws are `state += n·γ`
    /// (wrapping). This is what makes documented, non-overlapping
    /// sub-streams cheap.
    pub fn jump(&mut self, n: u64) {
        self.state = self.state.wrapping_add(n.wrapping_mul(SPLITMIX64_GAMMA));
    }

    /// Next value of the sequence.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SPLITMIX64_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Values producible by `Rng::gen()` / `random()` (the `Standard`
/// distribution in upstream rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for char {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + (rng.next_u64() % 95) as u8) as char
    }
}

/// Marker for types `gen_range` can produce. Mirrors rand's
/// `SampleUniform`; its presence keeps type inference unambiguous at call
/// sites like `x += rng.gen_range(4..7)`.
pub trait SampleUniform {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Ranges acceptable to `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Unbiased uniform draw in `[0, span)` (`span > 0`) via rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic standard generator: xoshiro256++.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is a fixed point for xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}

pub mod rngs {
    //! Named generator types, mirroring `rand::rngs`.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Process-global convenience generator, mirroring `rand::random()`.
///
/// Seeded once per process from the system clock and a counter; not suitable
/// for reproducible experiments (use a seeded `StdRng` for those).
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nonce = COUNTER.fetch_add(1, Ordering::Relaxed);
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut rng = rngs::StdRng::seed_from_u64(now ^ nonce.rotate_left(32) ^ 0xA076_1D64_78BD_642F);
    T::sample(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn stream_zero_is_the_base_seed() {
        let mut base = rngs::StdRng::seed_from_u64(42);
        let mut s0 = rngs::StdRng::seed_from_stream(42, 0);
        for _ in 0..64 {
            assert_eq!(base.next_u64(), s0.next_u64());
        }
    }

    #[test]
    fn streams_are_deterministic_and_stable() {
        // Golden values pin the stream derivation: any change to the jump
        // scheme silently reshuffles every sharded experiment.
        let mut r = rngs::StdRng::seed_from_stream(42, 1);
        let first = r.next_u64();
        let mut again = rngs::StdRng::seed_from_stream(42, 1);
        assert_eq!(first, again.next_u64());
        assert_eq!(first, 0x3c6d_4619_5f9a_9797, "stream derivation changed");
    }

    #[test]
    fn distinct_streams_are_independent() {
        // Pairwise-distinct prefixes across streams of one seed.
        let seeds: Vec<Vec<u64>> = (0..16)
            .map(|s| {
                let mut r = rngs::StdRng::seed_from_stream(7, s);
                (0..32).map(|_| r.next_u64()).collect()
            })
            .collect();
        for a in 0..seeds.len() {
            for b in (a + 1)..seeds.len() {
                assert_ne!(seeds[a], seeds[b], "streams {a} and {b} collide");
                // No lagged overlap either: stream b's prefix must not
                // appear shifted inside stream a's prefix.
                for lag in 1..8 {
                    assert_ne!(seeds[a][lag..], seeds[b][..32 - lag]);
                }
            }
        }
    }

    #[test]
    fn splitmix_jump_equals_stepping() {
        let mut jumped = SplitMix64::new(99);
        jumped.jump(1000);
        let mut stepped = SplitMix64::new(99);
        for _ in 0..1000 {
            stepped.next();
        }
        assert_eq!(jumped.next(), stepped.next());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-50..=50i32);
            assert!((-50..=50).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval_and_roughly_uniform() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left slice in order");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
