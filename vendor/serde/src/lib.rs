//! Offline vendored subset of `serde`.
//!
//! The build container has no crates.io access, so this crate provides a
//! compact replacement for the serde surface the workspace uses. Instead of
//! serde's visitor-based data model, types convert to and from a JSON-shaped
//! [`Value`] tree:
//!
//! - [`Serialize`] — `fn serialize(&self) -> Value`
//! - [`Deserialize`] — `fn deserialize(&Value) -> Result<Self, DeError>`
//!
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]` proc
//! macros (hand-written, no syn/quote) that follow serde's JSON conventions:
//! structs → objects, newtype structs → their inner value, unit enum
//! variants → strings, data-carrying variants → single-key objects.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data model shared by the serializer and deserializer.
///
/// Objects preserve insertion order (serialization is deterministic given a
/// deterministic field order, which the derive guarantees).
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative or small integers.
    Int(i64),
    /// Integers above `i64::MAX`.
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Numbers compare numerically across the three numeric variants, so a value
/// that round-trips through JSON text (where `1.0` may re-parse as `1`)
/// still compares equal.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (String(a), String(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (a, b) => match (a.numeric(), b.numeric()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

/// Common numeric form used for cross-variant equality.
#[derive(PartialEq)]
enum Numeric {
    Neg(i64),
    Pos(u64),
    Float(f64),
}

impl Value {
    fn numeric(&self) -> Option<Numeric> {
        match *self {
            Value::Int(i) if i < 0 => Some(Numeric::Neg(i)),
            Value::Int(i) => Some(Numeric::Pos(i as u64)),
            Value::UInt(u) => Some(Numeric::Pos(u)),
            Value::Float(f) if f.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&f) => {
                Some(Numeric::Pos(f as u64))
            }
            Value::Float(f) if f.fract() == 0.0 && (i64::MIN as f64..0.0).contains(&f) => {
                Some(Numeric::Neg(f as i64))
            }
            Value::Float(f) => Some(Numeric::Float(f)),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path-less message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i128;
                if v >= 0 && v > i64::MAX as i128 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                // String fallback lets integer types act as JSON object keys.
                if let Value::String(s) = v {
                    return s.parse::<$t>().map_err(|_| DeError::expected(stringify!($t), v));
                }
                let wide: i128 = match *v {
                    Value::Int(i) => i as i128,
                    Value::UInt(u) => u as i128,
                    Value::Float(f) if f.fract() == 0.0 => f as i128,
                    _ => return Err(DeError::expected(stringify!($t), v)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::custom(format!("{} out of range for {}", wide, stringify!($t)))
                })
            }
        }
    )*};
}
impl_ser_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| DeError::expected("number", v))
            }
        }
    )*};
}
impl_ser_de_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Generic container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::custom(format!("array length mismatch (wanted {N})")))
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got array of {}", items.len())));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize(&self) -> Value {
        match self {
            Ok(t) => Value::Object(vec![("Ok".to_string(), t.serialize())]),
            Err(e) => Value::Object(vec![("Err".to_string(), e.serialize())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_object().ok_or_else(|| DeError::expected("Ok/Err object", v))?;
        match fields {
            [(k, inner)] if k == "Ok" => T::deserialize(inner).map(Ok),
            [(k, inner)] if k == "Err" => E::deserialize(inner).map(Err),
            _ => Err(DeError::expected("object with single Ok or Err key", v)),
        }
    }
}

/// JSON object keys must be strings; string and integer keys (and unit enum
/// variants, which serialize as strings) are accepted.
fn key_to_string(key: Value) -> Result<String, DeError> {
    match key {
        Value::String(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        other => Err(DeError::custom(format!(
            "map key must serialize to a string or integer, got {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (key_to_string(k.serialize()).expect("unserializable map key"), v.serialize())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_object().ok_or_else(|| DeError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, val)| {
                Ok((K::deserialize(&Value::String(k.clone()))?, V::deserialize(val)?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (key_to_string(k.serialize()).expect("unserializable map key"), v.serialize())
            })
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_object().ok_or_else(|| DeError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, val)| {
                Ok((K::deserialize(&Value::String(k.clone()))?, V::deserialize(val)?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Derive support (called from generated code)
// ---------------------------------------------------------------------------

/// Named-field lookup used by derived `Deserialize` impls. A missing key is
/// deserialized from `Null`, which makes `Option` fields optional (matching
/// serde's behavior) while other types produce a "missing field" error.
pub fn field<T: Deserialize>(
    fields: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v)
            .map_err(|e| DeError::custom(format!("{ty}.{key}: {e}"))),
        None => T::deserialize(&Value::Null)
            .map_err(|_| DeError::custom(format!("missing field `{key}` in {ty}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_fields_round_trip() {
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::deserialize(&Value::Int(3)).unwrap(), Some(3));
        assert_eq!(Some(7u64).serialize(), Value::Int(7));
    }

    #[test]
    fn numeric_equality_spans_variants() {
        assert_eq!(Value::Int(5), Value::UInt(5));
        assert_eq!(Value::Float(5.0), Value::Int(5));
        assert_ne!(Value::Float(5.5), Value::Int(5));
        assert_eq!(Value::Int(-3), Value::Float(-3.0));
    }

    #[test]
    fn arrays_and_maps_round_trip() {
        let arr = [1u8, 2, 3];
        let v = arr.serialize();
        assert_eq!(<[u8; 3]>::deserialize(&v).unwrap(), arr);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        let back: BTreeMap<String, u32> = Deserialize::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn result_round_trips() {
        let ok: Result<u32, String> = Ok(7);
        let err: Result<u32, String> = Err("boom".into());
        assert_eq!(Result::<u32, String>::deserialize(&ok.serialize()).unwrap(), ok);
        assert_eq!(Result::<u32, String>::deserialize(&err.serialize()).unwrap(), err);
    }
}
