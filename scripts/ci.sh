#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

# Lint self-check first: if the analyzer's own fixtures fail, every later
# lint verdict is meaningless, so fail fast before the long gates. The
# success line must attest that the seeded cross-crate ABBA deadlock
# fixture was caught — that is the canary for the whole call-graph layer.
cargo run --release -q -p itrust-lint -- --self-check \
    | grep -q "seeded ABBA deadlock detected"

# Serial-equivalence gate, part 1: the full test suite must pass both
# single-threaded and multi-threaded. The suites contain byte-identity
# assertions, so this catches any path whose output depends on the
# thread count.
ITRUST_THREADS=1 cargo test -q
ITRUST_THREADS=4 cargo test -q

cargo clippy --workspace -- -D warnings

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

# Serial-equivalence gate, part 2: detcheck writes content digests of every
# parallelized hot path (sim output, conv tensors, store digests) with no
# timing or host info. The two runs must produce byte-identical JSON.
mkdir -p "$SCRATCH/t1" "$SCRATCH/t4"
ITRUST_THREADS=1 ITRUST_RESULTS_DIR="$SCRATCH/t1" \
    cargo run --release -q -p itrust-bench --bin detcheck
ITRUST_THREADS=4 ITRUST_RESULTS_DIR="$SCRATCH/t4" \
    cargo run --release -q -p itrust-bench --bin detcheck
diff -u "$SCRATCH/t1/detcheck.json" "$SCRATCH/t4/detcheck.json"

# Invariant gate: itrust-lint enforces the workspace rules (handle-based
# telemetry, injected clocks, ordered iteration, ctx-first macros, pooled
# threads, config-only env reads) plus the three interprocedural passes —
# lock-order deadlock cycles, panic-reachability from public API, and
# transient/non-transient error discipline. --deny-all also rejects stale
# suppression comments, so every allow in the tree is still load-bearing.
cargo run --release -q -p itrust-lint -- --deny-all crates

# Lint determinism smoke: --json must validate and be byte-identical
# across runs — the call graph, SCC cycles and BFS witness chains are all
# computed over sorted structures, so two runs may not differ by a byte.
# Validation uses the linter's own --validate-json (no python needed).
cargo run --release -q -p itrust-lint -- --json crates > "$SCRATCH/lint1.json"
cargo run --release -q -p itrust-lint -- --json crates > "$SCRATCH/lint2.json"
diff "$SCRATCH/lint1.json" "$SCRATCH/lint2.json"
cargo run --release -q -p itrust-lint -- --validate-json "$SCRATCH/lint1.json" >/dev/null

# D9 partition smoke: a tiny deterministic partition storm must run clean
# end to end at both thread counts, and the reports must be byte-identical —
# availability, reconcile order, gossip rounds and merkle roots are all
# virtual-clock deterministic (scratch results dir so committed results/
# artifacts stay untouched).
D9_OBJECTS=60 D9_RATES=0.0,0.5 D9_SEED=42 ITRUST_THREADS=1 \
    ITRUST_RESULTS_DIR="$SCRATCH/d9" \
    cargo run --release -q -p itrust-bench --bin d9
D9_OBJECTS=60 D9_RATES=0.0,0.5 D9_SEED=42 ITRUST_THREADS=4 \
    ITRUST_RESULTS_DIR="$SCRATCH/d9t4" \
    cargo run --release -q -p itrust-bench --bin d9 > /dev/null
diff "$SCRATCH/d9/d9.txt" "$SCRATCH/d9t4/d9.txt"
test -s "$SCRATCH/d9/d9.json"
test -s "$SCRATCH/d9/d9.telemetry.json"

# D10 service smoke: a reduced closed-loop multi-tenant load test must run
# clean end to end at both thread counts with byte-identical reports — the
# sharded executor serializes per-shard work within a tick, so fixity
# roots, quota decisions and virtual latency percentiles are all
# thread-count independent. The knobs still exercise every admission path
# (rate-limit shedding and the photographic tenant's quota breach).
D10_CLIENTS=96 D10_SHARDS=4 D10_MS=400 D10_RATE=2 D10_QUEUE=24 D10_SEED=7 \
    ITRUST_THREADS=1 ITRUST_RESULTS_DIR="$SCRATCH/d10" \
    cargo run --release -q -p itrust-bench --bin d10
D10_CLIENTS=96 D10_SHARDS=4 D10_MS=400 D10_RATE=2 D10_QUEUE=24 D10_SEED=7 \
    ITRUST_THREADS=4 ITRUST_RESULTS_DIR="$SCRATCH/d10t4" \
    cargo run --release -q -p itrust-bench --bin d10 > /dev/null
diff "$SCRATCH/d10/d10.txt" "$SCRATCH/d10t4/d10.txt"
grep -q "quota" "$SCRATCH/d10/d10.txt"
test -s "$SCRATCH/d10/d10.json"
test -s "$SCRATCH/d10/d10.telemetry.json"

# D11 ledger smoke: a reduced custody-proof sweep must run clean at both
# thread counts with byte-identical reports — checkpoint roots, witness
# endorsements (including the deliberately severed second round) and
# merkle path lengths are hash- and virtual-time-derived, never wall
# time. The run also exercises the unified event API round trip (audit
# log + provenance chain + sharded store into one ledger).
D11_SIZES=500,2000 D11_PROOFS=16 D11_SEED=42 \
    ITRUST_THREADS=1 ITRUST_RESULTS_DIR="$SCRATCH/d11" \
    cargo run --release -q -p itrust-bench --bin d11
D11_SIZES=500,2000 D11_PROOFS=16 D11_SEED=42 \
    ITRUST_THREADS=4 ITRUST_RESULTS_DIR="$SCRATCH/d11t4" \
    cargo run --release -q -p itrust-bench --bin d11 > /dev/null
diff "$SCRATCH/d11/d11.txt" "$SCRATCH/d11t4/d11.txt"
grep -q "witness" "$SCRATCH/d11/d11.txt"
grep -q "audit + per-source proofs ok" "$SCRATCH/d11/d11.txt"
test -s "$SCRATCH/d11/d11.json"
test -s "$SCRATCH/d11/d11.telemetry.json"

OBSTOOL=(cargo run --release -q -p itrust-obs-analyze --bin obstool --)

# Trace smoke: the same run must have streamed a JSONL span trace that the
# profiler accepts — parse + schema + monotone end_ns are all enforced by
# `obstool profile` (replaces the old inline python validator).
"${OBSTOOL[@]}" profile "$SCRATCH/d9/d9.trace.jsonl" >/dev/null

# Profiler determinism: two runs over the committed d1 trace must be
# byte-identical, full report and collapsed stacks alike.
"${OBSTOOL[@]}" profile results/d1.trace.jsonl --collapsed > "$SCRATCH/prof1"
"${OBSTOOL[@]}" profile results/d1.trace.jsonl --collapsed > "$SCRATCH/prof2"
diff "$SCRATCH/prof1" "$SCRATCH/prof2"
"${OBSTOOL[@]}" profile results/d1.trace.jsonl > "$SCRATCH/prof3"
"${OBSTOOL[@]}" profile results/d1.trace.jsonl > "$SCRATCH/prof4"
diff "$SCRATCH/prof3" "$SCRATCH/prof4"

# Perf-regression gate: re-run the gated experiments into scratch and
# benchdiff against the committed baselines. Structural metrics (counters,
# gauges, hist counts) must match exactly — they are deterministic.
# Latency percentiles get a wide tolerance (3.5x slower fails) so the gate
# catches order-of-magnitude regressions without flaking on shared
# machines.
# d9, d10 and d11's spans are dominated by very short virtual-time (or
# sub-millisecond proof) operations, so their wall-clock percentiles are
# noisier than d1/fig1 — they get a wider band (their counters and gauges
# still must match exactly).
for exp in d1 fig1 d9 d10 d11; do
    case "$exp" in
        d9|d10|d11) threshold=4.0 ;;
        *) threshold=2.5 ;;
    esac
    ITRUST_RESULTS_DIR="$SCRATCH/bench" \
        cargo run --release -q -p itrust-bench --bin "$exp" > /dev/null
    "${OBSTOOL[@]}" benchdiff --check --threshold "$threshold" \
        "results/baselines/$exp.telemetry.json" \
        "$SCRATCH/bench/$exp.telemetry.json"
done

# Flight-recorder smoke: a forced panic in d9 must leave a parseable
# blackbox dump behind, and obstool must render it.
if D9_OBJECTS=60 D9_RATES=0.1 D9_SEED=42 D9_FORCE_PANIC=1 \
    ITRUST_RESULTS_DIR="$SCRATCH/d9" \
    cargo run --release -q -p itrust-bench --bin d9 >/dev/null 2>&1; then
    echo "d9 was expected to panic under D9_FORCE_PANIC=1" >&2
    exit 1
fi
test -s "$SCRATCH/d9/d9.blackbox.json"
"${OBSTOOL[@]}" blackbox "$SCRATCH/d9/d9.blackbox.json" | grep -q "D9_FORCE_PANIC"
