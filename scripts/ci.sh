#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

# Serial-equivalence gate, part 1: the full test suite must pass both
# single-threaded and multi-threaded. The suites contain byte-identity
# assertions, so this catches any path whose output depends on the
# thread count.
ITRUST_THREADS=1 cargo test -q
ITRUST_THREADS=4 cargo test -q

cargo clippy --workspace -- -D warnings

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

# Serial-equivalence gate, part 2: detcheck writes content digests of every
# parallelized hot path (sim output, conv tensors, store digests) with no
# timing or host info. The two runs must produce byte-identical JSON.
mkdir -p "$SCRATCH/t1" "$SCRATCH/t4"
ITRUST_THREADS=1 ITRUST_RESULTS_DIR="$SCRATCH/t1" \
    cargo run --release -q -p itrust-bench --bin detcheck
ITRUST_THREADS=4 ITRUST_RESULTS_DIR="$SCRATCH/t4" \
    cargo run --release -q -p itrust-bench --bin detcheck
diff -u "$SCRATCH/t1/detcheck.json" "$SCRATCH/t4/detcheck.json"

# API gate: telemetry is handle-based. No process-global sink or registry
# symbol may survive outside crates/obs (and crates/obs itself no longer
# exports one, but the gate scopes to callers so obs can keep the words in
# docs/comments).
if grep -rn --include='*.rs' -E 'set_sink|clear_sink|itrust_obs::(reset|registry|snapshot)\b' \
    crates --exclude-dir=obs --exclude-dir=target; then
    echo "ERROR: global telemetry API usage found outside crates/obs" >&2
    exit 1
fi

# D9 smoke: a tiny deterministic fault storm must run clean end to end
# (scratch results dir so committed results/ artifacts stay untouched).
D9_OBJECTS=60 D9_RATES=0.1,0.5 D9_SEED=42 ITRUST_RESULTS_DIR="$SCRATCH/d9" \
    cargo run --release -q -p itrust-bench --bin d9
test -s "$SCRATCH/d9/d9.json"
test -s "$SCRATCH/d9/d9.telemetry.json"

# Trace smoke: the same run must have streamed a JSONL span trace where
# every line parses as JSON and span end times never go backwards.
python3 - "$SCRATCH/d9/d9.trace.jsonl" <<'EOF'
import json, sys

path = sys.argv[1]
last_end = -1
lines = 0
with open(path) as f:
    for i, line in enumerate(f, 1):
        event = json.loads(line)
        for key in ("name", "path", "depth", "start_ns", "end_ns"):
            assert key in event, f"{path}:{i}: missing {key!r}"
        end = event["end_ns"]
        assert end >= event["start_ns"], f"{path}:{i}: end_ns < start_ns"
        assert end >= last_end, f"{path}:{i}: end_ns went backwards"
        last_end = end
        lines += 1
assert lines > 0, f"{path}: empty trace"
print(f"trace ok: {lines} spans, monotone end_ns")
EOF
