#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

# Lint self-check first: if the analyzer's own fixtures fail, every later
# lint verdict is meaningless, so fail fast before the long gates.
cargo run --release -q -p itrust-lint -- --self-check

# Serial-equivalence gate, part 1: the full test suite must pass both
# single-threaded and multi-threaded. The suites contain byte-identity
# assertions, so this catches any path whose output depends on the
# thread count.
ITRUST_THREADS=1 cargo test -q
ITRUST_THREADS=4 cargo test -q

cargo clippy --workspace -- -D warnings

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

# Serial-equivalence gate, part 2: detcheck writes content digests of every
# parallelized hot path (sim output, conv tensors, store digests) with no
# timing or host info. The two runs must produce byte-identical JSON.
mkdir -p "$SCRATCH/t1" "$SCRATCH/t4"
ITRUST_THREADS=1 ITRUST_RESULTS_DIR="$SCRATCH/t1" \
    cargo run --release -q -p itrust-bench --bin detcheck
ITRUST_THREADS=4 ITRUST_RESULTS_DIR="$SCRATCH/t4" \
    cargo run --release -q -p itrust-bench --bin detcheck
diff -u "$SCRATCH/t1/detcheck.json" "$SCRATCH/t4/detcheck.json"

# Invariant gate: itrust-lint enforces the workspace rules token-wise
# (handle-based telemetry, injected clocks, no panics in library paths,
# ordered iteration, ctx-first macros, pooled threads, config-only env
# reads). Replaces the old grep-based telemetry gate; --deny-all also
# rejects stale suppression comments.
cargo run --release -q -p itrust-lint -- --deny-all crates

# Lint determinism smoke: --json must parse and be byte-identical across
# runs (findings are sorted and carry no timestamps).
cargo run --release -q -p itrust-lint -- --json crates > "$SCRATCH/lint1.json"
cargo run --release -q -p itrust-lint -- --json crates > "$SCRATCH/lint2.json"
diff "$SCRATCH/lint1.json" "$SCRATCH/lint2.json"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$SCRATCH/lint1.json"

# D9 smoke: a tiny deterministic fault storm must run clean end to end
# (scratch results dir so committed results/ artifacts stay untouched).
D9_OBJECTS=60 D9_RATES=0.1,0.5 D9_SEED=42 ITRUST_RESULTS_DIR="$SCRATCH/d9" \
    cargo run --release -q -p itrust-bench --bin d9
test -s "$SCRATCH/d9/d9.json"
test -s "$SCRATCH/d9/d9.telemetry.json"

# Trace smoke: the same run must have streamed a JSONL span trace where
# every line parses as JSON and span end times never go backwards.
python3 - "$SCRATCH/d9/d9.trace.jsonl" <<'EOF'
import json, sys

path = sys.argv[1]
last_end = -1
lines = 0
with open(path) as f:
    for i, line in enumerate(f, 1):
        event = json.loads(line)
        for key in ("name", "path", "depth", "start_ns", "end_ns"):
            assert key in event, f"{path}:{i}: missing {key!r}"
        end = event["end_ns"]
        assert end >= event["start_ns"], f"{path}:{i}: end_ns < start_ns"
        assert end >= last_end, f"{path}:{i}: end_ns went backwards"
        last_end = end
        lines += 1
assert lines > 0, f"{path}: empty trace"
print(f"trace ok: {lines} spans, monotone end_ns")
EOF
