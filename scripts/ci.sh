#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
