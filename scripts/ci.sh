#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# D9 smoke: a tiny deterministic fault storm must run clean end to end
# (scratch results dir so committed results/ artifacts stay untouched).
D9_SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$D9_SMOKE_DIR"' EXIT
D9_OBJECTS=60 D9_RATES=0.1,0.5 D9_SEED=42 ITRUST_RESULTS_DIR="$D9_SMOKE_DIR" \
    cargo run --release -q -p itrust-bench --bin d9
test -s "$D9_SMOKE_DIR/d9.json"
test -s "$D9_SMOKE_DIR/d9.telemetry.json"
