//! The AI-assisted archivist: the newer capabilities working together —
//! distant supervision (no human labels), draft description generation,
//! format migration with verifiable lineage, and BagIt export of a
//! dissemination.
//!
//! ```sh
//! cargo run --example ai_archivist
//! ```

use archival_core::bagit::{validate_bag, write_bag};
use archival_core::ingest::Repository;
use archival_core::migration::{MigrationEngine, Utf8Normalizer};
use archival_core::oais::{Sip, SubmissionItem};
use archival_core::provenance::ProvenanceChain;
use trustdb::event::EventKind;
use archival_core::record::{Classification, DocumentaryForm, Record, RecordId};
use itrust_core::describe::describe;
use itrust_core::distant::{default_cues, fit_distant};
use itrust_core::sensitivity::generate_corpus;
use trustdb::store::{MemoryBackend, ObjectStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Distant supervision: a sensitivity model from retention-schedule
    //    keyword cues alone — zero human annotations.
    let incoming = generate_corpus(400, 0.3, 0.1, 11);
    let texts: Vec<String> = incoming.iter().map(|d| d.text.clone()).collect();
    let model = fit_distant(&texts, &default_cues()).expect("cues cover the corpus");
    let acc = model.accuracy(&incoming);
    println!("distant-supervised sensitivity model (no human labels): accuracy {acc:.3}");

    // 2. Draft description of a fonds narrative.
    let narrative = "The fonds documents wartime supply operations. \
        Supply convoys crossed the mountain passes weekly. \
        A brief note mentions the weather. \
        Convoy schedules and supply manifests form the bulk of the records. \
        One page lists the cook's favorite recipes.";
    let draft = describe(narrative, 2, 4);
    println!("\ndraft scope note (for archivist review):");
    for s in &draft.summary {
        println!("  • {s}.");
    }
    println!("  suggested subjects: {}", draft.subjects.join(", "));

    // 3. Accession a record with CRLF line endings, then migrate it.
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let body = b"REPORT\r\nSupply lines held.\r\nEnd of report.\r".to_vec();
    let record = Record::over_content(
        "a5g/rep-1",
        "Supply report",
        "Ministry",
        100,
        "wartime-reporting",
        DocumentaryForm::textual("text/plain"),
        Classification::Public,
        &body,
    );
    let mut provenance = ProvenanceChain::new("a5g/rep-1");
    provenance.append(50, "Ministry", EventKind::Creation, "success", "")?;
    let receipt = repo.ingest(
        Sip::new("Ministry", 200).with_item(SubmissionItem {
            record: record.clone(),
            content: body,
            provenance: provenance.clone(),
        }),
        1_000,
        "archivist",
    )?;
    let engine = MigrationEngine::new(repo.store(), repo.audit());
    let migration = engine.migrate(&record, &Utf8Normalizer, &mut provenance, 2_000, "archivist")?;
    println!(
        "\nmigrated {}: {} → {} ({} → {})",
        migration.record_id,
        migration.from_format,
        migration.to_format,
        migration.original_digest.short(),
        migration.migrated_digest.short()
    );
    engine.verify_lineage(&migration, &Utf8Normalizer)?;
    println!("lineage re-verified: converter still reproduces the migrated manifestation");

    // 4. Disseminate and export as a BagIt bag.
    let dip = repo.disseminate(&receipt.aip_id, &[RecordId::new("a5g/rep-1")], "researcher", 3_000, None)?;
    let mut bag_dir = std::env::temp_dir();
    bag_dir.push(format!("itrust-example-bag-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bag_dir);
    let root = write_bag(&dip, &bag_dir)?;
    let validation = validate_bag(&root)?;
    println!(
        "\nBagIt export at {}: {} payload file(s), valid = {}",
        root.display(),
        validation.valid,
        validation.is_valid()
    );
    std::fs::remove_dir_all(&bag_dir).ok();

    repo.audit().verify_chain()?;
    println!("audit chain verified ({} entries)", repo.audit().len());
    Ok(())
}
