//! The digital-twin scenario (paper §3.3 / Figure 2): assemble a campus
//! twin (BIM + integrated source databases + IoT telemetry + AMS +
//! paradata), archive it as an AIP, rehydrate it, and verify fidelity.
//!
//! ```sh
//! cargo run --release --example digital_twin_preservation
//! ```

use archival_core::ingest::Repository;
use digital_twin::archive::{archive_twin, DigitalTwin};
use digital_twin::rehydrate::{rehydrate_twin, verify_fidelity};
use trustdb::store::{MemoryBackend, ObjectStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A seven-building campus, mirroring the Carleton study.
    println!("assembling the campus digital twin…");
    let twin = DigitalTwin::synthetic("CarletonLike", 7, 2, 6 * 3_600_000, 2022);
    println!("  BIM: {} buildings, {} elements", twin.bim.buildings.len(), twin.bim.element_count());
    println!(
        "  sensors: {} deployed, {} readings",
        twin.sensors.sensors.len(),
        twin.sensors.history.len()
    );
    println!("  AMS: {} control actions logged", twin.ams.control_log.len());
    println!("  sync log: {} boundary crossings", twin.sync_log.len());
    println!("  paradata: {} automated tools described", twin.paradata.tools().len());
    for r in &twin.integration_reports {
        println!(
            "  integrated '{}': {} records in, {} unmatched, {} conflicts",
            r.source, r.integrated, r.unmatched, r.conflicts
        );
    }

    // Preservation-readiness: the "what must be captured at creation" check.
    let issues = twin.preservation_readiness();
    println!("\npreservation readiness: {}", if issues.is_empty() { "READY" } else { "BLOCKED" });
    for i in &issues {
        println!("  issue: {i}");
    }

    // Archive → rehydrate → verify.
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let receipt = archive_twin(&repo, &twin, 1_000, "university-archivist")?;
    println!(
        "\narchived as {} ({} component records, {} bytes)",
        receipt.aip_id, receipt.record_count, receipt.payload_bytes
    );

    let rehydrated = rehydrate_twin(&repo, &receipt.aip_id)?;
    let fidelity = verify_fidelity(&twin, &rehydrated);
    println!("rehydration fidelity:");
    for (component, identical) in &fidelity.bit_identical {
        println!("  {component:<12} bit-identical: {identical}");
    }
    println!(
        "  structural issues: {} → perfect = {}",
        fidelity.structural_issues.len(),
        fidelity.is_perfect()
    );
    assert!(fidelity.is_perfect());

    // The archive's own integrity machinery covers the twin too.
    let sweep = repo.fixity_sweep(2_000)?;
    println!(
        "\nrepository fixity: {}/{} objects intact",
        sweep.intact, sweep.checked
    );
    Ok(())
}
