//! Quickstart: the smallest end-to-end tour of the platform.
//!
//! Ingest a batch of documents, verify fixity, run an AI sensitivity
//! review under the trustworthiness guard, and search the holdings.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use archival_core::record::Classification;
use itrust_core::ai_task::Routing;
use itrust_core::platform::ITrustPlatform;
use itrust_core::sensitivity::{generate_corpus, FitMode, SensitivityModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A platform with an in-memory repository and a 0.8 guard threshold.
    let platform = ITrustPlatform::new(0.8);
    println!("{}", platform.registry().coverage_report());

    // 1. Acquisition: a producer transfers 30 documents.
    let docs: Vec<(String, String, String)> = generate_corpus(30, 0.3, 0.1, 42)
        .into_iter()
        .enumerate()
        .map(|(i, d)| (format!("rec-{i:03}"), format!("Transferred document {i}"), d.text))
        .collect();
    let receipt =
        platform.ingest_documents("Ministry Records Office", &docs, Classification::Public, 1_000)?;
    println!(
        "accessioned {} records as {} (merkle root {})",
        receipt.record_count,
        receipt.aip_id,
        receipt.merkle_root.short()
    );

    // 2. Preservation: fixity sweep over everything just stored.
    let sweep = platform.repo().fixity_sweep(2_000)?;
    println!(
        "fixity sweep: {}/{} intact ({} bytes verified)",
        sweep.intact, sweep.checked, sweep.bytes_verified
    );
    assert!(sweep.is_clean());

    // 3. Appraisal: AI sensitivity review under the guard.
    let training = generate_corpus(400, 0.3, 0.1, 7);
    let model = SensitivityModel::fit(&training, &[], FitMode::Supervised);
    let (results, guard) = platform.sensitivity_review(&receipt.aip_id, &model, 3_000)?;
    let auto = results.iter().filter(|r| r.routing == Routing::AutoAccepted).count();
    println!(
        "sensitivity review: {} auto-accepted, {} queued for human review",
        auto,
        guard.pending_count()
    );

    // 4. Access: BM25 search over the holdings.
    let index = platform.build_access_index()?;
    let hits = index.search("salary disciplinary complaint", 3);
    println!("top hits for a sensitive-topic query:");
    for h in &hits {
        println!("  {} (score {:.2})", h.doc_id, h.score);
    }

    // The audit chain ties it all together and verifies.
    platform.repo().audit().verify_chain()?;
    println!(
        "audit chain verified: {} entries, head {}",
        platform.repo().audit().len(),
        platform.repo().audit().head().unwrap().short()
    );
    Ok(())
}
