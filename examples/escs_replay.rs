//! The ESCS scenario (paper §3.1): simulate a disaster day on a metro
//! 9-1-1 network, preserve the run under a data-sharing agreement, replay
//! it from the archive, and explore a counterfactual ("what if the PSAPs
//! had more trunks?").
//!
//! ```sh
//! cargo run --release --example escs_replay
//! ```

use archival_core::ingest::Repository;
use escs::agreement::DataSharingAgreement;
use escs::external::ExternalTimeline;
use escs::graph::Topology;
use escs::preserve::{load_run, preserve_run};
use escs::privacy::PrivacyProfile;
use escs::replay::{replay_from_archive, replay_modified};
use escs::sim::{run, SimConfig};
use trustdb::store::{MemoryBackend, ObjectStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-district metro under a storm + pile-up disaster timeline.
    let duration = 4 * 3_600_000; // four hours
    let config = SimConfig::with_defaults(
        Topology::metro(3),
        ExternalTimeline::disaster(duration),
        duration,
        2022,
    );
    println!("simulating {} PSAPs for {} h…", config.topology.psaps.len(), duration / 3_600_000);
    let output = run(&config);
    println!(
        "  {} calls, {} answered, {} abandoned ({:.1}%), {} overflow transfers",
        output.stats.total,
        output.stats.answered,
        output.stats.abandoned,
        output.stats.abandonment_rate() * 100.0,
        output.stats.transferred
    );
    println!(
        "  mean answer delay {:.1}s, p95 {:.1}s",
        output.stats.mean_answer_delay_ms / 1000.0,
        output.stats.p95_answer_delay_ms / 1000.0
    );

    // Preserve under a model data-sharing agreement (phones masked, GPS on
    // a ~1 km grid).
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let dsa = DataSharingAgreement {
        id: "dsa-metro-2022-01".into(),
        owner: "Metro E-911 Authority".into(),
        recipient: "University ESCS Lab".into(),
        purpose: "replay of past events; policy counterfactuals".into(),
        jurisdiction: "US-WA".into(),
        privacy: PrivacyProfile::research_default(),
        valid_ms: (0, u64::MAX),
        research_retention_ms: u64::MAX,
    };
    let receipt = preserve_run(&repo, &config, &output, &dsa, &[], duration + 1_000, "archivist")?;
    println!(
        "\npreserved as {} ({} records, merkle root {})",
        receipt.aip_id,
        receipt.record_count,
        receipt.merkle_root.short()
    );

    // Replay from the archive: divergence must be zero.
    let report = replay_from_archive(&repo, &receipt.aip_id)?;
    println!(
        "replay divergence: {} call(s) differ → faithful = {}",
        report.divergence,
        report.is_faithful()
    );
    assert!(report.is_faithful());

    // Counterfactual: double every PSAP's trunks and replay the same day.
    let preserved = load_run(&repo, &receipt.aip_id)?;
    let mut upgraded = preserved.config.topology.clone();
    for p in &mut upgraded.psaps {
        p.trunks *= 2;
    }
    let counterfactual = replay_modified(&preserved, upgraded);
    println!("\ncounterfactual (2× trunks):");
    println!(
        "  abandonment {:.1}% → {:.1}%",
        preserved.stats.abandonment_rate() * 100.0,
        counterfactual.stats.abandonment_rate() * 100.0
    );
    println!(
        "  p95 answer delay {:.1}s → {:.1}s",
        preserved.stats.p95_answer_delay_ms / 1000.0,
        counterfactual.stats.p95_answer_delay_ms / 1000.0
    );
    Ok(())
}
