//! The full records lifecycle under archival governance: accession →
//! arrangement & description → trust assessment → retention/disposition
//! (with a legal hold) → role-gated access → redacted dissemination.
//!
//! This example exercises the archival-core substrate directly, without
//! any AI in the loop — the baseline the AI capabilities must respect.
//!
//! ```sh
//! cargo run --example records_lifecycle
//! ```

use archival_core::access::{AccessController, Principal, Role};
use archival_core::description::{DescriptionUnit, FindingAid, Level};
use archival_core::ingest::Repository;
use archival_core::oais::{Sip, SubmissionItem};
use archival_core::provenance::ProvenanceChain;
use trustdb::event::EventKind;
use archival_core::record::{Classification, DocumentaryForm, Record, RecordId};
use archival_core::redaction::Redactor;
use archival_core::retention::{
    DispositionEngine, Disposition, RetentionRule, RetentionSchedule,
};
use archival_core::trust::TrustAssessor;
use trustdb::store::{MemoryBackend, ObjectStore};

fn item(id: &str, title: &str, class: Classification, activity: &str, body: &str) -> SubmissionItem {
    let record = Record::over_content(
        id,
        title,
        "Ministry of War",
        100,
        activity,
        DocumentaryForm::textual("text/plain"),
        class,
        body.as_bytes(),
    );
    let mut provenance = ProvenanceChain::new(id);
    provenance
        .append(50, "Ministry of War", EventKind::Creation, "success", "registry copy")
        .unwrap();
    SubmissionItem { record, content: body.as_bytes().to_vec(), provenance }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));

    // 1. Accession a small fonds.
    let sip = Sip::new("Ministry of War", 1_000)
        .with_item(item(
            "a5g/reports/0001",
            "Report on supply lines",
            Classification::Public,
            "cultural-heritage",
            "Supply lines to the western front held through the winter.",
        ))
        .with_item(item(
            "a5g/personnel/0001",
            "Personnel complaint file",
            Classification::Restricted,
            "routine-correspondence",
            "Complaint filed; contact 555-123-4567 and officer at 47.6097, -122.3331.",
        ))
        .with_item(item(
            "a5g/reports/0002",
            "Casualty report",
            Classification::Public,
            "cultural-heritage",
            "Casualty figures for March, compiled from field returns.",
        ));
    let receipt = repo.ingest(sip, 2_000, "head-archivist")?;
    println!("accessioned {} records as {}", receipt.record_count, receipt.aip_id);

    // 2. Arrangement & description.
    let mut fonds = DescriptionUnit::new(Level::Fonds, "a5g", "Fund A5G (First World War)")
        .dated(0, 10_000)
        .with_extent("3 digitised files")
        .with_scope("reports and personnel correspondence");
    let mut reports = DescriptionUnit::new(Level::Series, "reports", "Operational reports");
    let mut file = DescriptionUnit::new(Level::File, "1916", "Reports of 1916");
    let mut r1 = DescriptionUnit::new(Level::Item, "0001", "Report on supply lines");
    r1.attach_record(RecordId::new("a5g/reports/0001"));
    let mut r2 = DescriptionUnit::new(Level::Item, "0002", "Casualty report");
    r2.attach_record(RecordId::new("a5g/reports/0002"));
    file.add_child(r1)?;
    file.add_child(r2)?;
    reports.add_child(file)?;
    fonds.add_child(reports)?;
    let aid = FindingAid::new("Ministry of War", fonds)?;
    println!("\n{}", aid.render());

    // 3. Trust assessment of every preserved record.
    let manifest = repo.manifest(&receipt.aip_id)?;
    let assessor = TrustAssessor::new(repo.store());
    for entry in &manifest.records {
        let report = assessor.assess(entry)?;
        println!(
            "trust[{}]: {:?} (reliability {:.2}, accuracy {:.2}, authenticity {:.2})",
            report.record_id,
            report.grade,
            report.reliability.score,
            report.accuracy.score,
            report.authenticity.score
        );
    }

    // 4. Retention: the complaint file is destroyable after its period —
    //    unless a legal hold intervenes.
    let mut schedule = RetentionSchedule::new();
    schedule.add_rule(RetentionRule {
        records_class: "routine-correspondence".into(),
        retention_ms: Some(5_000),
        disposition: Disposition::Destroy,
        authority: "GDA-7".into(),
    })?;
    schedule.add_rule(RetentionRule {
        records_class: "cultural-heritage".into(),
        retention_ms: None,
        disposition: Disposition::Permanent,
        authority: "Archives Act s.12".into(),
    })?;
    let mut engine = DispositionEngine::new(schedule);
    let complaint = manifest
        .records
        .iter()
        .find(|e| e.record.id.as_str() == "a5g/personnel/0001")
        .unwrap();
    engine.place_hold("matter-1922-04", [complaint.record.id.clone()]);
    let blocked = engine.apply(&complaint.record, 10_000, repo.store(), repo.audit(), "rm-bot")?;
    println!("\ndisposition attempt under hold: {blocked:?}");
    engine.release_hold("matter-1922-04");
    let destroyed = engine.apply(&complaint.record, 11_000, repo.store(), repo.audit(), "rm-bot")?;
    println!("disposition after release: {destroyed:?}");

    // 5. Access control: a public user, a researcher, an archivist.
    let gate = AccessController::new(repo.audit());
    let heritage = &manifest.records[0].record;
    for (who, role) in [("anon", Role::Public), ("dr-researcher", Role::Researcher)] {
        let decision = gate.check_read(&Principal::new(who, role), heritage, 12_000)?;
        println!("access[{who} → {}]: {decision:?}", heritage.id);
    }

    // 6. Dissemination with redaction (the public records only — the
    //    restricted one is now destroyed).
    let redactor = Redactor::all();
    let dip = repo.disseminate(
        &receipt.aip_id,
        &[RecordId::new("a5g/reports/0001"), RecordId::new("a5g/reports/0002")],
        "dr-researcher",
        13_000,
        Some(&redactor),
    )?;
    println!("\nDIP {} delivered with {} records", dip.dip_id, dip.items.len());

    repo.audit().verify_chain()?;
    println!(
        "audit chain: {} entries, verified (head {})",
        repo.audit().len(),
        repo.audit().head().unwrap().short()
    );
    Ok(())
}
