//! The PergaNet scenario (paper §3.2 / Figure 1): train the three-stage
//! pipeline on a synthetic parchment corpus, evaluate every stage, and
//! show the continuous-learning loop improving the classifier with
//! verified annotations.
//!
//! ```sh
//! cargo run --release --example parchment_pipeline
//! ```

use perganet::continuous::{continuous_learning, SimulatedAnnotator};
use perganet::corpus::{generate, CorpusConfig};
use perganet::eval::evaluate;
use perganet::pipeline::{PergaNet, TrainConfig};

fn main() {
    println!("PergaNet — three-stage parchment analysis (Figure 1)\n");

    // Train on a mixed-damage corpus; evaluate per damage level.
    let mut train = generate(CorpusConfig { count: 150, damage: 0, seed: 1 });
    train.extend(generate(CorpusConfig { count: 100, damage: 1, seed: 2 }));
    let mut net = PergaNet::new(7);
    println!("training on {} parchments…", train.len());
    net.train(&train, TrainConfig::default());

    println!("\n{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}", "evaluation corpus", "side acc", "text P", "text R", "signum AP", "signum R");
    for damage in 0u8..=2 {
        let test = generate(CorpusConfig { count: 60, damage, seed: 10 + damage as u64 });
        let eval = evaluate(&mut net, &test);
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            format!("damage level {damage}"),
            eval.side_accuracy,
            eval.text_precision,
            eval.text_recall,
            eval.signum_ap,
            eval.signum_recall
        );
    }

    // One analysis in detail, with its AI paradata (the archival record of
    // the processing).
    let sample = generate(CorpusConfig { count: 1, damage: 0, seed: 99 });
    let analysis = net.analyze(&sample[0].image);
    println!("\nsingle-image analysis:");
    println!("  predicted side: {:?} (confidence {:.3})", analysis.side, analysis.side_confidence);
    println!("  text regions:   {}", analysis.text_boxes.len());
    println!("  signum candidates: {}", analysis.signum_detections.len());
    println!("  paradata:");
    for p in &analysis.paradata {
        println!("    [{}] {} → {} ({:.3})", p.stage, p.model_id, p.decision, p.confidence);
    }

    // Continuous learning with a 5%-error human annotator.
    println!("\ncontinuous learning (annotator error 5%):");
    let seed_set = generate(CorpusConfig { count: 30, damage: 0, seed: 20 });
    let batches: Vec<_> = (0..3)
        .map(|i| generate(CorpusConfig { count: 60, damage: 0, seed: 21 + i }))
        .collect();
    let held_out = generate(CorpusConfig { count: 80, damage: 0, seed: 30 });
    let mut annotator = SimulatedAnnotator::new(0.05, 31);
    let trajectory =
        continuous_learning(32, &seed_set, &batches, &held_out, &mut annotator, 5, 0.005);
    for o in &trajectory {
        println!(
            "  round {}: pool {:>3} → held-out accuracy {:.3}",
            o.round, o.pool_size, o.held_out_accuracy
        );
    }
}
