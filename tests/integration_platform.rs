//! Integration: the full I Trust AI platform flow — acquisition, guarded
//! AI appraisal, human review, retrieval, and linking — with the audit
//! chain as the single connective thread.

use archival_core::record::Classification;
use itrust_core::ai_task::{Routing, Verdict};
use itrust_core::platform::ITrustPlatform;
use itrust_core::sensitivity::{generate_corpus, FitMode, SensitivityModel, SENSITIVE};
use itrust_core::tar::{linear_review, tar_review, TarConfig};
use trustdb::event::EventKind;

fn corpus_docs(n: usize, seed: u64) -> (Vec<(String, String, String)>, Vec<usize>) {
    let corpus = generate_corpus(n, 0.25, 0.1, seed);
    let labels: Vec<usize> = corpus.iter().map(|d| d.label).collect();
    let docs = corpus
        .into_iter()
        .enumerate()
        .map(|(i, d)| (format!("doc-{i:04}"), format!("Document {i}"), d.text))
        .collect();
    (docs, labels)
}

#[test]
fn guarded_review_catches_most_sensitive_documents() {
    let platform = ITrustPlatform::new(0.7);
    let (docs, labels) = corpus_docs(80, 11);
    let receipt = platform
        .ingest_documents("Records Office", &docs, Classification::Public, 1_000)
        .unwrap();

    let train = generate_corpus(500, 0.25, 0.1, 12);
    let model = SensitivityModel::fit(&train, &[], FitMode::Supervised);
    let (results, guard) = platform
        .sensitivity_review(&receipt.aip_id, &model, 2_000)
        .unwrap();

    // Accuracy of the auto-accepted decisions must be high — that is the
    // guard's contract: only confident calls act autonomously.
    let mut auto_correct = 0usize;
    let mut auto_total = 0usize;
    for (r, &truth) in results.iter().zip(&labels) {
        if r.routing == Routing::AutoAccepted {
            auto_total += 1;
            let predicted = usize::from(r.score >= 0.5);
            if predicted == truth {
                auto_correct += 1;
            }
        }
    }
    assert!(auto_total > 0);
    let auto_acc = auto_correct as f64 / auto_total as f64;
    assert!(auto_acc > 0.9, "auto-accepted accuracy {auto_acc}");

    // A human works the queue; afterwards nothing is pending and every
    // action is in the audit chain.
    let tickets: Vec<u64> = guard.pending().iter().map(|p| p.ticket).collect();
    for ticket in tickets {
        // Re-create a provenance chain for the subject (metadata-update
        // packaging is out of scope here).
        let mut chain = archival_core::provenance::ProvenanceChain::new("review");
        guard.resolve(ticket, Verdict::Confirmed, "reviewer", 3_000, &mut chain).unwrap();
    }
    assert_eq!(guard.pending_count(), 0);
    let audit = platform.repo().audit();
    audit.verify_chain().unwrap();
    assert_eq!(audit.query(|e| e.kind == EventKind::AiDecision).len(), 80);
}

#[test]
fn tar_prioritizes_the_same_corpus_the_platform_holds() {
    // TAR over the document set: far fewer reviews to 90% recall than
    // linear order.
    let corpus = generate_corpus(600, 0.1, 0.1, 21);
    let positives = corpus.iter().filter(|d| d.label == SENSITIVE).count();
    assert!(positives > 20);
    let linear = linear_review(&corpus);
    let tar = tar_review(&corpus, TarConfig::default());
    let linear_90 = linear.docs_to_recall(0.9).unwrap();
    let tar_90 = tar.docs_to_recall(0.9).unwrap();
    assert!(
        (tar_90 as f64) < linear_90 as f64 * 0.6,
        "TAR {tar_90} vs linear {linear_90}"
    );
}

#[test]
fn retrieval_and_linking_work_over_multiple_accessions() {
    let platform = ITrustPlatform::default();
    let (docs_a, _) = corpus_docs(25, 31);
    let (docs_b, _) = corpus_docs(25, 32);
    // Rename the second batch so ids do not collide.
    let docs_b: Vec<(String, String, String)> = docs_b
        .into_iter()
        .map(|(id, t, x)| (format!("b/{id}"), t, x))
        .collect();
    platform
        .ingest_documents("Office A", &docs_a, Classification::Public, 1_000)
        .unwrap();
    platform
        .ingest_documents("Office B", &docs_b, Classification::Public, 2_000)
        .unwrap();

    let index = platform.build_access_index().unwrap();
    assert_eq!(index.len(), 50);
    // A query in the sensitive vocabulary retrieves something.
    let hits = index.search("patient diagnosis medical", 5);
    assert!(!hits.is_empty());

    let linker = platform.build_linker().unwrap();
    assert_eq!(linker.len(), 50);
    let first_id = &docs_a[0].0;
    let similar = linker.similar(first_id, 3).unwrap();
    assert_eq!(similar.len(), 3);
    // Similarity scores are descending and in [0, 1].
    for w in similar.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
    for (_, s) in &similar {
        assert!((0.0..=1.0001).contains(s));
    }
}

#[test]
fn platform_survives_an_empty_repository() {
    let platform = ITrustPlatform::default();
    assert!(platform.build_access_index().unwrap().is_empty());
    assert!(platform.build_linker().unwrap().is_empty());
    assert!(platform.repo().list_aips().is_empty());
}
