//! Integration: the preservation core across crates — ingest, tamper
//! detection, trust assessment, third-party-verifiable dissemination.

use archival_core::ingest::Repository;
use archival_core::oais::{Sip, SubmissionItem};
use archival_core::provenance::ProvenanceChain;
use trustdb::event::EventKind;
use archival_core::record::{Classification, DocumentaryForm, Record, RecordId};
use archival_core::redaction::Redactor;
use archival_core::trust::{TrustAssessor, TrustGrade};
use trustdb::store::{MemoryBackend, ObjectStore};

fn item(id: &str, class: Classification, body: &[u8]) -> SubmissionItem {
    let record = Record::over_content(
        id,
        format!("Title {id}"),
        "Producer",
        100,
        "business",
        DocumentaryForm::textual("text/plain"),
        class,
        body,
    );
    let mut provenance = ProvenanceChain::new(id);
    provenance.append(50, "Producer", EventKind::Creation, "success", "").unwrap();
    SubmissionItem { record, content: body.to_vec(), provenance }
}

#[test]
fn tampering_degrades_trust_and_is_found_by_fixity() {
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let sip = Sip::new("Producer", 1_000)
        .with_item(item("r1", Classification::Public, b"intact record one"))
        .with_item(item("r2", Classification::Public, b"record that will rot"));
    let receipt = repo.ingest(sip, 1_000, "archivist").unwrap();
    let manifest = repo.manifest(&receipt.aip_id).unwrap();

    // Pre-tamper: everything trustworthy.
    let assessor = TrustAssessor::new(repo.store());
    for entry in &manifest.records {
        let report = assessor.assess(entry).unwrap();
        assert_ne!(report.grade, TrustGrade::Untrustworthy, "{report:?}");
    }

    // Bit rot hits r2.
    let victim = manifest
        .records
        .iter()
        .find(|e| e.record.id.as_str() == "r2")
        .unwrap();
    repo.store().backend().tamper(&victim.record.content_digest, |v| v[3] ^= 0x10);

    // Fixity sweep localizes it.
    let sweep = repo.fixity_sweep(2_000).unwrap();
    assert_eq!(sweep.incidents.len(), 1);
    assert_eq!(sweep.incidents[0].0, victim.record.content_digest);

    // Trust assessment for r2 collapses on the accuracy pillar only.
    let report = assessor.assess(victim).unwrap();
    assert_eq!(report.accuracy.score, 0.0);
    assert_eq!(report.grade, TrustGrade::Untrustworthy);
    let intact = manifest
        .records
        .iter()
        .find(|e| e.record.id.as_str() == "r1")
        .unwrap();
    let ok = assessor.assess(intact).unwrap();
    assert!(ok.accuracy.score == 1.0);

    // Audit trail recorded ingest + both sweeps and still verifies.
    repo.audit().verify_chain().unwrap();
    assert!(repo.audit().len() >= 2);
}

#[test]
fn dip_consumer_verifies_without_trusting_the_repository() {
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let sip = Sip::new("Producer", 1_000)
        .with_item(item("pub-1", Classification::Public, b"public content alpha"))
        .with_item(item(
            "res-1",
            Classification::Restricted,
            b"restricted: call 555-123-4567 about case 123-45-6789",
        ));
    let receipt = repo.ingest(sip, 1_000, "archivist").unwrap();

    let redactor = Redactor::all();
    let dip = repo
        .disseminate(
            &receipt.aip_id,
            &[RecordId::new("pub-1"), RecordId::new("res-1")],
            "researcher",
            2_000,
            Some(&redactor),
        )
        .unwrap();

    // Consumer-side: the published merkle root (from the receipt) plus the
    // DIP proofs verify each record's ORIGINAL content digest — the
    // redacted copy is honest about being a rendering, while the original's
    // inclusion in the attested accession is provable.
    for ((record, content), proof) in dip.items.iter().zip(&dip.proofs) {
        proof.verify(&record.content_digest.0, &receipt.merkle_root).unwrap();
        if record.classification == Classification::Restricted {
            let text = String::from_utf8(content.clone()).unwrap();
            assert!(text.contains("[REDACTED:phone]"));
            assert!(text.contains("[REDACTED:national-id]"));
            assert!(!text.contains("4567"));
        } else {
            // Public record released verbatim: digest still matches.
            assert_eq!(trustdb::hash::sha256(content), record.content_digest);
        }
    }
    assert_eq!(dip.redactions.len(), 1);
    assert_eq!(dip.redactions[0].spans_redacted, 2);
}

#[test]
fn accession_merkle_root_commits_to_the_whole_batch() {
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let mut sip = Sip::new("Producer", 1_000);
    for i in 0..32 {
        sip = sip.with_item(item(
            &format!("rec-{i}"),
            Classification::Public,
            format!("content {i}").as_bytes(),
        ));
    }
    let receipt = repo.ingest(sip, 1_000, "archivist").unwrap();
    let manifest = repo.manifest(&receipt.aip_id).unwrap();
    manifest.verify_internal_consistency().unwrap();

    // Every record is provable against the receipt's root.
    for entry in &manifest.records {
        let proof = manifest.prove_inclusion(&entry.record.id).unwrap();
        proof
            .verify(&entry.record.content_digest.0, &receipt.merkle_root)
            .unwrap();
    }
    // And a forged digest is not.
    let forged = trustdb::hash::sha256(b"never accessioned");
    let proof = manifest.prove_inclusion(&RecordId::new("rec-0")).unwrap();
    assert!(proof.verify(&forged.0, &receipt.merkle_root).is_err());
}

#[test]
fn migration_then_dissemination_then_bagit_export() {
    use archival_core::bagit::{validate_bag, write_bag};
    use archival_core::migration::{MigrationEngine, Utf8Normalizer};

    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let sip = Sip::new("Producer", 1_000)
        .with_item(item("crlf-1", Classification::Public, b"line a\r\nline b\r\n"));
    let receipt = repo.ingest(sip, 1_000, "archivist").unwrap();
    let manifest = repo.manifest(&receipt.aip_id).unwrap();
    let entry = &manifest.records[0];

    // Migrate the preserved record; original retained, lineage verifiable.
    let engine = MigrationEngine::new(repo.store(), repo.audit());
    let mut chain = entry.provenance.clone();
    let migration = engine
        .migrate(&entry.record, &Utf8Normalizer, &mut chain, 2_000, "archivist")
        .unwrap();
    engine.verify_lineage(&migration, &Utf8Normalizer).unwrap();
    assert!(repo.store().contains(&migration.original_digest));
    assert!(repo.store().contains(&migration.migrated_digest));

    // Disseminate the (original) record and export the DIP as a bag.
    let dip = repo
        .disseminate(&receipt.aip_id, &[RecordId::new("crlf-1")], "consumer", 3_000, None)
        .unwrap();
    let mut dir = std::env::temp_dir();
    dir.push(format!("itrust-it-bag-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let root = write_bag(&dip, &dir).unwrap();
    let validation = validate_bag(&root).unwrap();
    assert!(validation.is_valid(), "{:?}", validation.problems);
    assert_eq!(validation.valid, 1);
    std::fs::remove_dir_all(&dir).unwrap();

    // The whole episode is one coherent audit history.
    repo.audit().verify_chain().unwrap();
    let kinds: Vec<_> = repo.audit().export().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&trustdb::event::EventKind::Ingest));
    assert!(kinds.contains(&trustdb::event::EventKind::Migration));
    assert!(kinds.contains(&trustdb::event::EventKind::Access));
}
