//! Telemetry isolation suite for the handle-based `itrust-obs` API.
//!
//! Contract under test: an [`itrust_obs::ObsCtx`] is the *only* place a
//! run's telemetry lands. Two concurrent workloads with separate contexts
//! must produce disjoint registries (no cross-contamination through any
//! process-global state), and the null context must record nothing at all.

use escs::external::ExternalTimeline;
use escs::graph::Topology;
use escs::sim::{run_with_obs, SimConfig};
use itrust_obs::ObsCtx;
use trustdb::store::{MemoryBackend, ObjectStore};

fn sim_config(seed: u64) -> SimConfig {
    SimConfig::with_defaults(Topology::metro(3), ExternalTimeline::quiet(), 600_000, seed)
}

fn store_workload(store: &ObjectStore<MemoryBackend>) {
    let mut digests = Vec::new();
    for i in 0..200u32 {
        digests.push(store.put(format!("isolation object {i}").into_bytes()).unwrap());
    }
    for d in &digests {
        store.get(d).unwrap();
    }
}

/// A simulation and a store workload on separate threads, each with its own
/// context: the two snapshots must cover disjoint metric-name sets, with
/// every metric attributed to the context whose workload produced it.
#[test]
fn concurrent_contexts_record_disjoint_registries() {
    let sim_ctx = ObsCtx::new();
    let store_ctx = ObsCtx::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            run_with_obs(&sim_config(41), &sim_ctx);
        });
        scope.spawn(|| {
            let store = ObjectStore::new(MemoryBackend::new()).with_obs(store_ctx.clone());
            store_workload(&store);
        });
    });

    let sim = sim_ctx.snapshot();
    let store = store_ctx.snapshot();

    assert!(sim.counters["escs.sim.events_dispatched"] > 0);
    assert!(store.counters["trustdb.store.put_bytes"] > 0);
    assert_eq!(store.histograms["trustdb.store.put"].count, 200);

    // Disjointness: no metric name appears in both registries, and neither
    // context picked up the other workload's namespace.
    let sim_names: Vec<&str> = sim_ctx.metric_names();
    let store_names: Vec<&str> = store_ctx.metric_names();
    for name in &sim_names {
        assert!(!store_names.contains(name), "{name} leaked across contexts");
        assert!(name.starts_with("escs."), "unexpected metric {name} in sim context");
    }
    for name in &store_names {
        assert!(name.starts_with("trustdb."), "unexpected metric {name} in store context");
    }
}

/// Two simulations with separate contexts on separate threads: each context
/// sees exactly its own run's event count, not the sum.
#[test]
fn concurrent_sims_do_not_share_counters() {
    let a = ObsCtx::new();
    let b = ObsCtx::new();
    // Different durations so the two runs dispatch different event counts.
    let config_a = sim_config(7);
    let config_b = SimConfig::with_defaults(
        Topology::metro(3),
        ExternalTimeline::quiet(),
        1_200_000,
        7,
    );
    std::thread::scope(|scope| {
        scope.spawn(|| run_with_obs(&config_a, &a));
        scope.spawn(|| run_with_obs(&config_b, &b));
    });
    let count_a = a.snapshot().counters["escs.sim.events_dispatched"];
    let count_b = b.snapshot().counters["escs.sim.events_dispatched"];
    assert!(count_a > 0 && count_b > 0);
    assert!(
        count_b > count_a,
        "longer run must dispatch more events ({count_b} vs {count_a}) — equal or \
         inflated counts would mean shared state"
    );

    // Serial re-run into fresh contexts reproduces each count exactly.
    let fresh = ObsCtx::new();
    run_with_obs(&config_a, &fresh);
    assert_eq!(fresh.snapshot().counters["escs.sim.events_dispatched"], count_a);
}

/// Two tenants on one sharded service share **no** telemetry state: each
/// tenant's isolated ObsCtx sees exactly its own operation counts and
/// latency samples, the service-level context sees the aggregate, and
/// mutating one tenant's registry never moves the other's.
#[test]
fn service_tenants_have_isolated_obs_registries() {
    use bytes::Bytes;
    use itrust_core::service::{Quota, ShardedConfig, ShardedStore};

    let service_ctx = ObsCtx::new();
    let store = ShardedStore::open(&ShardedConfig::in_memory(4), service_ctx.clone()).unwrap();
    let a = store.register_tenant("archive-a", Quota::unlimited()).unwrap();
    let b = store.register_tenant("archive-b", Quota::unlimited()).unwrap();

    for i in 0..10u32 {
        store.put("archive-a", &format!("k{i}"), Bytes::from(vec![1u8; 64]), i as u64).unwrap();
    }
    for i in 0..3u32 {
        store.put("archive-b", &format!("k{i}"), Bytes::from(vec![2u8; 64]), 100 + i as u64).unwrap();
    }
    store.get("archive-a", "k0").unwrap();

    let snap_a = a.obs().snapshot();
    let snap_b = b.obs().snapshot();
    // Each tenant sees exactly its own work — not the sum, not a share.
    assert_eq!(snap_a.counters["service.tenant.puts"], 10);
    assert_eq!(snap_b.counters["service.tenant.puts"], 3);
    assert_eq!(snap_a.counters["service.tenant.gets"], 1);
    assert!(!snap_b.counters.contains_key("service.tenant.gets"));
    // The service-level context aggregates across tenants but holds no
    // per-tenant names; tenant registries hold no service-level names.
    let service_snap = service_ctx.snapshot();
    assert_eq!(service_snap.counters["service.store.puts"], 13);
    for name in service_ctx.metric_names() {
        assert!(!name.starts_with("service.tenant."), "{name} leaked into the service ctx");
    }
    for name in a.obs().metric_names() {
        assert!(name.starts_with("service.tenant."), "unexpected {name} in a tenant ctx");
    }
    // Registries are live-isolated: more work for B must not move A.
    let a_before = a.obs().snapshot().counters;
    store.put("archive-b", "k99", Bytes::from(vec![3u8; 64]), 200).unwrap();
    assert_eq!(a.obs().snapshot().counters, a_before);
    assert_eq!(b.obs().snapshot().counters["service.tenant.puts"], 4);
}

/// The null context records nothing: no metrics register, snapshots stay
/// empty, and the instrumented code paths still run to completion.
#[test]
fn null_context_records_nothing() {
    let null = ObsCtx::null();
    let output = run_with_obs(&sim_config(13), &null);
    assert!(!output.calls.is_empty());

    let store = ObjectStore::new(MemoryBackend::new()).with_obs(null.clone());
    store_workload(&store);

    assert!(null.is_null());
    assert!(null.metric_names().is_empty());
    let snap = null.snapshot();
    assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    assert!(null.span_path().is_empty());

    // Default-constructed contexts are null — library types that never get
    // `with_obs` stay silent.
    assert!(ObsCtx::default().is_null());
}
