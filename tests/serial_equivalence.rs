//! Serial-equivalence suite for the deterministic parallel substrate.
//!
//! Contract under test: every hot path that runs over `itrust_core::par`
//! produces **byte-identical** output with 1 thread and with 4 — the thread
//! count is a performance knob, never a semantic one. This is the property
//! that lets fixed-seed experiment artifacts stay reproducible on any
//! machine regardless of its core count.

use itrust_core::par;
use neural::layers::{conv2d_forward_naive, Conv2d, Layer};
use neural::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed-seed simulation → serialized SimOutput bytes must be identical.
#[test]
fn sim_output_bytes_identical_across_thread_counts() {
    use escs::external::ExternalTimeline;
    use escs::graph::Topology;
    use escs::sim::{run, SimConfig};
    let bytes = |threads: usize| {
        par::with_threads(threads, || {
            let duration = 1_800_000; // 30 min under surge: queues + overflow
            let config = SimConfig::with_defaults(
                Topology::metro(3),
                ExternalTimeline::disaster(duration),
                duration,
                2024,
            );
            serde_json::to_vec(&run(&config)).unwrap()
        })
    };
    let serial = bytes(1);
    assert_eq!(bytes(4), serial);
    assert_eq!(bytes(2), serial);
}

fn conv_bits(threads: usize) -> Vec<Vec<u32>> {
    par::with_threads(threads, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(3, 5, 3, 1, &mut rng);
        let x = Tensor::rand_uniform(&[4, 3, 8, 8], -1.0, 1.0, &mut rng);
        let y = conv.forward(&x, true);
        let g = Tensor::rand_uniform(y.shape(), -1.0, 1.0, &mut rng);
        let gi = conv.backward(&g);
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        let (wg, bg) = {
            let params = conv.params_mut();
            (params[0].grad.clone(), params[1].grad.clone())
        };
        vec![bits(&y), bits(&gi), bits(&wg), bits(&bg)]
    })
}

/// Conv2d forward + backward (output, grad_in, grad_w, grad_b) must be
/// bit-identical across thread counts.
#[test]
fn conv2d_tensors_bit_identical_across_thread_counts() {
    let serial = conv_bits(1);
    assert_eq!(conv_bits(4), serial);
    assert_eq!(conv_bits(2), serial);
}

/// The blocked Conv2d forward also equals the retained naive reference
/// (the pre-parallel implementation) under f32 equality.
#[test]
fn conv2d_forward_equals_retained_naive_reference() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut conv = Conv2d::new(2, 4, 3, 1, &mut rng);
    let x = Tensor::rand_uniform(&[3, 2, 7, 7], -1.0, 1.0, &mut rng);
    let got = conv.forward(&x, false);
    let (wt, bt) = {
        let params = conv.params_mut();
        (params[0].value.clone(), params[1].value.clone())
    };
    let want = conv2d_forward_naive(&x, &wt, &bt, 3, 1);
    assert_eq!(got.shape(), want.shape());
    for (a, b) in got.data().iter().zip(want.data()) {
        assert!(a == b, "{a} != {b}");
    }
}

/// Multi-block store puts (large enough to engage the parallel hash path)
/// must produce identical digests at every thread count, all equal to the
/// serial one-shot SHA-256.
#[test]
fn store_digests_identical_across_thread_counts() {
    use trustdb::store::{MemoryBackend, ObjectStore, PAR_HASH_MIN_BYTES};
    let payloads: Vec<Vec<u8>> = (0..4usize)
        .map(|i| (0..PAR_HASH_MIN_BYTES + i * 31 + 5).map(|j| ((i + j) % 251) as u8).collect())
        .collect();
    let digests = |threads: usize| {
        par::with_threads(threads, || {
            let store = ObjectStore::new(MemoryBackend::new());
            store.put_many(payloads.clone()).unwrap()
        })
    };
    let serial = digests(1);
    assert_eq!(digests(4), serial);
    for (d, p) in serial.iter().zip(&payloads) {
        assert_eq!(*d, trustdb::hash::sha256(p));
    }
}

/// The multi-tenant service layer: a fixed-seed admission-controlled
/// workload (puts + gets from three tenants through the sharded executor,
/// with rate limiting and shedding engaged) must produce identical
/// per-shard fixity roots, audit chain lengths, telemetry counters, and
/// completion accounting at every thread count.
#[test]
fn service_shard_roots_and_counters_identical_across_thread_counts() {
    use bytes::Bytes;
    use itrust_core::service::{
        BucketConfig, ExecutorConfig, Quota, Request, ServiceExecutor, ShardedConfig, ShardedStore,
    };
    use itrust_obs::ObsCtx;
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use trustdb::replica::{Clock, ManualClock};

    let run = |threads: usize| {
        par::with_threads(threads, || {
            let clock = Arc::new(ManualClock::new());
            let ctx = ObsCtx::new();
            let store =
                Arc::new(ShardedStore::open(&ShardedConfig::in_memory(5), ctx.clone()).unwrap());
            for name in ["alpha", "beta", "gamma"] {
                store.register_tenant(name, Quota::unlimited()).unwrap();
            }
            let exec = ServiceExecutor::new(
                store.clone(),
                clock.clone() as Arc<dyn Clock>,
                ExecutorConfig {
                    queue_capacity: 24,
                    bucket: BucketConfig { capacity: 8, refill_per_ms: 4 },
                    service_floor_ms: 1,
                    service_bytes_per_ms: 64,
                },
            );
            let mut rng = StdRng::seed_from_u64(99);
            let (mut accepted, mut shed, mut completed) = (0u64, 0u64, Vec::new());
            for wave in 0..60u64 {
                for i in 0..10u64 {
                    use rand::Rng;
                    let tenant = ["alpha", "beta", "gamma"][rng.gen_range(0..3usize)];
                    let key = format!("k{}", rng.gen_range(0..40u32));
                    let req = if rng.gen_range(0..10u32) < 7 {
                        Request::Put {
                            tenant: tenant.into(),
                            key,
                            payload: Bytes::from(vec![(wave * 10 + i) as u8; 80]),
                        }
                    } else {
                        Request::Get { tenant: tenant.into(), key }
                    };
                    match exec.submit(req) {
                        Ok(_) => accepted += 1,
                        Err(_) => shed += 1,
                    }
                }
                clock.advance_ms(1);
                for c in exec.tick() {
                    completed.push((c.seq, c.tenant.clone(), c.completed_ms, c.outcome.is_ok()));
                }
            }
            // Drain what the rate limiter deferred.
            while exec.queue_depth() > 0 {
                clock.advance_ms(1);
                for c in exec.tick() {
                    completed.push((c.seq, c.tenant.clone(), c.completed_ms, c.outcome.is_ok()));
                }
            }
            let roots: Vec<String> =
                store.fixity_roots().iter().map(|d| d.to_hex()).collect();
            let audit_lens: Vec<usize> =
                store.shards().iter().map(|s| s.audit_len()).collect();
            let snap = ctx.snapshot();
            let tenant_counters: BTreeMap<String, BTreeMap<String, u64>> = store
                .tenants()
                .iter()
                .map(|t| (t.name().to_string(), t.obs().snapshot().counters))
                .collect();
            (accepted, shed, completed, roots, audit_lens, snap.counters, tenant_counters)
        })
    };
    let serial = run(1);
    assert!(serial.1 > 0, "the rate limiter must actually shed in this workload");
    assert!(!serial.3.iter().all(|r| r == &serial.3[0]), "objects must spread across shards");
    assert_eq!(run(4), serial);
    assert_eq!(run(2), serial);
}

/// Telemetry counters and gauges are part of the deterministic surface:
/// the same fixed-seed workload must record identical counter values and
/// gauge high-water marks at every thread count. (Histograms time wall
/// clock, so only their observation *counts* are compared.)
#[test]
fn telemetry_counters_identical_across_thread_counts() {
    use escs::external::ExternalTimeline;
    use escs::graph::Topology;
    use escs::sim::{run_with_obs, SimConfig};
    use itrust_obs::ObsCtx;
    use trustdb::store::{MemoryBackend, ObjectStore};

    let telemetry = |threads: usize| {
        par::with_threads(threads, || {
            let ctx = ObsCtx::new();
            let config = SimConfig::with_defaults(
                Topology::metro(3),
                ExternalTimeline::disaster(900_000),
                900_000,
                77,
            );
            run_with_obs(&config, &ctx);
            let store = ObjectStore::new(MemoryBackend::new()).with_obs(ctx.clone());
            store
                .put_many((0..32usize).map(|i| vec![i as u8; 1024 + i]).collect::<Vec<_>>())
                .unwrap();
            let snap = ctx.snapshot();
            let hist_counts: Vec<(String, u64)> =
                snap.histograms.iter().map(|(k, h)| (k.clone(), h.count)).collect();
            (snap.counters, snap.gauges, hist_counts)
        })
    };
    let serial = telemetry(1);
    assert!(!serial.0.is_empty() && !serial.1.is_empty());
    assert_eq!(telemetry(4), serial);
    assert_eq!(telemetry(2), serial);
}
