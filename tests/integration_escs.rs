//! Integration: the §3.1 loop — simulate, sanitize under agreement,
//! preserve, replay, and counterfactually modify.

use archival_core::ingest::Repository;
use escs::agreement::{DataSharingAgreement, LegalRestriction, TransferViolation};
use escs::external::ExternalTimeline;
use escs::graph::Topology;
use escs::preserve::{load_run, preserve_run, PreserveError};
use escs::privacy::{verify_no_leakage, PrivacyProfile};
use escs::replay::{replay_from_archive, replay_modified};
use escs::sim::{run, SimConfig};
use trustdb::store::{MemoryBackend, ObjectStore};

fn dsa() -> DataSharingAgreement {
    DataSharingAgreement {
        id: "dsa-it".into(),
        owner: "County E-911".into(),
        recipient: "ESCS Lab".into(),
        purpose: "integration test".into(),
        jurisdiction: "US-WA".into(),
        privacy: PrivacyProfile::research_default(),
        valid_ms: (0, u64::MAX),
        research_retention_ms: u64::MAX,
    }
}

#[test]
fn disaster_run_preserves_and_replays_faithfully() {
    let duration = 2 * 3_600_000;
    let config = SimConfig::with_defaults(
        Topology::metro(2),
        ExternalTimeline::disaster(duration),
        duration,
        31337,
    );
    let output = run(&config);
    assert!(output.stats.total > 100, "expected a busy day, got {}", output.stats.total);

    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let receipt =
        preserve_run(&repo, &config, &output, &dsa(), &[], duration + 1, "archivist").unwrap();

    // The preserved call log leaks nothing.
    let preserved = load_run(&repo, &receipt.aip_id).unwrap();
    verify_no_leakage(&dsa().privacy, &preserved.calls).unwrap();

    // Replay is exact on privacy-invariant fields.
    let report = replay_from_archive(&repo, &receipt.aip_id).unwrap();
    assert!(report.is_faithful(), "divergence {}", report.divergence);

    // The AIP itself passes archival verification and fixity.
    repo.manifest(&receipt.aip_id)
        .unwrap()
        .verify_internal_consistency()
        .unwrap();
    assert!(repo.fixity_sweep(duration + 2).unwrap().is_clean());
}

#[test]
fn jurisdictional_restriction_blocks_the_whole_pipeline() {
    let config = SimConfig::with_defaults(
        Topology::single_city(),
        ExternalTimeline::quiet(),
        600_000,
        1,
    );
    let output = run(&config);
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let restrictions = vec![LegalRestriction {
        jurisdiction: "US-WA".into(),
        summary: "no off-site transfer".into(),
        transfer_permitted: false,
    }];
    let err = preserve_run(&repo, &config, &output, &dsa(), &restrictions, 1_000, "a")
        .unwrap_err();
    assert!(matches!(
        err,
        PreserveError::Agreement(TransferViolation::JurisdictionForbids(_))
    ));
    assert!(repo.list_aips().is_empty());
}

#[test]
fn counterfactual_capacity_study_from_the_archive() {
    // Preserve a congested scenario, then ask: what if we doubled trunks?
    let duration = 2 * 3_600_000;
    let mut topology = Topology::single_city();
    topology.psaps[0].trunks = 1; // deliberately undersized
    let config = SimConfig::with_defaults(
        topology,
        ExternalTimeline::disaster(duration),
        duration,
        99,
    );
    let output = run(&config);
    assert!(output.stats.abandonment_rate() > 0.05, "undersized PSAP should shed calls");

    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let receipt =
        preserve_run(&repo, &config, &output, &dsa(), &[], duration + 1, "a").unwrap();
    let preserved = load_run(&repo, &receipt.aip_id).unwrap();

    let mut upgraded = preserved.config.topology.clone();
    upgraded.psaps[0].trunks = 8;
    let counterfactual = replay_modified(&preserved, upgraded);
    assert!(
        counterfactual.stats.abandonment_rate() < preserved.stats.abandonment_rate(),
        "more trunks must reduce abandonment: {} → {}",
        preserved.stats.abandonment_rate(),
        counterfactual.stats.abandonment_rate()
    );
}

#[test]
fn preserved_paradata_identifies_engine_and_scenario() {
    let config = SimConfig::with_defaults(
        Topology::single_city(),
        ExternalTimeline::quiet(),
        600_000,
        5,
    );
    let output = run(&config);
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let receipt = preserve_run(&repo, &config, &output, &dsa(), &[], 1_000, "a").unwrap();
    let preserved = load_run(&repo, &receipt.aip_id).unwrap();
    assert_eq!(preserved.provenance.engine, escs::sim::ENGINE_VERSION);
    assert_eq!(preserved.provenance.config_digest, config.digest().to_hex());
    assert_eq!(preserved.provenance.seed, 5);
    // The preserved config digest matches the re-serialized loaded config —
    // the scenario is self-identifying.
    assert_eq!(preserved.config.digest(), config.digest());
}
