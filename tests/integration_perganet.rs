//! Integration: PergaNet analyses become governed archival actions — each
//! pipeline decision is vetted by the trust guard and lands in provenance
//! with paradata.

use archival_core::provenance::ProvenanceChain;
use trustdb::event::EventKind;
use itrust_core::ai_task::{GuardedDecision, Routing, TrustGuard, Verdict};
use perganet::corpus::{generate, CorpusConfig};
use perganet::pipeline::{PergaNet, TrainConfig};
use trustdb::audit::AuditLog;

#[test]
fn pipeline_decisions_flow_through_the_guard_into_provenance() {
    // Train a small pipeline.
    let train = generate(CorpusConfig { count: 120, damage: 0, seed: 1 });
    let mut net = PergaNet::new(2);
    net.train(
        &train,
        TrainConfig { classifier_epochs: 5, text_epochs: 6, signum_epochs: 15, lr: 0.005, signum_lr: 0.002 },
    );

    // Analyze a batch of "newly digitised" parchments under the guard.
    let incoming = generate(CorpusConfig { count: 12, damage: 1, seed: 3 });
    let audit = AuditLog::new();
    let guard = TrustGuard::new(&audit, 0.9);
    let mut chains: Vec<ProvenanceChain> = Vec::new();
    let mut auto = 0usize;
    for (i, p) in incoming.iter().enumerate() {
        let analysis = net.analyze(&p.image);
        let record_id = format!("parchment-{i:03}");
        let mut chain = ProvenanceChain::new(record_id.clone());
        chain
            .append(100, "scanner", EventKind::Creation, "success", "digitised master")
            .unwrap();
        // The classification decision is the one that gates downstream
        // arrangement (recto/verso ordering), so it is the one vetted.
        let routing = guard
            .vet(
                200,
                GuardedDecision {
                    subject: record_id,
                    model_id: analysis.paradata[0].model_id.clone(),
                    decision: analysis.paradata[0].decision.clone(),
                    confidence: analysis.side_confidence,
                },
                &mut chain,
            )
            .unwrap();
        if routing == Routing::AutoAccepted {
            auto += 1;
        }
        chains.push(chain);
    }

    // Every chain carries the AI event and verifies.
    for chain in &chains {
        assert!(chain
            .events()
            .iter()
            .any(|e| e.kind == EventKind::AiDecision));
        chain.verify().unwrap();
    }
    // Every decision audited; queue + auto = batch size.
    assert_eq!(audit.query(|e| e.kind == EventKind::AiDecision).len(), 12);
    assert_eq!(auto + guard.pending_count(), 12);
    audit.verify_chain().unwrap();
}

#[test]
fn human_review_resolves_low_confidence_classifications() {
    // An untrained classifier produces ~0.5 confidences → all queued.
    let mut net = PergaNet::new(9);
    let incoming = generate(CorpusConfig { count: 5, damage: 0, seed: 4 });
    let audit = AuditLog::new();
    let guard = TrustGuard::new(&audit, 0.95);
    let mut chain = ProvenanceChain::new("batch");
    for (i, p) in incoming.iter().enumerate() {
        let analysis = net.analyze(&p.image);
        guard
            .vet(
                100 + i as u64,
                GuardedDecision {
                    subject: format!("parchment-{i}"),
                    model_id: analysis.paradata[0].model_id.clone(),
                    decision: analysis.paradata[0].decision.clone(),
                    confidence: analysis.side_confidence.min(0.94),
                },
                &mut chain,
            )
            .unwrap();
    }
    assert_eq!(guard.pending_count(), 5);

    // The archivist works through the queue.
    let tickets: Vec<u64> = guard.pending().iter().map(|p| p.ticket).collect();
    for (n, ticket) in tickets.into_iter().enumerate() {
        let verdict = if n % 2 == 0 { Verdict::Confirmed } else { Verdict::Overridden };
        guard.resolve(ticket, verdict, "archivist-c", 1_000 + n as u64, &mut chain).unwrap();
    }
    assert_eq!(guard.pending_count(), 0);
    let verifications = chain
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::HumanReview)
        .count();
    assert_eq!(verifications, 5);
    assert_eq!(audit.query(|e| e.kind == EventKind::HumanReview).len(), 5);
    chain.verify().unwrap();
}
