//! Integration: digital-twin preservation through the archival stack —
//! archive, verify, assess trust, rehydrate, and survive a fixity incident.

use archival_core::ingest::Repository;
use archival_core::trust::{TrustAssessor, TrustGrade};
use digital_twin::archive::{archive_twin, DigitalTwin, COMPONENTS};
use digital_twin::rehydrate::{rehydrate_twin, verify_fidelity};
use trustdb::store::{MemoryBackend, ObjectStore};

#[test]
fn twin_records_are_trustworthy_archival_records() {
    let twin = DigitalTwin::synthetic("Campus", 3, 1, 600_000, 1);
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let receipt = archive_twin(&repo, &twin, 1_000, "archivist").unwrap();

    // The twin's six component records pass the same trust assessment as
    // any other holding.
    let manifest = repo.manifest(&receipt.aip_id).unwrap();
    let assessor = TrustAssessor::new(repo.store());
    for entry in &manifest.records {
        let report = assessor.assess(entry).unwrap();
        assert_ne!(
            report.grade,
            TrustGrade::Untrustworthy,
            "{}: {report:?}",
            entry.record.id
        );
        assert_eq!(report.accuracy.score, 1.0);
    }
    // Documentary form marks them as interactive twin components.
    for entry in &manifest.records {
        assert!(entry
            .record
            .form
            .intrinsic_elements
            .iter()
            .any(|e| e.starts_with("component:")));
    }
}

#[test]
fn full_round_trip_then_tamper_then_detect() {
    let twin = DigitalTwin::synthetic("Campus", 2, 2, 900_000, 2);
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let receipt = archive_twin(&repo, &twin, 1_000, "archivist").unwrap();

    // Perfect rehydration first.
    let back = rehydrate_twin(&repo, &receipt.aip_id).unwrap();
    let fidelity = verify_fidelity(&twin, &back);
    assert!(fidelity.is_perfect(), "{fidelity:?}");
    assert_eq!(fidelity.bit_identical.len(), COMPONENTS.len());

    // Now a storage fault corrupts the sensors component.
    let manifest = repo.manifest(&receipt.aip_id).unwrap();
    let sensors_entry = manifest
        .records
        .iter()
        .find(|e| e.record.id.as_str().ends_with("/sensors"))
        .unwrap();
    repo.store()
        .backend()
        .tamper(&sensors_entry.record.content_digest, |v| {
            let mid = v.len() / 2;
            v[mid] ^= 0xff;
        });
    let sweep = repo.fixity_sweep(2_000).unwrap();
    assert_eq!(sweep.incidents.len(), 1);
    assert_eq!(sweep.incidents[0].0, sensors_entry.record.content_digest);
}

#[test]
fn twin_scale_sweep_round_trips_at_every_size() {
    // The D4 shape in miniature: round-trip fidelity is scale-invariant.
    for (buildings, sensors) in [(1usize, 1usize), (3, 2), (7, 2)] {
        let twin = DigitalTwin::synthetic("Campus", buildings, sensors, 300_000, 42);
        let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
        let receipt = archive_twin(&repo, &twin, 1_000, "a").unwrap();
        let back = rehydrate_twin(&repo, &receipt.aip_id).unwrap();
        assert_eq!(back, twin, "round trip at {buildings} buildings");
        assert!(receipt.payload_bytes > 0);
    }
}

#[test]
fn preservation_readiness_gates_archiving_end_to_end() {
    let mut twin = DigitalTwin::synthetic("Campus", 1, 1, 300_000, 3);
    // Strip the paradata registry: automation becomes undocumented.
    twin.paradata = digital_twin::paradata::ParadataRegistry::new();
    let repo = Repository::new(ObjectStore::new(MemoryBackend::new()));
    let err = archive_twin(&repo, &twin, 1_000, "a").unwrap_err();
    assert!(err.to_string().contains("preservation-ready"));
    assert!(repo.list_aips().is_empty());
    assert_eq!(repo.store().object_count(), 0);
}
